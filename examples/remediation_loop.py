"""Close the loop: audit, blacklist, re-run, measure the improvement.

The paper argues that with a complete publisher list an advertiser "could
effectively identify potentially harmful sites and blacklist them".  This
example does exactly that, end to end:

1. run the 8-campaign study and audit it;
2. take the brand-safety audit's blacklist (every observed unsafe
   publisher — including the ones the vendor never reported) plus the
   anonymous-inventory exclusion;
3. re-run the same flights with those placement exclusions configured;
4. compare unsafe-publisher exposure before and after.

Run with:  python examples/remediation_loop.py  [scale]
"""

import dataclasses
import sys

from repro import ExperimentRunner, paper_experiment
from repro.audit import BrandSafetyAudit


def unsafe_exposure(result) -> tuple[int, int]:
    """(unsafe impressions, unsafe publishers) across all campaigns."""
    impressions = 0
    publishers = set()
    for record in result.dataset.store:
        info = result.dataset.publisher_info(record.domain)
        if info is not None and info.unsafe:
            impressions += 1
            publishers.add(record.domain)
    return impressions, len(publishers)


def main(scale: float = 0.05) -> None:
    print(f"[1/3] Running the study at scale {scale} (before remediation)...")
    config = paper_experiment(scale=scale)
    before = ExperimentRunner(config).run()
    audit = BrandSafetyAudit(before.dataset)
    blacklist = audit.blacklist_proposal()
    undisclosed = audit.undisclosed_unsafe_publishers()
    before_impressions, before_publishers = unsafe_exposure(before)

    print(f"      unsafe impressions: {before_impressions} "
          f"on {before_publishers} unsafe publishers")
    print(f"      blacklist proposed by the audit: {len(blacklist)} domains "
          f"({len(undisclosed)} of them never vendor-reported)")

    print("[2/3] Applying placement exclusions to every campaign ...")
    remediated_campaigns = tuple(
        dataclasses.replace(plan, spec=plan.spec.with_exclusions(
            blacklist, exclude_anonymous=True))
        for plan in config.campaigns)
    remediated_config = dataclasses.replace(config,
                                            campaigns=remediated_campaigns)

    print("[3/3] Re-running the same flights with the blacklist in force ...")
    after = ExperimentRunner(remediated_config).run()
    after_impressions, after_publishers = unsafe_exposure(after)

    print()
    print("Brand-safety exposure, before vs after remediation")
    print(f"  unsafe impressions : {before_impressions:6d} -> {after_impressions:6d}")
    print(f"  unsafe publishers  : {before_publishers:6d} -> {after_publishers:6d}")
    removed = before_impressions - after_impressions
    if before_impressions:
        print(f"  eliminated         : {removed} "
              f"({removed / before_impressions:.0%} of unsafe impressions)")
    leftovers = {record.domain for record in after.dataset.store
                 if after.dataset.publisher_info(record.domain) is not None
                 and after.dataset.publisher_info(record.domain).unsafe}
    new_sites = leftovers - set(blacklist)
    print(f"  residual unsafe publishers never seen in run 1: {len(new_sites)}")
    print()
    print("Residual exposure comes from unsafe publishers the first flight "
          "never touched —\nwhich is the paper's argument for *continuous* "
          "independent auditing rather than\na one-off check.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
