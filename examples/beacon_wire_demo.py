"""Wire-level demo: watch one beacon report travel to the collector.

Shows the actual bytes of the paper's collection pipeline — the HTTP
upgrade handshake, the masked RFC 6455 frames carrying the HELLO string
and interaction events, and the server-side record that results, with the
exposure time measured as connection duration.

Run with:  python examples/beacon_wire_demo.py
"""

import random

from repro.beacon.events import (
    BeaconObservation,
    InteractionEvent,
    InteractionKind,
)
from repro.collector.payload import encode_hello, encode_interaction
from repro.collector.server import CollectorServer
from repro.collector.store import ImpressionStore
from repro.net.transport import Endpoint, NetworkConditions, SimulatedNetwork
from repro.net.websocket import (
    Frame,
    Opcode,
    encode_frame,
    make_client_key,
    make_handshake_request,
)
from repro.util.simclock import SimClock


def hexdump(data: bytes, limit: int = 64) -> str:
    shown = data[:limit]
    body = " ".join(f"{byte:02x}" for byte in shown)
    suffix = f" ... (+{len(data) - limit} bytes)" if len(data) > limit else ""
    return body + suffix


def main() -> None:
    clock = SimClock.at_utc(2016, 4, 2)
    store = ImpressionStore()
    network = SimulatedNetwork(clock, random.Random(1),
                               NetworkConditions(connect_failure_rate=0.0,
                                                 mid_stream_failure_rate=0.0))
    collector = CollectorServer(store)
    collector.attach(network)

    observation = BeaconObservation(
        campaign_id="Football-010",
        creative_id="Football-010-creative",
        page_url="http://futbol123.es/football/article-77.html",
        user_agent="Mozilla/5.0 (X11; Linux x86_64) ... Chrome/49.0.2623.87",
        interactions=(
            InteractionEvent(InteractionKind.MOUSE_MOVE, 1.2),
            InteractionEvent(InteractionKind.CLICK, 3.4),
        ),
        exposure_seconds=6.5,
    )

    # 1. The device opens a TCP connection to the collector.
    client = Endpoint(ip="2.0.0.42", port=51515)
    connection = network.connect(client, collector.endpoint,
                                 at_time=clock.now())
    now = connection.opened_at_server
    print(f"connection #{connection.connection_id} "
          f"{connection.client} -> {connection.server}, "
          f"opened at server time {connection.opened_at_server:.3f}")

    # 2. The WebSocket upgrade handshake.
    rng = random.Random(2)
    key = make_client_key(rng)
    request = make_handshake_request(collector.endpoint.ip, "/beacon", key,
                                     origin=observation.page_url)
    print("\n-- client handshake request " + "-" * 30)
    print(request.decode("ascii").rstrip())
    connection.client_send(request, now)
    collector.process(connection)
    print("\n-- server response " + "-" * 39)
    print(connection.drain_client_inbox().decode("ascii").rstrip())

    # 3. The HELLO frame (masked, as RFC 6455 requires of clients).
    hello_text = encode_hello(observation)
    hello_frame = encode_frame(Frame(Opcode.TEXT, hello_text.encode("utf-8"),
                                     masked=True), rng=rng)
    print("\n-- HELLO payload " + "-" * 41)
    print(hello_text)
    print("-- on the wire (masked):")
    print(hexdump(hello_frame))
    connection.client_send(hello_frame, now)
    collector.process(connection)

    # 4. Interaction events at their offsets.
    for event in observation.interactions:
        text = encode_interaction(event)
        frame = encode_frame(Frame(Opcode.TEXT, text.encode("utf-8"),
                                   masked=True), rng=rng)
        event_time = now + event.offset_seconds
        connection.client_send(frame, event_time)
        collector.process(connection)
        print(f"\nEVT at +{event.offset_seconds:.1f}s: {text}")
        print("wire:", hexdump(frame, limit=32))

    # 5. Page unload: CLOSE frame + teardown; the server measures duration.
    close_time = now + observation.exposure_seconds
    connection.client_send(encode_frame(Frame(Opcode.CLOSE, b"", masked=True),
                                        rng=rng), close_time)
    connection.close(close_time)
    record = collector.finalize(connection)

    print("\n-- committed impression record " + "-" * 27)
    print(f"record_id        = {record.record_id}")
    print(f"campaign_id      = {record.campaign_id}")
    print(f"publisher domain = {record.domain}")
    print(f"ip (pre-enrich)  = {record.ip}")
    print(f"timestamp        = {record.timestamp:.3f}  (server clock)")
    print(f"exposure_seconds = {record.exposure_seconds:.3f}  "
          "(connection duration)")
    print(f"mouse_moves      = {record.mouse_moves}, clicks = {record.clicks}")


if __name__ == "__main__":
    main()
