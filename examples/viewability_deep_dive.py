"""Viewability deep dive: the upper bound vs the real MRC standard.

The paper can only certify that an ad was *exposed* ≥ 1 s (connection
duration); the Same-Origin Policy hides whether its pixels were ever on
screen (§3.1).  On SafeFrame inventory the geometry is visible, so this
example measures the complete MRC standard there, extrapolates it, and
quantifies how optimistic the upper bound really is — context for why the
vendor's viewable-only placement reports hide so many publishers.

Run with:  python examples/viewability_deep_dive.py  [scale]
"""

import sys

from repro import ExperimentRunner, paper_experiment
from repro.audit.viewability import ViewabilityAudit
from repro.util.tables import render_table


def main(scale: float = 0.08) -> None:
    print(f"Running the 8-campaign study at scale {scale} ...")
    result = ExperimentRunner(paper_experiment(scale=scale)).run()
    audit = ViewabilityAudit(result.dataset)

    rows = []
    for campaign_id in result.dataset.campaign_ids:
        estimate = audit.mrc_estimate(campaign_id)
        rows.append([
            campaign_id,
            str(estimate.upper_bound),
            str(estimate.coverage),
            str(estimate.mrc_viewable_on_safeframe),
            f"{100 * estimate.extrapolated_mrc:.2f} %",
            f"{estimate.upper_bound_inflation:+.1f} pts",
        ])
    print()
    print(render_table(
        ["Campaign", "Upper bound (>=1s)", "SafeFrame coverage",
         "MRC on SafeFrame", "Extrapolated MRC", "Bound optimism"],
        rows, title="Exposure upper bound vs full MRC viewability"))
    print()
    print("Reading: the >=1s exposure bound (the best a cross-origin beacon "
          "can do)\noverstates true MRC viewability by tens of points — "
          "roughly half of exposed\nimpressions never get 50% of their "
          "pixels on screen.  This is also why the\nvendor's viewable-only "
          "placement report hides so much of the long tail\n(Figure 1).")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.08)
