"""Frequency capping: how often does one user see the same ad?

Reproduces the paper's Figure 3 analysis — users identified as
(IP, User-Agent) pairs, impressions of one ad counted per user, median
inter-arrival times — and then asks the advertiser's follow-up question:
how many impressions would a sensible default cap have saved?

Run with:  python examples/frequency_cap_analysis.py  [scale]
"""

import sys

from repro import ExperimentRunner, paper_experiment
from repro.audit import FrequencyAudit
from repro.util.tables import render_table


def main(scale: float = 0.05) -> None:
    print(f"Running the 8-campaign study at scale {scale} ...")
    result = ExperimentRunner(paper_experiment(scale=scale)).run()
    audit = FrequencyAudit(result.dataset)

    summary = audit.summary(None)
    print()
    print(f"(user, ad) pairs observed:        {summary.total_users}")
    print(f"users with >10 impressions:       {summary.users_over_10}")
    print(f"users with >100 impressions:      {summary.users_over_100}")
    print(f"max impressions for one user:     {summary.max_impressions_single_user}")
    print(f"heavy users w/ median gap < 60 s: {summary.users_median_under_60s}")
    print(f"users w/ some gap < 20 s:         {summary.users_min_under_20s}")

    # The worst offenders, Figure 3's upper-left corner.
    points = sorted(audit.user_frequencies(None),
                    key=lambda p: p.impressions, reverse=True)
    rows = []
    for point in points[:10]:
        rows.append([point.campaign_id, point.impressions,
                     f"{point.median_interarrival_seconds:.0f}"
                     if point.median_interarrival_seconds else "-",
                     f"{point.min_interarrival_seconds:.0f}"
                     if point.min_interarrival_seconds else "-"])
    print()
    print(render_table(
        ["Campaign", "Impressions to one user", "Median gap (s)",
         "Min gap (s)"],
        rows, title="Heaviest receivers (Figure 3 extremes)"))

    # What would a default cap have saved?
    total = len(result.dataset.store)
    rows = []
    for cap in (1, 3, 5, 10, 20):
        saved = audit.would_suppress(cap, None)
        rows.append([cap, saved, f"{saved / total:.1%}"])
    print()
    print(render_table(
        ["Cap", "Impressions suppressed", "Share of spend"],
        rows, title="Savings under a default per-user frequency cap"))
    print()
    print("The vendor applies no default cap; the literature (Microsoft "
          "Advertising Institute, 2009)\nfinds no conversion benefit beyond "
          "10 impressions per user.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
