"""Conversion funnel: the paper's future work, end to end.

The paper's §4.2 leaves conversion analysis for future work.  This example
runs it: join the advertiser's first-party conversion log against the
beacon dataset (both keyed by the anonymised IP ⊕ User-Agent identity) and
walk the funnel — impressions → clicks → conversions — per campaign.

The join surfaces the cleanest fraud signal in the whole study: clicks
from data-center identities essentially never convert, so the share of
spend behind them is pure waste.

Run with:  python examples/conversion_funnel.py  [scale]
"""

import math
import sys

from repro import ExperimentRunner, paper_experiment
from repro.audit import ConversionAudit
from repro.util.tables import render_table


def main(scale: float = 0.08) -> None:
    print(f"Running the 8-campaign study at scale {scale} ...")
    result = ExperimentRunner(paper_experiment(scale=scale)).run()
    audit = ConversionAudit(result.dataset, result.conversions)

    rows = []
    for outcome in audit.table():
        cost = ("-" if math.isinf(outcome.cost_per_conversion_eur)
                else f"{outcome.cost_per_conversion_eur:.4f}")
        rows.append([outcome.campaign_id, outcome.impressions,
                     outcome.clicks, str(outcome.ctr), outcome.conversions,
                     str(outcome.conversion_ratio), cost,
                     f"{outcome.revenue_eur:.2f}"])
    print()
    print(render_table(
        ["Campaign", "Impressions", "Clicks", "CTR", "Conversions",
         "Conv. ratio", "EUR / conversion", "Revenue EUR"],
        rows, title="Conversion funnel (the paper's future-work analysis)"))

    print()
    print("Click-fraud signal: data-center share of clicks vs conversions")
    for campaign_id in result.dataset.campaign_ids:
        outcome = audit.assess(campaign_id)
        if outcome.clicks == 0:
            continue
        signal = audit.fraud_signal(campaign_id)
        print(f"  {campaign_id:14s} DC clicks {outcome.dc_clicks:3d}/"
              f"{outcome.clicks:<4d} ({outcome.dc_click_waste})   "
              f"DC conversions {outcome.dc_conversions}   "
              f"signal {signal:+.2f}")
    print()
    print("A positive signal means hosted traffic clicks without ever "
          "buying: those clicks\n(and the impressions behind them) are the "
          "fraud the audit attributes to data centers.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.08)
