"""Fraud hunt: quantify a campaign's exposure to data-center traffic.

Walks the paper's §4.2 fraud methodology over the Football campaigns:
classify every logged IP through the MaxMind-like database, the Botlab-like
deny list, and the manual-verification stage; report Table 4's statistics,
which cascade stage caught what, the money at stake, and how the vendor's
silent refund compares to the audit's estimate.

Run with:  python examples/fraud_hunt.py  [scale]
"""

import sys

from repro import ExperimentRunner, paper_experiment
from repro.audit import FraudAudit
from repro.util.tables import render_table


def main(scale: float = 0.05) -> None:
    print(f"Running the 8-campaign study at scale {scale} ...")
    result = ExperimentRunner(paper_experiment(scale=scale)).run()
    audit = FraudAudit(result.dataset)

    rows = []
    for stats in audit.table():
        rows.append([stats.campaign_id, str(stats.dc_ips),
                     str(stats.dc_impressions), str(stats.dc_publishers)])
    print()
    print(render_table(
        ["Campaign", "DC IPs", "DC impressions", "DC publishers"],
        rows, title="Table 4: data-center traffic per campaign"))

    print()
    print("Detection-cascade breakdown (which stage caught the traffic):")
    for campaign_id in ("Football-010", "Football-030"):
        breakdown = audit.stage_breakdown(campaign_id)
        denylist = breakdown.get("denylist", 0)
        manual = breakdown.get("manual", 0)
        print(f"  {campaign_id}: deny list {denylist}, "
              f"manual verification {manual}")

    print()
    print("Money at stake (CPM-bound estimate vs the vendor's opaque refund):")
    for campaign_id in result.dataset.campaign_ids:
        stats = audit.assess(campaign_id)
        if stats.dc_impressions.numerator == 0:
            continue
        gap = stats.estimated_cost_eur - stats.vendor_refund_eur
        print(f"  {campaign_id:14s} est. cost {stats.estimated_cost_eur:8.4f} EUR"
              f"   refunded {stats.vendor_refund_eur:8.4f} EUR"
              f"   outstanding {max(0.0, gap):8.4f} EUR")

    # Show a few offending (anonymised) identities with their providers.
    print()
    print("Sample data-center identities (IP anonymised, provider kept):")
    seen = set()
    for record in result.dataset.store:
        if record.is_datacenter and record.provider not in seen:
            seen.add(record.provider)
            print(f"  token={record.ip_token}  provider={record.provider}"
                  f"  stage={record.dc_stage}")
        if len(seen) >= 8:
            break


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
