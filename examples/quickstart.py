"""Quickstart: audit one display campaign end to end.

Builds a miniature web ecosystem, runs a single keyword-targeted campaign
through the GDN-like ad server, collects impressions with the injected
beacon over (simulated) WebSockets, and prints the audit next to what the
vendor's console would have claimed.

Run with:  python examples/quickstart.py
"""

from repro.adnetwork import (
    AdServer,
    CampaignSpec,
    MatchEngine,
    VendorReporter,
)
from repro.adnetwork.inventory import ExternalDemand
from repro.audit import AuditDataset, full_audit
from repro.beacon import BeaconScript
from repro.beacon.client import BeaconClient
from repro.collector import CollectorServer, Enricher, ImpressionStore
from repro.geo import DataCenterResolver, DenyList, GeoIpDatabase, ProviderRegistry
from repro.net.transport import SimulatedNetwork
from repro.taxonomy import build_default_lexicon
from repro.util import RngFactory, SimClock
from repro.web import (
    BotConfig,
    BotFleet,
    BrowsingSimulator,
    PopulationConfig,
    PublisherUniverse,
    UniverseConfig,
    UserPopulation,
)


def main() -> None:
    rngs = RngFactory(seed=7)
    lexicon = build_default_lexicon()

    # --- the world ----------------------------------------------------- #
    universe = PublisherUniverse(rngs.stream("publishers"),
                                 UniverseConfig(publisher_count=1_500),
                                 lexicon=lexicon)
    registry = ProviderRegistry(rngs.stream("providers"))
    population = UserPopulation(rngs.stream("users"), registry, lexicon.tree,
                                config=PopulationConfig(users_per_country=400))
    bots = BotFleet(rngs.stream("bots"), registry, countries=("ES",),
                    config=BotConfig(bots_per_fleet=5, fleet_count=1,
                                     daily_pageviews_min=20.0,
                                     daily_pageviews_max=60.0,
                                     fleet_focus_size=10))

    # --- the campaign (what the advertiser configures) ------------------ #
    start, end = CampaignSpec.flight(2016, 4, 2, 4, 3)
    campaign = CampaignSpec(
        campaign_id="Football-010",
        keywords=("Football",),
        cpm_eur=0.10,
        target_countries=("ES",),
        start_unix=start,
        end_unix=end,
        daily_budget_eur=0.30,
    )

    # --- vendor side ----------------------------------------------------#
    ipdb = GeoIpDatabase(registry)
    ad_server = AdServer([campaign], MatchEngine(lexicon), ExternalDemand(),
                         ipdb)

    # --- our auditing instrumentation ----------------------------------- #
    clock = SimClock(start)
    network = SimulatedNetwork(clock, rngs.stream("network"))
    store = ImpressionStore()
    collector = CollectorServer(store)
    collector.attach(network)
    beacon_client = BeaconClient(network, collector, clock,
                                 rngs.stream("beacon"))
    script = BeaconScript()

    # --- run the flight -------------------------------------------------- #
    browsing = BrowsingSimulator(universe, lexicon.tree)
    serve_rng, script_rng = rngs.stream("serve"), rngs.stream("script")
    for pageview in browsing.stream(population.in_country("ES"), bots.bots,
                                    start, end, rngs.stream("browse")):
        impression = ad_server.serve(pageview, serve_rng)
        if impression is None:
            continue
        observation = script.observe(impression, script_rng)
        if observation is None:
            continue                     # blocked script: impression lost
        beacon_client.deliver(impression, observation)

    # --- vendor report + enrichment + audit ------------------------------ #
    ad_server.billing.apply_fraud_refunds(ad_server.impressions,
                                          rngs.stream("refunds"))
    report = VendorReporter().report(
        campaign.campaign_id, ad_server.impressions,
        charged_eur=ad_server.billing.charged_total(campaign.campaign_id),
        refunded_eur=ad_server.billing.refunded_total(campaign.campaign_id))
    resolver = DataCenterResolver(ipdb, DenyList.from_registry(registry))
    Enricher(ipdb, resolver, universe.ranking).enrich_store(store)

    dataset = AuditDataset(
        store=store,
        campaigns={campaign.campaign_id: campaign},
        vendor_reports={campaign.campaign_id: report},
        directory={publisher.domain: publisher
                   for publisher in universe.publishers},
        lexicon=lexicon,
        ranking=universe.ranking,
    )

    print(f"Delivered (vendor ground truth): {len(ad_server.impressions)}")
    print(f"Logged by our beacon:            {len(store)}")
    print(f"Vendor-reported total:           {report.total_impressions}")
    print(f"Vendor contextual claim:         {report.contextual}")
    print()
    print(full_audit(dataset).render())


if __name__ == "__main__":
    main()
