"""Brand safety: find the publishers your vendor never told you about.

Re-creates the paper's §4.2 brand-safety analysis on the 8-campaign study:
the Venn comparison between audit-observed and vendor-reported publishers,
the "anonymous inventory cannot explain the gap" bound for General-005, and
an actionable exclusion list of brand-unsafe publishers that served ads
without ever appearing in a vendor report.

Run with:  python examples/brand_safety_blacklist.py  [scale]
"""

import sys

from repro import ExperimentRunner, paper_experiment
from repro.audit import BrandSafetyAudit
from repro.util.tables import render_table


def main(scale: float = 0.05) -> None:
    print(f"Running the 8-campaign study at scale {scale} ...")
    result = ExperimentRunner(paper_experiment(scale=scale)).run()
    audit = BrandSafetyAudit(result.dataset)

    rows = []
    for campaign_id in result.dataset.campaign_ids:
        venn = audit.venn(campaign_id)
        rows.append([campaign_id, venn.audit_only, venn.both,
                     venn.vendor_only, str(venn.unreported_by_vendor)])
    aggregate = audit.venn(None)
    rows.append(["ALL", aggregate.audit_only, aggregate.both,
                 aggregate.vendor_only, str(aggregate.unreported_by_vendor)])
    print()
    print(render_table(
        ["Campaign", "Audit only", "Both", "Vendor only",
         "Unreported by vendor"],
        rows, title="Publisher coverage: our beacon vs the vendor console"))

    # The paper's General-005 argument: even if every anonymous.google
    # impression sat on its own distinct publisher, the gap would remain.
    bound = audit.anonymous_bound("General-005")
    print()
    print(f"General-005 anonymous impressions:     {bound.anonymous_impressions}")
    print(f"General-005 unreported publishers:     {bound.unreported_publishers}")
    print(f"Unexplained even granting anonymity:   {bound.unexplained_publishers}")

    undisclosed = audit.undisclosed_unsafe_publishers()
    print()
    print(f"Brand-unsafe publishers the vendor never disclosed "
          f"({len(undisclosed)}):")
    for domain in undisclosed[:15]:
        info = result.dataset.publisher_info(domain)
        print(f"  {domain:30s} topics={','.join(info.topics)}")
    print()
    print("Recommended exclusion list (all observed unsafe publishers):")
    print("  " + ", ".join(audit.blacklist_proposal()[:20]))


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.05)
