"""Does paying a higher CPM buy more popular publishers?  (Figure 2)

Sweeps custom campaigns across CPM levels in two markets (Spain and
Russia), runs each through the pipeline, and tabulates where their
impressions landed on the Alexa-style ranking — reproducing the paper's
counter-intuitive finding that a 30x CPM increase does not move a campaign
up-market, while market choice does.

Run with:  python examples/cpm_popularity_study.py
"""

from repro.adnetwork import AdServer, CampaignSpec, MatchEngine
from repro.adnetwork.inventory import ExternalDemand
from repro.audit import AuditDataset, PopularityAudit
from repro.adnetwork.reporting import VendorReporter
from repro.beacon import BeaconScript
from repro.beacon.client import BeaconClient
from repro.collector import CollectorServer, Enricher, ImpressionStore
from repro.geo import DataCenterResolver, DenyList, GeoIpDatabase, ProviderRegistry
from repro.net.transport import SimulatedNetwork
from repro.taxonomy import build_default_lexicon
from repro.util import RngFactory, SimClock
from repro.util.tables import render_table
from repro.web import (
    BrowsingSimulator,
    PopulationConfig,
    PublisherUniverse,
    UniverseConfig,
    UserPopulation,
)

CPM_SWEEP = (
    ("sweep-ES-001", 0.01, "ES"),
    ("sweep-ES-010", 0.10, "ES"),
    ("sweep-ES-030", 0.30, "ES"),
    ("sweep-RU-001", 0.01, "RU"),
)


def main() -> None:
    rngs = RngFactory(seed=42)
    lexicon = build_default_lexicon()
    universe = PublisherUniverse(rngs.stream("publishers"),
                                 UniverseConfig(publisher_count=2_500),
                                 lexicon=lexicon)
    registry = ProviderRegistry(rngs.stream("providers"))
    population = UserPopulation(rngs.stream("users"), registry, lexicon.tree,
                                config=PopulationConfig(users_per_country=500))

    start, end = CampaignSpec.flight(2016, 4, 2, 4, 3)
    campaigns = [
        CampaignSpec(campaign_id=cid, keywords=("news",), cpm_eur=cpm,
                     target_countries=(country,), start_unix=start,
                     end_unix=end, daily_budget_eur=0.05 * max(cpm, 0.02))
        for cid, cpm, country in CPM_SWEEP
    ]

    ipdb = GeoIpDatabase(registry)
    server = AdServer(campaigns, MatchEngine(lexicon), ExternalDemand(), ipdb)
    clock = SimClock(start)
    network = SimulatedNetwork(clock, rngs.stream("network"))
    store = ImpressionStore()
    collector = CollectorServer(store)
    collector.attach(network)
    client = BeaconClient(network, collector, clock, rngs.stream("beacon"))
    script = BeaconScript()
    browsing = BrowsingSimulator(universe, lexicon.tree)

    humans = population.in_country("ES") + population.in_country("RU")
    serve_rng, script_rng = rngs.stream("serve"), rngs.stream("script")
    for pageview in browsing.stream(humans, [], start, end,
                                    rngs.stream("browse")):
        impression = server.serve(pageview, serve_rng)
        if impression is None:
            continue
        observation = script.observe(impression, script_rng)
        if observation is not None:
            client.deliver(impression, observation)

    resolver = DataCenterResolver(ipdb, DenyList.from_registry(registry))
    Enricher(ipdb, resolver, universe.ranking).enrich_store(store)
    reporter = VendorReporter()
    dataset = AuditDataset(
        store=store,
        campaigns={campaign.campaign_id: campaign for campaign in campaigns},
        vendor_reports={campaign.campaign_id: reporter.report(
            campaign.campaign_id,
            server.impressions_for(campaign.campaign_id))
            for campaign in campaigns},
        directory={publisher.domain: publisher
                   for publisher in universe.publishers},
        lexicon=lexicon,
        ranking=universe.ranking,
    )

    audit = PopularityAudit(dataset)
    rows = []
    for cid, cpm, country in CPM_SWEEP:
        records = dataset.records(cid)
        if not records:
            rows.append([cid, f"{cpm:.2f}", country, 0, "-", "-"])
            continue
        publishers, impressions = audit.top_concentration(cid, 100_000)
        rows.append([cid, f"{cpm:.2f}", country, len(records),
                     f"{publishers:.1%}", f"{impressions:.1%}"])
    print(render_table(
        ["Campaign", "CPM EUR", "Market", "Impressions",
         "Publishers in top 100K", "Impressions in top 100K"],
        rows, title="CPM vs popularity (paper Figure 2's question)"))
    print()
    print("Reading: CPM means little without market context — the 0.01 EUR "
          "bid is priced\nout of Spain's premium floors, yet the identical "
          "bid tops the Russian market\nand reaches its most popular "
          "publishers, matching the paper's observation that\nhigher "
          "investment does not reliably buy popularity.")


if __name__ == "__main__":
    main()
