"""Tests for repro.net.cidrtrie — longest-prefix-match trie."""

import pytest

from repro.net.cidrtrie import CidrTrie
from repro.net.ipv4 import parse_cidr


class TestCidrTrie:
    def test_empty_trie_matches_nothing(self):
        trie = CidrTrie()
        assert trie.lookup("1.2.3.4") is None
        assert not trie.covers("1.2.3.4")
        assert len(trie) == 0

    def test_single_prefix(self):
        trie = CidrTrie()
        trie.insert("10.0.0.0/8", "ten")
        assert trie.lookup("10.1.2.3") == "ten"
        assert trie.lookup("11.0.0.0") is None

    def test_longest_prefix_wins(self):
        trie = CidrTrie()
        trie.insert("10.0.0.0/8", "short")
        trie.insert("10.1.0.0/16", "long")
        trie.insert("10.1.2.0/24", "longest")
        assert trie.lookup("10.1.2.9") == "longest"
        assert trie.lookup("10.1.9.9") == "long"
        assert trie.lookup("10.9.9.9") == "short"

    def test_insertion_order_is_irrelevant(self):
        first = CidrTrie()
        first.insert("10.0.0.0/8", "a")
        first.insert("10.1.0.0/16", "b")
        second = CidrTrie()
        second.insert("10.1.0.0/16", "b")
        second.insert("10.0.0.0/8", "a")
        for ip in ("10.1.0.1", "10.2.0.1"):
            assert first.lookup(ip) == second.lookup(ip)

    def test_replace_value_keeps_size(self):
        trie = CidrTrie()
        trie.insert("10.0.0.0/8", "old")
        trie.insert("10.0.0.0/8", "new")
        assert trie.lookup("10.0.0.1") == "new"
        assert len(trie) == 1

    def test_default_route(self):
        trie = CidrTrie()
        trie.insert("0.0.0.0/0", "default")
        trie.insert("10.0.0.0/8", "specific")
        assert trie.lookup("8.8.8.8") == "default"
        assert trie.lookup("10.0.0.1") == "specific"

    def test_host_route(self):
        trie = CidrTrie()
        trie.insert("1.2.3.4/32", "host")
        assert trie.lookup("1.2.3.4") == "host"
        assert trie.lookup("1.2.3.5") is None

    def test_lookup_with_prefix_returns_covering_block(self):
        trie = CidrTrie()
        trie.insert("192.168.0.0/16", "lan")
        match = trie.lookup_with_prefix("192.168.4.4")
        assert match is not None
        cidr, value = match
        assert str(cidr) == "192.168.0.0/16"
        assert value == "lan"

    def test_items_returns_all_inserted_prefixes(self):
        trie = CidrTrie()
        blocks = ["10.0.0.0/8", "10.1.0.0/16", "172.16.0.0/12", "0.0.0.0/0"]
        for index, block in enumerate(blocks):
            trie.insert(block, index)
        found = {str(cidr) for cidr, _ in trie.items()}
        assert found == set(blocks)

    def test_accepts_cidr_objects(self):
        trie = CidrTrie()
        trie.insert(parse_cidr("10.0.0.0/8"), "x")
        assert trie.lookup("10.0.0.1") == "x"

    def test_adjacent_blocks_do_not_bleed(self):
        trie = CidrTrie()
        trie.insert("10.0.0.0/24", "a")
        trie.insert("10.0.1.0/24", "b")
        assert trie.lookup("10.0.0.255") == "a"
        assert trie.lookup("10.0.1.0") == "b"
        assert trie.lookup("10.0.2.0") is None


class TestLookupReturnsInsertedPrefix:
    """The CIDR handed back by a lookup must be the inserted one — not a
    network re-derived from the queried address."""

    @pytest.mark.parametrize("block,probe", [
        ("10.0.0.0/8", "10.255.255.255"),        # aligned, far corner
        ("192.168.0.0/16", "192.168.0.0"),       # aligned, network address
        ("172.16.0.0/12", "172.31.9.9"),         # non-octet-aligned prefix
        ("1.2.3.4/32", "1.2.3.4"),               # host route
    ])
    def test_returned_network_equals_inserted(self, block, probe):
        trie = CidrTrie()
        inserted = parse_cidr(block)
        trie.insert(inserted, "v")
        match = trie.lookup_with_prefix(probe)
        assert match is not None
        cidr, _ = match
        assert cidr == inserted
        assert (cidr.network, cidr.prefix) == (inserted.network,
                                               inserted.prefix)

    def test_default_route_prefix_is_whole_space(self):
        trie = CidrTrie()
        trie.insert("0.0.0.0/0", "default")
        match = trie.lookup_with_prefix("203.0.113.77")
        assert match is not None
        cidr, value = match
        assert str(cidr) == "0.0.0.0/0"
        assert value == "default"

    def test_longest_match_reports_its_own_prefix(self):
        trie = CidrTrie()
        trie.insert("10.0.0.0/8", "short")
        trie.insert("10.1.0.0/16", "long")
        cidr, value = trie.lookup_with_prefix("10.1.2.3")
        assert (str(cidr), value) == ("10.1.0.0/16", "long")
        cidr, value = trie.lookup_with_prefix("10.2.2.3")
        assert (str(cidr), value) == ("10.0.0.0/8", "short")

    def test_replace_updates_prefix_and_keeps_size(self):
        trie = CidrTrie()
        trie.insert("10.0.0.0/8", "old")
        trie.insert(parse_cidr("10.0.0.0/8"), "new")
        assert len(trie) == 1
        cidr, value = trie.lookup_with_prefix("10.3.3.3")
        assert (str(cidr), value) == ("10.0.0.0/8", "new")

    def test_items_yield_inserted_prefix_objects(self):
        trie = CidrTrie()
        inserted = parse_cidr("172.16.0.0/12")
        trie.insert(inserted, "x")
        ((cidr, _),) = list(trie.items())
        assert cidr == inserted
