"""Masking equivalence: bulk big-int XOR vs. the reference byte loop.

The optimized ``_apply_mask`` must be byte-identical to the retained
per-byte reference on every payload — these tests pin that across the
wire format's framing boundaries (125/126/65535/65536), the empty
payload, randomized payloads, and full encode→decode round trips in
both masked and unmasked form.
"""

import random

import pytest

from repro.net.websocket import (
    Frame,
    FrameDecoder,
    Opcode,
    WebSocketError,
    _apply_mask,
    _apply_mask_reference,
    decode_frame,
    encode_frame,
)
from repro.util import hotpath

#: Payload sizes around every length-encoding switch of RFC 6455 plus
#: the empty payload and non-multiple-of-4 tails.
BOUNDARY_LENGTHS = [0, 1, 2, 3, 4, 5, 124, 125, 126, 127, 128,
                    65534, 65535, 65536, 65537]


class TestMaskEquivalence:
    @pytest.mark.parametrize("length", BOUNDARY_LENGTHS)
    def test_boundary_lengths_match_reference(self, length):
        rng = random.Random(length)
        payload = rng.randbytes(length)
        mask = rng.randbytes(4)
        assert _apply_mask(payload, mask) == \
            _apply_mask_reference(payload, mask)

    def test_randomized_payloads_match_reference(self):
        rng = random.Random(20160406)
        for _ in range(200):
            payload = rng.randbytes(rng.randrange(0, 300))
            mask = rng.randbytes(4)
            assert _apply_mask(payload, mask) == \
                _apply_mask_reference(payload, mask)

    def test_zero_mask_is_identity(self):
        payload = bytes(range(256))
        assert _apply_mask(payload, b"\x00" * 4) == payload
        assert _apply_mask_reference(payload, b"\x00" * 4) == payload

    def test_empty_payload(self):
        mask = b"\x12\x34\x56\x78"
        assert _apply_mask(b"", mask) == b""
        assert _apply_mask_reference(b"", mask) == b""

    @pytest.mark.parametrize("bad_mask", [b"", b"\x01", b"\x01\x02\x03",
                                          b"\x01\x02\x03\x04\x05"])
    def test_both_reject_bad_mask_length(self, bad_mask):
        with pytest.raises(WebSocketError):
            _apply_mask(b"payload", bad_mask)
        with pytest.raises(WebSocketError):
            _apply_mask_reference(b"payload", bad_mask)

    def test_reference_mode_dispatches_to_byte_loop(self):
        rng = random.Random(7)
        payload, mask = rng.randbytes(1000), rng.randbytes(4)
        with hotpath.reference_hotpaths():
            assert _apply_mask(payload, mask) == \
                _apply_mask_reference(payload, mask)


class TestRoundTripAtBoundaries:
    @pytest.mark.parametrize("length", BOUNDARY_LENGTHS)
    def test_masked_roundtrip(self, length):
        rng = random.Random(1000 + length)
        payload = rng.randbytes(length)
        wire = encode_frame(Frame(Opcode.BINARY, payload, masked=True),
                            mask_key=rng.randbytes(4))
        decoded, consumed = decode_frame(wire)
        assert decoded.payload == payload
        assert decoded.masked
        assert consumed == len(wire)

    @pytest.mark.parametrize("length", BOUNDARY_LENGTHS)
    def test_unmasked_roundtrip(self, length):
        rng = random.Random(2000 + length)
        payload = rng.randbytes(length)
        decoded, _ = decode_frame(encode_frame(Frame(Opcode.BINARY, payload)))
        assert decoded.payload == payload
        assert not decoded.masked

    def test_wire_bytes_identical_between_modes(self):
        # The optimized encoder must put the same bytes on the wire as
        # the reference, not merely round-trip — a frame is compared
        # byte-for-byte in both masked and unmasked form.
        rng = random.Random(99)
        payload = rng.randbytes(70000)
        mask_key = rng.randbytes(4)
        masked = Frame(Opcode.BINARY, payload, masked=True)
        plain = Frame(Opcode.BINARY, payload)
        optimized = (encode_frame(masked, mask_key=mask_key),
                     encode_frame(plain))
        with hotpath.reference_hotpaths():
            reference = (encode_frame(masked, mask_key=mask_key),
                         encode_frame(plain))
        assert optimized == reference

    def test_streaming_decoder_unmasks_large_frames(self):
        rng = random.Random(3)
        payload = rng.randbytes(65536 + 17)
        wire = encode_frame(Frame(Opcode.BINARY, payload, masked=True),
                            mask_key=rng.randbytes(4))
        decoder = FrameDecoder()
        frames = []
        for start in range(0, len(wire), 4096):
            frames.extend(decoder.feed(wire[start:start + 4096]))
        assert len(frames) == 1
        assert frames[0].payload == payload
