"""Tests for repro.net.ipv4."""

import pytest

from repro.net.ipv4 import Cidr, cidr_contains, int_to_ip, ip_to_int, parse_cidr


class TestIpToInt:
    def test_known_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("10.0.0.1") == (10 << 24) + 1
        assert ip_to_int("1.2.3.4") == 0x01020304

    def test_roundtrip(self):
        for ip in ("8.8.8.8", "192.168.1.254", "172.16.0.1"):
            assert int_to_ip(ip_to_int(ip)) == ip

    @pytest.mark.parametrize("bad", [
        "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1.2.3.04",
        "01.2.3.4", " 1.2.3.4", "1.2.3.4 ", "-1.2.3.4", "", "1..2.3",
        "1.2.3.1000",
    ])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            ip_to_int(bad)

    def test_zero_octet_allowed(self):
        assert ip_to_int("0.1.0.1") == (1 << 16) + 1


class TestIntToIp:
    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            int_to_ip(-1)
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)


class TestCidr:
    def test_mask_and_bounds(self):
        block = parse_cidr("10.0.0.0/8")
        assert block.mask == 0xFF000000
        assert int_to_ip(block.first) == "10.0.0.0"
        assert int_to_ip(block.last) == "10.255.255.255"
        assert block.size == 1 << 24

    def test_slash_zero_covers_everything(self):
        block = parse_cidr("0.0.0.0/0")
        assert block.contains("8.8.8.8")
        assert block.contains("255.255.255.255")
        assert block.size == 1 << 32

    def test_slash_32_is_single_host(self):
        block = parse_cidr("1.2.3.4/32")
        assert block.size == 1
        assert block.contains("1.2.3.4")
        assert not block.contains("1.2.3.5")

    def test_bare_address_parses_as_host(self):
        assert parse_cidr("9.9.9.9").prefix == 32

    def test_contains_boundaries(self):
        block = parse_cidr("192.168.4.0/22")
        assert block.contains("192.168.4.0")
        assert block.contains("192.168.7.255")
        assert not block.contains("192.168.8.0")
        assert not block.contains("192.168.3.255")

    def test_rejects_host_bits_set(self):
        with pytest.raises(ValueError):
            parse_cidr("10.0.0.1/8")

    def test_rejects_bad_prefix(self):
        with pytest.raises(ValueError):
            parse_cidr("10.0.0.0/33")
        with pytest.raises(ValueError):
            parse_cidr("10.0.0.0/x")

    def test_nth_addresses(self):
        block = parse_cidr("10.0.0.0/30")
        assert block.nth(0) == "10.0.0.0"
        assert block.nth(3) == "10.0.0.3"
        with pytest.raises(ValueError):
            block.nth(4)

    def test_str_roundtrip(self):
        assert str(parse_cidr("172.16.0.0/12")) == "172.16.0.0/12"

    def test_direct_construction_validates(self):
        with pytest.raises(ValueError):
            Cidr(network=1, prefix=8)   # host bits set


class TestCidrContains:
    def test_convenience_wrapper(self):
        assert cidr_contains("10.0.0.0/8", "10.200.3.4")
        assert not cidr_contains("10.0.0.0/8", "11.0.0.0")
