"""Tests for repro.net.websocket — RFC 6455 framing and handshake."""

import random

import pytest

from repro.net.websocket import (
    Frame,
    FrameDecoder,
    IncompleteFrame,
    MessageAssembler,
    Opcode,
    WebSocketError,
    accept_key,
    decode_frame,
    encode_frame,
    make_client_key,
    make_handshake_request,
    make_handshake_response,
    parse_handshake_request,
)


def roundtrip(frame: Frame, mask_key: bytes = b"\x11\x22\x33\x44") -> Frame:
    wire = encode_frame(frame, mask_key=mask_key if frame.masked else None)
    decoded, consumed = decode_frame(wire)
    assert consumed == len(wire)
    return decoded


class TestFrameRoundtrip:
    def test_unmasked_text(self):
        frame = roundtrip(Frame(Opcode.TEXT, b"hello"))
        assert frame.opcode is Opcode.TEXT
        assert frame.payload == b"hello"
        assert frame.fin

    def test_masked_text_payload_recovered(self):
        frame = roundtrip(Frame(Opcode.TEXT, b"secret", masked=True))
        assert frame.payload == b"secret"
        assert frame.masked

    def test_masking_obscures_wire_bytes(self):
        payload = b"AAAAAAAA"
        wire = encode_frame(Frame(Opcode.TEXT, payload, masked=True),
                            mask_key=b"\x5a\x5a\x5a\x5a")
        assert payload not in wire

    def test_empty_payload(self):
        assert roundtrip(Frame(Opcode.TEXT, b"")).payload == b""

    def test_binary_frame(self):
        frame = roundtrip(Frame(Opcode.BINARY, bytes(range(256))))
        assert frame.payload == bytes(range(256))

    def test_utf8_text_property(self):
        frame = roundtrip(Frame(Opcode.TEXT, "ñandú €".encode("utf-8")))
        assert frame.text == "ñandú €"

    def test_invalid_utf8_raises_on_text(self):
        frame = roundtrip(Frame(Opcode.TEXT, b"\xff\xfe"))
        with pytest.raises(WebSocketError):
            _ = frame.text

    @pytest.mark.parametrize("length", [125, 126, 127, 65535, 65536, 70000])
    def test_length_encoding_boundaries(self, length):
        frame = roundtrip(Frame(Opcode.BINARY, b"x" * length))
        assert len(frame.payload) == length

    def test_wire_uses_minimal_length_encoding(self):
        short = encode_frame(Frame(Opcode.TEXT, b"x" * 125))
        medium = encode_frame(Frame(Opcode.TEXT, b"x" * 126))
        long = encode_frame(Frame(Opcode.TEXT, b"x" * 65536))
        assert len(short) == 2 + 125
        assert len(medium) == 4 + 126
        assert len(long) == 10 + 65536

    def test_non_fin_fragment(self):
        frame = roundtrip(Frame(Opcode.TEXT, b"part", fin=False))
        assert not frame.fin

    def test_random_mask_key_from_rng_is_deterministic(self):
        one = encode_frame(Frame(Opcode.TEXT, b"x", masked=True),
                           rng=random.Random(1))
        two = encode_frame(Frame(Opcode.TEXT, b"x", masked=True),
                           rng=random.Random(1))
        assert one == two


class TestFrameValidation:
    def test_control_frame_must_be_fin(self):
        with pytest.raises(WebSocketError):
            Frame(Opcode.PING, b"", fin=False)

    def test_control_frame_payload_limit(self):
        Frame(Opcode.PING, b"x" * 125)
        with pytest.raises(WebSocketError):
            Frame(Opcode.PING, b"x" * 126)

    def test_decode_rejects_reserved_bits(self):
        wire = bytearray(encode_frame(Frame(Opcode.TEXT, b"x")))
        wire[0] |= 0x40
        with pytest.raises(WebSocketError):
            decode_frame(bytes(wire))

    def test_decode_rejects_unknown_opcode(self):
        with pytest.raises(WebSocketError):
            decode_frame(bytes([0x83, 0x00]))  # opcode 0x3 is reserved

    def test_decode_rejects_non_minimal_16bit_length(self):
        # 126 marker but actual length 5
        wire = bytes([0x81, 126, 0, 5]) + b"hello"
        with pytest.raises(WebSocketError):
            decode_frame(wire)

    def test_decode_rejects_oversized_control(self):
        # ping with 16-bit length marker
        wire = bytes([0x89, 126, 0, 200]) + b"x" * 200
        with pytest.raises(WebSocketError):
            decode_frame(wire)

    def test_incomplete_header_raises_incomplete(self):
        with pytest.raises(IncompleteFrame):
            decode_frame(b"\x81")

    def test_incomplete_payload_raises_incomplete(self):
        wire = encode_frame(Frame(Opcode.TEXT, b"hello"))
        with pytest.raises(IncompleteFrame):
            decode_frame(wire[:-1])

    def test_bad_mask_key_length(self):
        with pytest.raises(WebSocketError):
            encode_frame(Frame(Opcode.TEXT, b"x", masked=True), mask_key=b"\x01")


class TestFrameDecoder:
    def test_coalesced_frames(self):
        wire = (encode_frame(Frame(Opcode.TEXT, b"one"))
                + encode_frame(Frame(Opcode.TEXT, b"two")))
        decoder = FrameDecoder()
        frames = list(decoder.feed(wire))
        assert [frame.payload for frame in frames] == [b"one", b"two"]
        assert decoder.pending_bytes == 0

    def test_byte_by_byte_delivery(self):
        wire = encode_frame(Frame(Opcode.TEXT, b"fragmented"))
        decoder = FrameDecoder()
        frames = []
        for index in range(len(wire)):
            frames.extend(decoder.feed(wire[index:index + 1]))
        assert len(frames) == 1
        assert frames[0].payload == b"fragmented"

    def test_split_across_two_chunks(self):
        wire = encode_frame(Frame(Opcode.TEXT, b"x" * 300))
        decoder = FrameDecoder()
        assert list(decoder.feed(wire[:10])) == []
        frames = list(decoder.feed(wire[10:]))
        assert len(frames) == 1

    def test_require_masked_rejects_unmasked(self):
        decoder = FrameDecoder(require_masked=True)
        wire = encode_frame(Frame(Opcode.TEXT, b"x"))
        with pytest.raises(WebSocketError):
            list(decoder.feed(wire))

    def test_require_masked_accepts_masked(self):
        decoder = FrameDecoder(require_masked=True)
        wire = encode_frame(Frame(Opcode.TEXT, b"x", masked=True),
                            mask_key=b"\x01\x02\x03\x04")
        assert len(list(decoder.feed(wire))) == 1

    def test_large_coalesced_chunk_decodes_every_frame(self):
        payloads = [bytes([index % 256]) * 512 for index in range(500)]
        wire = b"".join(encode_frame(Frame(Opcode.BINARY, payload))
                        for payload in payloads)
        decoder = FrameDecoder()
        frames = list(decoder.feed(wire))
        assert [frame.payload for frame in frames] == payloads
        assert decoder.pending_bytes == 0

    def test_feed_decodes_without_copying_the_buffer(self, monkeypatch):
        # Regression: feed() used to rebuild a bytes copy of the whole
        # remaining buffer for every frame it decoded, making one large
        # coalesced chunk cost O(n²) in copied bytes.
        import repro.net.websocket as ws

        seen_types = []
        real_decode = ws.decode_frame

        def recording_decode(data, **kwargs):
            seen_types.append(type(data))
            return real_decode(data, **kwargs)

        monkeypatch.setattr(ws, "decode_frame", recording_decode)
        wire = b"".join(encode_frame(Frame(Opcode.TEXT, b"x" * 100))
                        for _ in range(50))
        decoder = FrameDecoder()
        assert len(list(decoder.feed(wire))) == 50
        assert seen_types
        assert all(kind is memoryview for kind in seen_types)

    def test_partial_tail_survives_compaction(self):
        first = encode_frame(Frame(Opcode.TEXT, b"abc"))
        second = encode_frame(Frame(Opcode.TEXT, b"defgh"))
        decoder = FrameDecoder()
        frames = list(decoder.feed(first + second[:3]))
        assert [frame.payload for frame in frames] == [b"abc"]
        assert decoder.pending_bytes == 3
        frames = list(decoder.feed(second[3:]))
        assert [frame.payload for frame in frames] == [b"defgh"]


class TestMaxFrameSize:
    def test_decode_frame_rejects_oversized_claim(self):
        header = bytes([0x82, 127]) + (10 * 1024 * 1024).to_bytes(8, "big")
        with pytest.raises(WebSocketError):
            decode_frame(header, max_frame_size=1 << 20)

    def test_decoder_rejects_claim_before_payload_arrives(self):
        # The claimed length alone must trip the limit: a hostile client
        # must not be able to make the server buffer gigabytes.
        decoder = FrameDecoder(max_frame_size=1024)
        header = bytes([0x82, 126]) + (2048).to_bytes(2, "big")
        with pytest.raises(WebSocketError):
            list(decoder.feed(header))
        assert decoder.pending_bytes <= len(header)

    def test_frame_exactly_at_limit_is_accepted(self):
        decoder = FrameDecoder(max_frame_size=2048)
        wire = encode_frame(Frame(Opcode.BINARY, b"y" * 2048))
        frames = list(decoder.feed(wire))
        assert len(frames) == 1
        assert len(frames[0].payload) == 2048


class TestExplicitRandomness:
    def test_masked_encode_without_key_or_rng_raises(self):
        with pytest.raises(ValueError):
            encode_frame(Frame(Opcode.TEXT, b"x", masked=True))

    def test_make_client_key_without_rng_raises(self):
        with pytest.raises(ValueError):
            make_client_key()


class TestMessageAssembler:
    def test_single_frame_message(self):
        assembler = MessageAssembler()
        result = assembler.push(Frame(Opcode.TEXT, b"whole"))
        assert result == (Opcode.TEXT, b"whole")

    def test_fragmented_message(self):
        assembler = MessageAssembler()
        assert assembler.push(Frame(Opcode.TEXT, b"he", fin=False)) is None
        assert assembler.push(Frame(Opcode.CONTINUATION, b"ll", fin=False)) is None
        result = assembler.push(Frame(Opcode.CONTINUATION, b"o"))
        assert result == (Opcode.TEXT, b"hello")

    def test_continuation_without_start_rejected(self):
        with pytest.raises(WebSocketError):
            MessageAssembler().push(Frame(Opcode.CONTINUATION, b"x"))

    def test_new_message_during_fragmentation_rejected(self):
        assembler = MessageAssembler()
        assembler.push(Frame(Opcode.TEXT, b"a", fin=False))
        with pytest.raises(WebSocketError):
            assembler.push(Frame(Opcode.TEXT, b"b"))

    def test_control_frames_rejected(self):
        with pytest.raises(WebSocketError):
            MessageAssembler().push(Frame(Opcode.PING, b""))


class TestHandshake:
    def test_accept_key_rfc_example(self):
        # The worked example from RFC 6455 §1.3.
        assert accept_key("dGhlIHNhbXBsZSBub25jZQ==") == \
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="

    def test_request_response_roundtrip(self):
        key = make_client_key(random.Random(0))
        request = make_handshake_request("collector.example", "/beacon", key,
                                         origin="http://pub.example/page")
        headers = parse_handshake_request(request)
        assert headers["path"] == "/beacon"
        assert headers["sec-websocket-key"] == key
        assert headers["host"] == "collector.example"
        response = make_handshake_response(key)
        assert b"101 Switching Protocols" in response
        assert accept_key(key).encode() in response

    def test_client_key_is_16_bytes_base64(self):
        import base64
        key = make_client_key(random.Random(1))
        assert len(base64.b64decode(key)) == 16

    @pytest.mark.parametrize("mutate", [
        lambda text: text.replace("GET", "POST"),
        lambda text: text.replace("Upgrade: websocket\r\n", ""),
        lambda text: text.replace("Connection: Upgrade\r\n", ""),
        lambda text: text.replace("Sec-WebSocket-Version: 13",
                                  "Sec-WebSocket-Version: 8"),
        lambda text: text.replace("Sec-WebSocket-Key", "X-Nope"),
    ])
    def test_rejects_broken_handshakes(self, mutate):
        key = make_client_key(random.Random(2))
        request = make_handshake_request("h", "/", key).decode("ascii")
        with pytest.raises(WebSocketError):
            parse_handshake_request(mutate(request).encode("ascii"))

    def test_rejects_non_ascii(self):
        with pytest.raises(WebSocketError):
            parse_handshake_request("GET / HTTP/1.1\r\nHøst: x\r\n\r\n".encode("utf-8"))


class TestRejectionDiagnostics:
    """Rejections name the connection and the absolute stream offset."""

    @staticmethod
    def good_frame(payload=b"ok"):
        return encode_frame(Frame(Opcode.TEXT, payload, masked=True),
                            mask_key=b"\x01\x02\x03\x04")

    @staticmethod
    def bad_frame():
        wire = bytearray(TestRejectionDiagnostics.good_frame())
        wire[0] |= 0x40  # set a reserved bit
        return bytes(wire)

    def test_malformed_frame_error_names_connection_and_offset(self):
        decoder = FrameDecoder(connection_id=77)
        prefix = self.good_frame()
        with pytest.raises(WebSocketError) as excinfo:
            list(decoder.feed(prefix + self.bad_frame()))
        message = str(excinfo.value)
        assert "connection 77" in message
        assert f"stream byte offset {len(prefix)}" in message
        assert decoder.last_error_offset == len(prefix)
        assert decoder.last_error_reason == "malformed"

    def test_offset_is_absolute_across_compactions(self):
        # Feed (and fully consume) a frame first, then reject: the
        # reported offset counts from the start of the stream, not from
        # the start of the current buffer.
        decoder = FrameDecoder(connection_id=5)
        prefix = self.good_frame(b"first")
        assert len(list(decoder.feed(prefix))) == 1
        with pytest.raises(WebSocketError,
                           match=f"stream byte offset {len(prefix)}"):
            list(decoder.feed(self.bad_frame()))

    def test_oversized_frame_keeps_its_class_and_gains_context(self):
        from repro.net.websocket import FrameTooLarge
        decoder = FrameDecoder(max_frame_size=4, connection_id=9)
        with pytest.raises(FrameTooLarge, match="connection 9"):
            list(decoder.feed(self.good_frame(b"way too long")))
        assert decoder.last_error_reason == "frame_too_large"

    def test_unmasked_rejection_reports_reason(self):
        decoder = FrameDecoder(require_masked=True, connection_id=3)
        unmasked = encode_frame(Frame(Opcode.TEXT, b"hi"))
        with pytest.raises(WebSocketError, match="connection 3"):
            list(decoder.feed(unmasked))
        assert decoder.last_error_reason == "unmasked"

    def test_rejection_registers_labelled_counter(self):
        from repro.obs.metrics import MetricsRegistry
        metrics = MetricsRegistry()
        decoder = FrameDecoder(metrics=metrics, connection_id=42)
        with pytest.raises(WebSocketError):
            list(decoder.feed(self.bad_frame()))
        names = [name for name, _, value in metrics.snapshot().counters
                 if value > 0]
        assert ("ws.frames_rejected{connection=42,offset=0,"
                "reason=malformed}") in names

    def test_unknown_connection_labelled_as_unknown(self):
        decoder = FrameDecoder()
        with pytest.raises(WebSocketError, match="connection unknown"):
            list(decoder.feed(self.bad_frame()))

    def test_reset_drops_buffer_and_advances_offset(self):
        decoder = FrameDecoder(connection_id=8)
        with pytest.raises(WebSocketError):
            list(decoder.feed(self.bad_frame() + b"garbage tail"))
        dropped = decoder.reset()
        assert dropped > 0
        # The next rejection's offset accounts for the dropped bytes.
        with pytest.raises(WebSocketError) as excinfo:
            list(decoder.feed(self.bad_frame()))
        assert f"stream byte offset {dropped}" in str(excinfo.value)
        # And a well-formed frame still decodes after recovery.
        decoder.reset()
        assert len(list(decoder.feed(self.good_frame()))) == 1
