"""Tests for repro.net.useragent."""

import random

import pytest

from repro.net.useragent import generate_user_agent, parse_user_agent


class TestGenerate:
    @pytest.mark.parametrize("browser", ["chrome", "firefox", "safari",
                                         "msie", "opera", "headless"])
    def test_generate_parse_roundtrip(self, browser):
        rng = random.Random(1)
        raw = generate_user_agent(rng, device="desktop", browser=browser)
        assert parse_user_agent(raw).browser == browser

    def test_mobile_device_detected(self):
        rng = random.Random(2)
        raw = generate_user_agent(rng, device="mobile", browser="chrome")
        assert parse_user_agent(raw).device == "mobile"

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            generate_user_agent(random.Random(0), device="toaster")

    def test_unknown_browser_rejected(self):
        with pytest.raises(ValueError):
            generate_user_agent(random.Random(0), browser="netscape")

    def test_random_browser_draw_is_plausible(self):
        rng = random.Random(3)
        browsers = {parse_user_agent(generate_user_agent(rng)).browser
                    for _ in range(300)}
        assert "chrome" in browsers
        assert len(browsers) >= 4

    def test_deterministic_given_rng(self):
        assert generate_user_agent(random.Random(9)) == \
            generate_user_agent(random.Random(9))


class TestParse:
    def test_headless_flag(self):
        rng = random.Random(4)
        raw = generate_user_agent(rng, device="server", browser="headless")
        parsed = parse_user_agent(raw)
        assert parsed.is_headless

    def test_unknown_string_classifies_gracefully(self):
        parsed = parse_user_agent("curl/7.58.0")
        assert parsed.browser == "unknown"
        assert parsed.device == "desktop"

    @pytest.mark.parametrize("raw", ["", "   ", "\t\n"])
    def test_empty_or_whitespace_classifies_as_unknown_desktop(self, raw):
        # Regression: used to raise ValueError, contradicting the
        # best-effort promise in the docstring — an auditable dataset
        # keeps records with blank UAs rather than crashing on them.
        parsed = parse_user_agent(raw)
        assert parsed.browser == "unknown"
        assert parsed.device == "desktop"
        assert parsed.raw == raw
        assert not parsed.is_headless

    def test_opera_not_misread_as_chrome(self):
        raw = ("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
               "(KHTML, like Gecko) Chrome/48.0.2564.116 Safari/537.36 OPR/35.0.2066.68")
        assert parse_user_agent(raw).browser == "opera"

    def test_safari_not_misread_from_chrome_ua(self):
        raw = ("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11_4) AppleWebKit/537.36 "
               "(KHTML, like Gecko) Chrome/49.0.2623.87 Safari/537.36")
        assert parse_user_agent(raw).browser == "chrome"
