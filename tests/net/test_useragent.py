"""Tests for repro.net.useragent."""

import random

import pytest

from repro.net.useragent import (
    generate_user_agent,
    parse_user_agent,
    parse_user_agent_uncached,
)
from repro.util import hotpath


class TestGenerate:
    @pytest.mark.parametrize("browser", ["chrome", "firefox", "safari",
                                         "msie", "opera", "headless"])
    def test_generate_parse_roundtrip(self, browser):
        rng = random.Random(1)
        raw = generate_user_agent(rng, device="desktop", browser=browser)
        assert parse_user_agent(raw).browser == browser

    def test_mobile_device_detected(self):
        rng = random.Random(2)
        raw = generate_user_agent(rng, device="mobile", browser="chrome")
        assert parse_user_agent(raw).device == "mobile"

    def test_unknown_device_rejected(self):
        with pytest.raises(ValueError):
            generate_user_agent(random.Random(0), device="toaster")

    def test_unknown_browser_rejected(self):
        with pytest.raises(ValueError):
            generate_user_agent(random.Random(0), browser="netscape")

    def test_random_browser_draw_is_plausible(self):
        rng = random.Random(3)
        browsers = {parse_user_agent(generate_user_agent(rng)).browser
                    for _ in range(300)}
        assert "chrome" in browsers
        assert len(browsers) >= 4

    def test_deterministic_given_rng(self):
        assert generate_user_agent(random.Random(9)) == \
            generate_user_agent(random.Random(9))


class TestParse:
    def test_headless_flag(self):
        rng = random.Random(4)
        raw = generate_user_agent(rng, device="server", browser="headless")
        parsed = parse_user_agent(raw)
        assert parsed.is_headless

    def test_unknown_string_classifies_gracefully(self):
        parsed = parse_user_agent("curl/7.58.0")
        assert parsed.browser == "unknown"
        assert parsed.device == "desktop"

    @pytest.mark.parametrize("raw", ["", "   ", "\t\n"])
    def test_empty_or_whitespace_classifies_as_unknown_desktop(self, raw):
        # Regression: used to raise ValueError, contradicting the
        # best-effort promise in the docstring — an auditable dataset
        # keeps records with blank UAs rather than crashing on them.
        parsed = parse_user_agent(raw)
        assert parsed.browser == "unknown"
        assert parsed.device == "desktop"
        assert parsed.raw == raw
        assert not parsed.is_headless

    def test_opera_not_misread_as_chrome(self):
        raw = ("Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
               "(KHTML, like Gecko) Chrome/48.0.2564.116 Safari/537.36 OPR/35.0.2066.68")
        assert parse_user_agent(raw).browser == "opera"

    def test_safari_not_misread_from_chrome_ua(self):
        raw = ("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_11_4) AppleWebKit/537.36 "
               "(KHTML, like Gecko) Chrome/49.0.2623.87 Safari/537.36")
        assert parse_user_agent(raw).browser == "chrome"


class TestParseCache:
    @pytest.mark.parametrize("raw", ["", "   ", "\t\n"])
    def test_cached_calls_still_classify_blank_as_unknown_desktop(self, raw):
        # The LRU wrapper must preserve the blank-UA contract on both the
        # miss and the hit: repeated lookups return the shared frozen
        # ('unknown', 'desktop') classification.
        parse_user_agent.cache_clear()
        first = parse_user_agent(raw)
        hits_before = parse_user_agent.cache_info().hits
        again = parse_user_agent(raw)
        assert again is first  # cache hit hands out the frozen instance
        assert parse_user_agent.cache_info().hits == hits_before + 1
        assert (again.browser, again.device) == ("unknown", "desktop")
        assert again.raw == raw

    def test_cache_is_bounded(self):
        assert parse_user_agent.cache_info().maxsize == 8192

    def test_cached_result_matches_uncached(self):
        rng = random.Random(11)
        for _ in range(50):
            raw = generate_user_agent(rng)
            assert parse_user_agent(raw) == parse_user_agent_uncached(raw)

    def test_reference_mode_bypasses_cache(self):
        parse_user_agent.cache_clear()
        with hotpath.reference_hotpaths():
            parsed = parse_user_agent("curl/7.58.0")
        assert parsed.browser == "unknown"
        assert parse_user_agent.cache_info().currsize == 0
