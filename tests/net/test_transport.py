"""Tests for repro.net.transport — the simulated connection layer."""

import random

import pytest

from repro.net.transport import (
    Connection,
    ConnectionClosed,
    Endpoint,
    NetworkConditions,
    SimulatedNetwork,
)
from repro.util.simclock import SimClock

CLIENT = Endpoint(ip="2.0.0.1", port=50000)
SERVER = Endpoint(ip="198.51.100.10", port=443)


def make_network(connect_failure_rate=0.0, mid_stream_failure_rate=0.0,
                 seed=0, skew=0.0):
    clock = SimClock(1000.0, server_skew=skew)
    conditions = NetworkConditions(
        connect_failure_rate=connect_failure_rate,
        mid_stream_failure_rate=mid_stream_failure_rate)
    return SimulatedNetwork(clock, random.Random(seed), conditions), clock


class TestNetworkConditions:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            NetworkConditions(connect_failure_rate=1.5)
        with pytest.raises(ValueError):
            NetworkConditions(mid_stream_failure_rate=-0.1)
        with pytest.raises(ValueError):
            NetworkConditions(base_latency=-1.0)


class TestConnect:
    def test_successful_connect_returns_connection(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER)
        assert connection is not None
        assert connection.client == CLIENT
        assert connection.is_open

    def test_open_time_includes_latency_and_skew(self):
        network, clock = make_network(skew=2.0)
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        assert connection.opened_at_server >= 1002.0
        assert connection.opened_at_server <= 1002.0 + 0.2

    def test_connect_failure_returns_none_and_counts(self):
        network, _ = make_network(connect_failure_rate=1.0)
        assert network.connect(CLIENT, SERVER) is None
        assert network.failed_connects == 1

    def test_accept_callback_fires(self):
        network, _ = make_network()
        accepted = []
        network.on_accept(accepted.append)
        connection = network.connect(CLIENT, SERVER)
        assert accepted == [connection]

    def test_connection_ids_are_unique(self):
        network, _ = make_network()
        ids = {network.connect(CLIENT, SERVER).connection_id for _ in range(10)}
        assert len(ids) == 10


class TestDataTransfer:
    def test_client_bytes_reach_server_inbox(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        now = connection.opened_at_server
        connection.client_send(b"hello", now)
        connection.client_send(b" world", now + 1)
        assert connection.drain_server_inbox() == b"hello world"
        assert connection.drain_server_inbox() == b""

    def test_server_bytes_reach_client_inbox(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        connection.server_send(b"101", connection.opened_at_server)
        assert connection.drain_client_inbox() == b"101"

    def test_send_before_establishment_rejected(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        with pytest.raises(ValueError):
            connection.client_send(b"x", connection.opened_at_server - 1.0)

    def test_send_after_close_rejected(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        connection.close(connection.opened_at_server + 5.0)
        with pytest.raises(ConnectionClosed):
            connection.client_send(b"x", connection.opened_at_server + 6.0)


class TestCloseAndDuration:
    def test_duration_is_server_side_close_minus_open(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        connection.close(connection.opened_at_server + 7.25)
        assert connection.duration == pytest.approx(7.25)

    def test_duration_unavailable_while_open(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        with pytest.raises(ConnectionClosed):
            _ = connection.duration

    def test_double_close_rejected(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        connection.close(connection.opened_at_server + 1.0)
        with pytest.raises(ConnectionClosed):
            connection.close(connection.opened_at_server + 2.0)

    def test_close_before_open_rejected(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        with pytest.raises(ValueError):
            connection.close(connection.opened_at_server - 1.0)

    def test_close_records_initiator(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        connection.close(connection.opened_at_server + 1.0, initiator="network")
        assert connection.close_initiator == "network"


class TestFailurePaths:
    """The failure surface the beacon/collector error model rests on."""

    def test_server_send_after_close_rejected(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        connection.close(connection.opened_at_server + 5.0)
        with pytest.raises(ConnectionClosed):
            connection.server_send(b"x", connection.opened_at_server + 6.0)

    def test_close_after_close_raises_connection_closed(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        connection.close(connection.opened_at_server + 1.0)
        with pytest.raises(ConnectionClosed):
            connection.close(connection.opened_at_server + 2.0,
                             initiator="network")
        # A rejected close must not overwrite the recorded initiator.
        assert connection.close_initiator == "client"

    @pytest.mark.parametrize("initiator", ["client", "network"])
    def test_initiator_recorded_for_both_sides(self, initiator):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        connection.close(connection.opened_at_server + 1.0,
                         initiator=initiator)
        assert connection.close_initiator == initiator

    def test_default_initiator_is_client(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        assert connection.close_initiator == ""
        connection.close(connection.opened_at_server + 1.0)
        assert connection.close_initiator == "client"

    def test_server_side_instants_round_trip_into_exposure_time(self):
        # The paper's measurement trick: exposure time IS the
        # server-observed connection duration, so the open/close instants
        # (including skew and latency) must reproduce it exactly.
        network, _ = make_network(skew=3.5)
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        exposure = 42.25
        close_at = connection.opened_at_server + exposure
        connection.close(close_at, initiator="client")
        assert connection.closed_at_server == close_at
        assert connection.duration == pytest.approx(exposure)
        assert connection.duration == pytest.approx(
            connection.closed_at_server - connection.opened_at_server)


class TestMidStreamDrop:
    def test_never_drops_at_zero_rate(self):
        network, _ = make_network(mid_stream_failure_rate=0.0)
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        for offset in range(1, 50):
            assert not network.maybe_drop_mid_stream(
                connection, connection.opened_at_server + offset)
        assert connection.is_open

    def test_always_drops_at_full_rate(self):
        network, _ = make_network(mid_stream_failure_rate=1.0)
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        assert network.maybe_drop_mid_stream(
            connection, connection.opened_at_server + 1.0)
        assert not connection.is_open
        assert connection.close_initiator == "network"

    def test_drop_on_closed_connection_is_noop(self):
        network, _ = make_network(mid_stream_failure_rate=1.0)
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        connection.close(connection.opened_at_server + 1.0)
        assert not network.maybe_drop_mid_stream(
            connection, connection.opened_at_server + 2.0)


class TestClosedErrorMessages:
    """Closed-connection errors are self-describing: who closed, when."""

    def test_send_error_names_initiator_and_server_instant(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        close_at = connection.opened_at_server + 5.0
        connection.close(close_at, initiator="network")
        with pytest.raises(ConnectionClosed) as excinfo:
            connection.client_send(b"x", close_at + 1.0)
        message = str(excinfo.value)
        assert f"connection {connection.connection_id}" in message
        assert "closed by network" in message
        assert f"at server instant {close_at:.3f}" in message

    def test_server_send_error_carries_same_detail(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        close_at = connection.opened_at_server + 2.0
        connection.close(close_at)
        with pytest.raises(ConnectionClosed, match="closed by client"):
            connection.server_send(b"x", close_at + 1.0)

    def test_double_close_error_names_original_initiator(self):
        network, _ = make_network()
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        close_at = connection.opened_at_server + 1.0
        connection.close(close_at, initiator="network")
        with pytest.raises(ConnectionClosed) as excinfo:
            connection.close(close_at + 1.0, initiator="client")
        message = str(excinfo.value)
        assert "cannot close already-closed" in message
        assert "closed by network" in message
        assert f"{close_at:.3f}" in message


class TestFaultInjection:
    """Injected connect/stream faults layered over the baseline model."""

    @staticmethod
    def make_faulty_network(*specs, seed=0):
        from repro.faults.inject import FaultInjector
        from repro.faults.plan import FaultPlan, FaultSpec
        plan = FaultPlan(name="test",
                         specs=tuple(FaultSpec(*spec) for spec in specs))
        network, clock = make_network(seed=seed)
        network.faults = FaultInjector(plan, random.Random(seed + 1))
        return network, clock

    def test_refused_connect_sets_failure_reason(self):
        network, _ = self.make_faulty_network(("connect", "refused", 1.0))
        assert network.connect(CLIENT, SERVER, at_time=1000.0) is None
        assert network.last_connect_failure == "fault_refused"
        assert network.failed_connects == 1

    def test_timeout_connect_sets_failure_reason(self):
        network, _ = self.make_faulty_network(
            ("connect", "timeout", 1.0, 0.75))
        assert network.connect(CLIENT, SERVER, at_time=1000.0) is None
        assert network.last_connect_failure == "fault_timeout"

    def test_success_clears_failure_reason(self):
        network, _ = self.make_faulty_network(("stream", "disconnect", 1.0))
        network.last_connect_failure = "fault_refused"
        assert network.connect(CLIENT, SERVER, at_time=1000.0) is not None
        assert network.last_connect_failure == ""

    def test_backpressure_shifts_server_open_instant(self):
        delay = 2.5
        network, _ = self.make_faulty_network(
            ("collector", "backpressure", 1.0, delay))
        baseline, _ = make_network(seed=0)
        shifted = network.connect(CLIENT, SERVER, at_time=1000.0)
        plain = baseline.connect(CLIENT, SERVER, at_time=1000.0)
        assert shifted.opened_at_server == pytest.approx(
            plain.opened_at_server + delay)

    def test_injected_disconnect_closes_mid_stream(self):
        network, _ = self.make_faulty_network(("stream", "disconnect", 1.0))
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        assert network.maybe_drop_mid_stream(
            connection, connection.opened_at_server + 1.0)
        assert connection.close_initiator == "network"

    def test_faulty_connection_carries_frame_point(self):
        network, _ = self.make_faulty_network(("frame", "truncate", 0.5))
        connection = network.connect(CLIENT, SERVER, at_time=1000.0)
        assert connection.fault_point is not None
        assert connection.fault_point.stage == "frame"
        baseline, _ = make_network()
        assert baseline.connect(CLIENT, SERVER).fault_point is None

    def test_inactive_injector_preserves_baseline_draws(self):
        # Wiring the null injector must not consume RNG or change timing.
        network, _ = make_network(seed=42)
        plain = network.connect(CLIENT, SERVER, at_time=1000.0)
        network2, _ = make_network(seed=42)
        from repro.faults.inject import NULL_INJECTOR
        network2.faults = NULL_INJECTOR
        wired = network2.connect(CLIENT, SERVER, at_time=1000.0)
        assert wired.opened_at_server == plain.opened_at_server
        assert wired.latency == plain.latency
