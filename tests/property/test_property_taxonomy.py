"""Property-based tests for taxonomy structure and LCH similarity."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.taxonomy.lexicon import build_default_taxonomy
from repro.taxonomy.similarity import lch_similarity, max_similarity_value

TREE = build_default_taxonomy()
NODES = sorted(TREE)
node = st.sampled_from(NODES)


class TestTreeProperties:
    @given(node, node)
    def test_path_length_symmetric(self, a, b):
        assert TREE.path_length(a, b) == TREE.path_length(b, a)

    @given(node)
    def test_path_to_self_is_zero(self, a):
        assert TREE.path_length(a, a) == 0

    @given(node, node, node)
    @settings(max_examples=200)
    def test_triangle_inequality(self, a, b, c):
        assert TREE.path_length(a, c) <= \
            TREE.path_length(a, b) + TREE.path_length(b, c)

    @given(node, node)
    def test_lca_is_common_ancestor(self, a, b):
        lca = TREE.lowest_common_ancestor(a, b)
        assert lca in TREE.ancestors(a)
        assert lca in TREE.ancestors(b)

    @given(node)
    def test_ancestors_end_at_root(self, a):
        path = TREE.ancestors(a)
        assert path[0] == a
        assert path[-1] == TREE.root
        assert len(path) == TREE.depth(a)

    @given(node)
    def test_depth_consistent_with_parent(self, a):
        parent = TREE.parent(a)
        if parent is None:
            assert TREE.depth(a) == 1
        else:
            assert TREE.depth(a) == TREE.depth(parent) + 1


class TestLchProperties:
    @given(node, node)
    def test_symmetry(self, a, b):
        assert lch_similarity(TREE, a, b) == \
            lch_similarity(TREE, b, a)

    @given(node, node)
    def test_self_similarity_is_maximal(self, a, b):
        assert lch_similarity(TREE, a, b) <= \
            lch_similarity(TREE, a, a) + 1e-12

    @given(node, node)
    def test_score_bounded_by_formula(self, a, b):
        score = lch_similarity(TREE, a, b)
        assert score <= max_similarity_value(TREE) + 1e-12
        longest = 2 * TREE.max_depth - 1
        assert score >= -math.log((longest + 1) / (2 * TREE.max_depth)) - 1e-12

    @given(node)
    def test_closer_on_own_ancestor_chain(self, a):
        ancestors = TREE.ancestors(a)
        if len(ancestors) >= 3:
            near, far = ancestors[1], ancestors[2]
            assert lch_similarity(TREE, a, near) > lch_similarity(TREE, a, far)
