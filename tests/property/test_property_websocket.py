"""Property-based tests for the WebSocket wire format."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.websocket import (
    Frame,
    FrameDecoder,
    Opcode,
    accept_key,
    decode_frame,
    encode_frame,
)

payloads = st.binary(min_size=0, max_size=300)
data_opcodes = st.sampled_from([Opcode.TEXT, Opcode.BINARY])
mask_keys = st.binary(min_size=4, max_size=4)


class TestFrameProperties:
    @given(payload=payloads, opcode=data_opcodes, fin=st.booleans())
    def test_unmasked_roundtrip(self, payload, opcode, fin):
        frame = Frame(opcode, payload, fin=fin)
        decoded, consumed = decode_frame(encode_frame(frame))
        assert decoded.payload == payload
        assert decoded.opcode is opcode
        assert decoded.fin == fin
        assert consumed == len(encode_frame(frame))

    @given(payload=payloads, mask_key=mask_keys)
    def test_masked_roundtrip(self, payload, mask_key):
        frame = Frame(Opcode.TEXT, payload, masked=True)
        decoded, _ = decode_frame(encode_frame(frame, mask_key=mask_key))
        assert decoded.payload == payload
        assert decoded.masked

    @given(payload=st.binary(min_size=1, max_size=300), mask_key=mask_keys)
    def test_masking_is_involution(self, payload, mask_key):
        from repro.net.websocket import _apply_mask

        assert _apply_mask(_apply_mask(payload, mask_key), mask_key) == payload

    @given(st.lists(st.tuples(payloads, data_opcodes), min_size=1,
                    max_size=8),
           st.integers(min_value=1, max_value=17))
    @settings(max_examples=50)
    def test_stream_reassembly_under_arbitrary_chunking(self, messages,
                                                        chunk_size):
        wire = b"".join(encode_frame(Frame(opcode, payload, masked=True),
                                     rng=random.Random(7))
                        for payload, opcode in messages)
        decoder = FrameDecoder()
        frames = []
        for start in range(0, len(wire), chunk_size):
            frames.extend(decoder.feed(wire[start:start + chunk_size]))
        assert [frame.payload for frame in frames] == \
            [payload for payload, _ in messages]
        assert decoder.pending_bytes == 0

    @given(payload=payloads)
    def test_wire_length_is_minimal(self, payload):
        wire = encode_frame(Frame(Opcode.BINARY, payload))
        length = len(payload)
        if length <= 125:
            overhead = 2
        elif length <= 0xFFFF:
            overhead = 4
        else:
            overhead = 10
        assert len(wire) == overhead + length


class TestHandshakeProperties:
    @given(st.text(alphabet=st.characters(min_codepoint=33,
                                          max_codepoint=126),
                   min_size=1, max_size=40))
    def test_accept_key_is_deterministic_and_b64(self, client_key):
        import base64

        first = accept_key(client_key)
        assert first == accept_key(client_key)
        assert len(base64.b64decode(first)) == 20  # SHA-1 digest
