"""Property-based tests for IPv4/CIDR arithmetic and the LPM trie."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.cidrtrie import CidrTrie
from repro.net.ipv4 import Cidr, int_to_ip, ip_to_int

addresses = st.integers(min_value=0, max_value=0xFFFFFFFF)
prefixes = st.integers(min_value=0, max_value=32)


def make_cidr(address: int, prefix: int) -> Cidr:
    mask = (0xFFFFFFFF << (32 - prefix)) & 0xFFFFFFFF if prefix else 0
    return Cidr(address & mask, prefix)


class TestIpv4Properties:
    @given(addresses)
    def test_int_ip_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value

    @given(addresses, prefixes)
    def test_block_contains_its_bounds(self, address, prefix):
        block = make_cidr(address, prefix)
        assert block.contains_int(block.first)
        assert block.contains_int(block.last)
        assert block.last - block.first + 1 == block.size

    @given(addresses, prefixes, addresses)
    def test_membership_matches_mask_arithmetic(self, address, prefix, probe):
        block = make_cidr(address, prefix)
        expected = (probe & block.mask) == block.network
        assert block.contains_int(probe) == expected


class TestTrieProperties:
    @given(st.lists(st.tuples(addresses, prefixes), min_size=1, max_size=30),
           addresses)
    @settings(max_examples=80)
    def test_lookup_agrees_with_linear_scan(self, blocks, probe):
        trie = CidrTrie()
        table = []
        for index, (address, prefix) in enumerate(blocks):
            block = make_cidr(address, prefix)
            trie.insert(block, index)
            table.append((block, index))
        probe_ip = int_to_ip(probe)
        # Reference: the *last-inserted* longest matching prefix wins
        # (later insert replaces an equal prefix).
        best = None
        for block, value in table:
            if block.contains_int(probe):
                if best is None or block.prefix >= best[0].prefix:
                    best = (block, value)
        result = trie.lookup(probe_ip)
        if best is None:
            assert result is None
        else:
            assert result == best[1]

    @given(st.lists(st.tuples(addresses, prefixes), min_size=1, max_size=20))
    @settings(max_examples=60)
    def test_items_roundtrip(self, blocks):
        trie = CidrTrie()
        expected = {}
        for index, (address, prefix) in enumerate(blocks):
            block = make_cidr(address, prefix)
            trie.insert(block, index)
            expected[(block.network, block.prefix)] = index
        found = {(cidr.network, cidr.prefix): value
                 for cidr, value in trie.items()}
        assert found == expected
        assert len(trie) == len(expected)
