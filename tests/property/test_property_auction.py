"""Property-based tests for auction and pacing invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adnetwork.auction import Auction
from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.inventory import (
    ExternalDemand,
    ExternalDemandConfig,
    make_request,
)
from repro.adnetwork.pacing import BudgetPacer
from tests.adnetwork.conftest import END, START, make_pageview, make_publisher

cpms = st.floats(min_value=0.001, max_value=1.0, allow_nan=False)
floors = st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
premiums = st.floats(min_value=0.0, max_value=0.95, allow_nan=False)


def campaigns_from(cpm_list):
    return [CampaignSpec(campaign_id=f"c{i}", keywords=("Football",),
                         cpm_eur=cpm, target_countries=("ES",),
                         start_unix=START, end_unix=END)
            for i, cpm in enumerate(cpm_list)]


class TestAuctionProperties:
    @given(st.lists(cpms, min_size=1, max_size=6), floors, premiums,
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=150)
    def test_auction_invariants(self, cpm_list, floor, premium, seed):
        publisher = make_publisher(floor_cpm=round(floor, 4),
                                   premium_demand=premium)
        request = make_request(make_pageview(publisher))
        candidates = campaigns_from(cpm_list)
        auction = Auction(ExternalDemand(ExternalDemandConfig(
            competition_by_country=(("ES", 1.0),))))
        outcome = auction.run(request, candidates, random.Random(seed))
        if outcome.winner is not None:
            # The winner holds the top CPM among our candidates...
            assert outcome.winner.cpm_eur == max(cpm_list)
            # ...never pays more than its own bid...
            assert outcome.clearing_cpm <= outcome.winner.cpm_eur + 1e-12
            # ...and at least the floor.
            assert outcome.clearing_cpm >= request.floor_cpm - 1e-12
            # A winning bid always clears the floor.
            assert outcome.winner.cpm_eur >= request.floor_cpm
            # And beats whatever external bid showed up.
            assert outcome.winner.cpm_eur > outcome.external_bid_cpm - 1e-12
        else:
            # We lost: either our best bid was under the floor, or an
            # external bid at least matched it.
            best = max(cpm_list)
            assert best < request.floor_cpm or \
                outcome.external_bid_cpm >= best

    @given(st.lists(cpms, min_size=2, max_size=6), floors,
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=100)
    def test_second_price_without_external(self, cpm_list, floor, seed):
        publisher = make_publisher(floor_cpm=round(floor, 4),
                                   premium_demand=0.0)
        request = make_request(make_pageview(publisher))
        auction = Auction(ExternalDemand(ExternalDemandConfig(
            competition_by_country=(("ES", 0.0),), default_competition=0.0)))
        outcome = auction.run(request, campaigns_from(cpm_list),
                              random.Random(seed))
        ordered = sorted(cpm_list, reverse=True)
        if ordered[0] >= request.floor_cpm:
            assert outcome.winner is not None
            # Clearing equals max(second bid, floor), capped by the winner.
            expected = min(max(ordered[1], request.floor_cpm), ordered[0])
            assert abs(outcome.clearing_cpm - expected) < 1e-9


class TestPacingProperties:
    @given(st.lists(st.floats(min_value=0.0001, max_value=0.01,
                              allow_nan=False), min_size=1, max_size=60),
           st.floats(min_value=0.01, max_value=1.0, allow_nan=False))
    @settings(max_examples=80)
    def test_spend_never_exceeds_budget_plus_last_item(self, spends, budget):
        campaign = CampaignSpec(campaign_id="c", keywords=("Football",),
                                cpm_eur=0.1, target_countries=("ES",),
                                start_unix=START, end_unix=END,
                                daily_budget_eur=budget)
        pacer = BudgetPacer([campaign])
        rng = random.Random(0)
        moment = START
        for amount in spends:
            moment += 600.0
            if pacer.may_bid(campaign, moment, rng):
                pacer.record_spend(campaign, moment, amount)
        # may_bid stops admitting before the budget is exceeded; at most
        # one in-flight spend can overshoot.
        assert pacer.spent_today(campaign, moment) <= budget + max(spends)

    @given(st.floats(min_value=0.1, max_value=10.0, allow_nan=False))
    @settings(max_examples=30)
    def test_fresh_day_resets_spend(self, budget):
        campaign = CampaignSpec(campaign_id="c", keywords=("Football",),
                                cpm_eur=0.1, target_countries=("ES",),
                                start_unix=START, end_unix=END,
                                daily_budget_eur=budget)
        pacer = BudgetPacer([campaign])
        pacer.record_spend(campaign, START + 100.0, budget)
        assert pacer.spent_today(campaign, START + 86_400.0 + 100.0) == 0.0
