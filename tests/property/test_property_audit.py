"""Property-based tests for audit-analysis invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.brand_safety import VennCounts
from repro.audit.frequency import FrequencyAudit
from repro.adnetwork.campaign import CampaignSpec
from repro.audit.dataset import AuditDataset
from repro.collector.store import ImpressionRecord, ImpressionStore
from repro.taxonomy.lexicon import build_default_lexicon
from repro.web.ranking import RankingService

START, END = CampaignSpec.flight(2016, 4, 2, 4, 3)
LEXICON = build_default_lexicon()

users = st.sampled_from(["u1", "u2", "u3", "u4"])
offsets = st.floats(min_value=0.0, max_value=86_000.0, allow_nan=False)


def build_dataset(events):
    store = ImpressionStore()
    for user, offset in events:
        store.insert(ImpressionRecord(
            record_id=store.next_record_id(),
            campaign_id="C",
            creative_id="C-creative",
            url="http://x.es/a",
            user_agent="UA",
            ip="",
            ip_token=f"{user:0>16}",
            timestamp=START + offset,
            exposure_seconds=1.0,
            is_datacenter=False,
        ))
    campaign = CampaignSpec(campaign_id="C", keywords=("Football",),
                            cpm_eur=0.1, target_countries=("ES",),
                            start_unix=START, end_unix=END)
    return AuditDataset(store=store, campaigns={"C": campaign},
                        vendor_reports={}, directory={},
                        lexicon=LEXICON, ranking=RankingService([]))


class TestFrequencyProperties:
    @given(st.lists(st.tuples(users, offsets), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_points_partition_impressions(self, events):
        dataset = build_dataset(events)
        audit = FrequencyAudit(dataset)
        points = audit.user_frequencies("C")
        assert sum(point.impressions for point in points) == len(events)

    @given(st.lists(st.tuples(users, offsets), min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_suppression_monotone_in_cap(self, events):
        audit = FrequencyAudit(build_dataset(events))
        suppressed = [audit.would_suppress(cap, "C") for cap in (1, 2, 5, 10)]
        assert all(a >= b for a, b in zip(suppressed, suppressed[1:]))
        # Cap 1 keeps exactly one impression per user.
        users_seen = len({user for user, _ in events})
        assert suppressed[0] == len(events) - users_seen

    @given(st.lists(st.tuples(users, offsets), min_size=2, max_size=50))
    @settings(max_examples=60)
    def test_interarrival_bounds(self, events):
        audit = FrequencyAudit(build_dataset(events))
        for point in audit.user_frequencies("C"):
            if point.median_interarrival_seconds is None:
                assert point.impressions == 1
            else:
                assert point.min_interarrival_seconds <= \
                    point.median_interarrival_seconds + 1e-9
                assert point.min_interarrival_seconds >= 0.0


class TestVennProperties:
    @given(st.sets(st.integers(0, 200)), st.sets(st.integers(0, 200)))
    def test_counts_match_set_algebra(self, audit_set, vendor_set):
        venn = VennCounts(audit_only=len(audit_set - vendor_set),
                          both=len(audit_set & vendor_set),
                          vendor_only=len(vendor_set - audit_set))
        assert venn.audit_total == len(audit_set)
        assert venn.vendor_total == len(vendor_set)
        assert venn.union_total == len(audit_set | vendor_set)
        if audit_set:
            assert 0.0 <= venn.unreported_by_vendor.value <= 1.0
