"""Property-based tests for the beacon payload wire format."""

from hypothesis import given
from hypothesis import strategies as st

from repro.beacon.events import (
    BeaconObservation,
    InteractionEvent,
    InteractionKind,
)
from repro.collector.payload import (
    HelloMessage,
    PayloadError,
    encode_hello,
    encode_interaction,
    parse_message,
)

# Any printable text, including the protocol's own delimiters.
wild_text = st.text(min_size=1, max_size=80).filter(lambda s: s.strip())


class TestPayloadProperties:
    @given(campaign=wild_text, creative=wild_text, url=wild_text,
           user_agent=st.text(max_size=120))
    def test_hello_roundtrip_any_text(self, campaign, creative, url,
                                      user_agent):
        observation = BeaconObservation(
            campaign_id=campaign, creative_id=creative,
            page_url=url, user_agent=user_agent,
            interactions=(), exposure_seconds=1.0)
        message = parse_message(encode_hello(observation))
        assert isinstance(message, HelloMessage)
        assert message.campaign_id == campaign
        assert message.creative_id == creative
        assert message.url == url
        assert message.user_agent == user_agent

    @given(offset=st.floats(min_value=0.0, max_value=86_400.0,
                            allow_nan=False),
           kind=st.sampled_from(list(InteractionKind)))
    def test_interaction_roundtrip(self, offset, kind):
        event = InteractionEvent(kind, offset)
        message = parse_message(encode_interaction(event))
        assert message.kind is kind
        assert abs(message.offset_seconds - offset) < 0.001

    @given(st.text(max_size=60))
    def test_parser_never_crashes_on_garbage(self, garbage):
        try:
            parse_message(garbage)
        except PayloadError:
            pass   # rejecting is fine; any other exception is a bug
