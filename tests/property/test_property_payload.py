"""Property-based tests for the beacon payload wire format."""

from hypothesis import given
from hypothesis import strategies as st

from repro.beacon.events import (
    BeaconObservation,
    InteractionEvent,
    InteractionKind,
)
from repro.collector.payload import (
    HelloMessage,
    PayloadError,
    encode_hello,
    encode_interaction,
    parse_message,
)

# Any printable text, including the protocol's own delimiters.
wild_text = st.text(min_size=1, max_size=80).filter(lambda s: s.strip())


class TestPayloadProperties:
    @given(campaign=wild_text, creative=wild_text, url=wild_text,
           user_agent=st.text(max_size=120))
    def test_hello_roundtrip_any_text(self, campaign, creative, url,
                                      user_agent):
        observation = BeaconObservation(
            campaign_id=campaign, creative_id=creative,
            page_url=url, user_agent=user_agent,
            interactions=(), exposure_seconds=1.0)
        message = parse_message(encode_hello(observation))
        assert isinstance(message, HelloMessage)
        assert message.campaign_id == campaign
        assert message.creative_id == creative
        assert message.url == url
        assert message.user_agent == user_agent

    @given(offset=st.floats(min_value=0.0, max_value=86_400.0,
                            allow_nan=False),
           kind=st.sampled_from(list(InteractionKind)))
    def test_interaction_roundtrip(self, offset, kind):
        event = InteractionEvent(kind, offset)
        message = parse_message(encode_interaction(event))
        assert message.kind is kind
        assert abs(message.offset_seconds - offset) < 0.001

    @given(offset=st.floats(min_value=0.0, max_value=86_400.0,
                            allow_nan=False),
           kind=st.sampled_from(list(InteractionKind)))
    def test_offset_quantized_to_half_millisecond(self, offset, kind):
        # The wire renders t with {offset:.3f} — millisecond resolution,
        # rounding half-to-even — so a full round trip recovers the
        # offset to within 0.5 ms (the tiny epsilon absorbs the float
        # representation error of the re-parsed decimal).
        message = parse_message(encode_interaction(InteractionEvent(
            kind, offset)))
        assert abs(message.offset_seconds - offset) <= 0.0005 + 1e-9

    @given(offset_ms=st.integers(min_value=0, max_value=86_400_000),
           kind=st.sampled_from(list(InteractionKind)))
    def test_millisecond_grid_offsets_roundtrip_exactly(self, offset_ms,
                                                        kind):
        # An offset already on the millisecond grid is carried exactly:
        # {:.3f} re-renders the same decimal and float() re-reads it to
        # the identical double.
        offset = offset_ms / 1000.0
        message = parse_message(encode_interaction(InteractionEvent(
            kind, offset)))
        assert message.offset_seconds == offset

    @given(st.text(max_size=60))
    def test_parser_never_crashes_on_garbage(self, garbage):
        try:
            parse_message(garbage)
        except PayloadError:
            pass   # rejecting is fine; any other exception is a bug
