"""Property-based tests for the statistics toolkit and impression store."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collector.store import ImpressionRecord, ImpressionStore
from repro.util.stats import (
    bucket_index,
    cumulative_fractions,
    histogram,
    log_buckets,
    median,
    percentile,
)

floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
values = st.lists(floats, min_size=1, max_size=60)


class TestStatsProperties:
    @given(values)
    def test_median_is_within_range(self, xs):
        assert min(xs) <= median(xs) <= max(xs)

    @given(values)
    def test_median_equals_p50(self, xs):
        assert abs(median(xs) - percentile(xs, 50)) < 1e-6 * (1 + abs(median(xs)))

    @given(values, st.floats(min_value=0, max_value=100, allow_nan=False))
    def test_percentile_monotone_in_q(self, xs, q):
        tolerance = 1e-9 * (1 + max(abs(x) for x in xs))
        lower = percentile(xs, max(0.0, q - 10))
        upper = percentile(xs, min(100.0, q + 10))
        assert lower - tolerance <= percentile(xs, q) <= upper + tolerance

    @given(st.integers(min_value=1, max_value=10**9))
    def test_log_buckets_cover_max(self, max_value):
        edges = log_buckets(max_value)
        assert edges[-1] >= max_value
        assert all(b == a * 10 for a, b in zip(edges, edges[1:]))

    @given(st.lists(st.integers(min_value=1, max_value=10**7), min_size=1,
                    max_size=100))
    def test_histogram_conserves_mass(self, ranks):
        edges = log_buckets(10**7)
        counts = histogram(ranks, edges)
        assert sum(counts) == len(ranks)
        for rank in ranks:
            index = bucket_index(rank, edges)
            assert rank <= edges[index]
            if index > 0:
                assert rank > edges[index - 1]

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                    max_size=30))
    def test_cumulative_fractions_monotone(self, counts):
        fractions = cumulative_fractions(counts)
        assert all(0.0 <= f <= 1.0 + 1e-9 for f in fractions)
        assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))


record_ids = st.integers(min_value=1, max_value=10**6)


class TestStoreProperties:
    @given(st.lists(st.tuples(
        st.sampled_from(["A", "B", "C"]),            # campaign
        st.sampled_from(["x.es", "y.es", "z.es"]),   # domain
        st.sampled_from(["1.1.1.1", "2.2.2.2"]),     # ip
        st.sampled_from(["UA-1", "UA-2"]),           # user agent
        st.floats(min_value=0, max_value=100, allow_nan=False),  # exposure
    ), max_size=40))
    @settings(max_examples=50)
    def test_store_invariants(self, rows):
        store = ImpressionStore()
        for campaign, domain, ip, ua, exposure in rows:
            store.insert(ImpressionRecord(
                record_id=store.next_record_id(),
                campaign_id=campaign,
                creative_id=f"{campaign}-creative",
                url=f"http://{domain}/a",
                user_agent=ua,
                ip=ip,
                timestamp=0.0,
                exposure_seconds=exposure,
            ))
        # Partition invariant: per-campaign slices cover the store exactly.
        assert sum(len(store.by_campaign(c)) for c in store.campaigns()) == \
            len(store)
        # Users partition the records too.
        grouped = store.by_user()
        assert sum(len(records) for records in grouped.values()) == len(store)
        # Every user group is homogeneous in its key.
        for key, records in grouped.items():
            assert all(record.user_key == key for record in records)
        # Distinct domains match a manual scan.
        assert store.distinct_domains() == {record.domain for record in store}
