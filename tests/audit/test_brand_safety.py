"""Tests for repro.audit.brand_safety — the Figure 1 analysis."""

import pytest

from repro.audit.brand_safety import AnonymousBound, BrandSafetyAudit, VennCounts


class TestVennCounts:
    def test_derived_totals(self):
        venn = VennCounts(audit_only=4, both=3, vendor_only=1)
        assert venn.audit_total == 7
        assert venn.vendor_total == 4
        assert venn.union_total == 8

    def test_fractions(self):
        venn = VennCounts(audit_only=57, both=43, vendor_only=0)
        assert venn.unreported_by_vendor.pct == pytest.approx(57.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            VennCounts(-1, 0, 0)


class TestBrandSafetyAudit:
    def test_per_campaign_venn(self, dataset):
        audit = BrandSafetyAudit(dataset)
        venn = audit.venn("Football-010")
        # audit: futbolhead, laliga-tail, recetas; vendor: futbolhead, ghost.
        assert venn.audit_only == 2
        assert venn.both == 1
        assert venn.vendor_only == 1
        assert venn.unreported_by_vendor.pct == pytest.approx(200 / 3)

    def test_aggregate_venn(self, dataset):
        venn = BrandSafetyAudit(dataset).venn(None)
        assert venn.audit_only == 3      # laliga-tail, recetas, casino-x
        assert venn.both == 2            # futbolhead, ciencia
        assert venn.vendor_only == 1     # ghost

    def test_anonymous_bound_unexplained(self, dataset):
        audit = BrandSafetyAudit(dataset)
        bound = audit.anonymous_bound("Football-010")
        # 2 anonymous impressions cannot explain 2 unreported publishers...
        assert bound.anonymous_impressions == 2
        assert bound.unreported_publishers == 2
        assert bound.explainable          # ...actually they could, here.

    def test_anonymous_bound_not_explainable(self):
        bound = AnonymousBound(anonymous_impressions=425,
                               unreported_publishers=497)
        # The paper's General-005 argument: 72 publishers left unexplained.
        assert bound.unexplained_publishers == 72
        assert not bound.explainable

    def test_undisclosed_unsafe_publishers(self, dataset):
        audit = BrandSafetyAudit(dataset)
        assert audit.undisclosed_unsafe_publishers() == ["casino-x.es"]
        assert audit.undisclosed_unsafe_publishers("Football-010") == []

    def test_blacklist_proposal(self, dataset):
        audit = BrandSafetyAudit(dataset)
        assert audit.blacklist_proposal() == ["casino-x.es"]
        assert audit.blacklist_proposal("Football-010") == []
