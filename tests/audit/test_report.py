"""Tests for repro.audit.report — the full-audit entry point."""

from repro.audit.report import full_audit


class TestFullAudit:
    def test_covers_every_campaign(self, dataset):
        report = full_audit(dataset)
        assert [r.campaign_id for r in report.campaigns] == [
            "Football-010", "Research-010"]

    def test_aggregate_venn_present(self, dataset):
        report = full_audit(dataset)
        assert report.aggregate_venn.audit_only == 3

    def test_blacklist_lists_unsafe_sites(self, dataset):
        report = full_audit(dataset)
        assert report.blacklist == ("casino-x.es",)

    def test_frequency_summary_included(self, dataset):
        report = full_audit(dataset)
        assert report.frequency.total_users == 5

    def test_render_mentions_key_sections(self, dataset):
        text = full_audit(dataset).render()
        assert "Brand safety" in text
        assert "Context (Table 2)" in text
        assert "Viewability" in text
        assert "Data-center traffic" in text
        assert "Frequency capping" in text
        assert "casino-x.es" in text

    def test_render_contains_campaign_rows(self, dataset):
        text = full_audit(dataset).render()
        assert text.count("Football-010") >= 4
