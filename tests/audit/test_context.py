"""Tests for repro.audit.context — the Table 2 analysis."""

import pytest

from repro.audit.context import ContextAudit, ContextCriterion
from repro.util import hotpath


class TestContextCriterion:
    def test_needs_at_least_one_rule(self):
        with pytest.raises(ValueError):
            ContextCriterion(use_keyword_match=False, use_semantic_match=False)

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            ContextCriterion(max_path_edges=-1)


class TestPublisherMeaningful:
    def test_keyword_match(self, dataset):
        audit = ContextAudit(dataset)
        assert audit.publisher_meaningful("Football-010", "futbolhead.es")

    def test_semantic_match_one_edge(self, dataset):
        # la-liga is one edge below football.
        audit = ContextAudit(dataset)
        assert audit.publisher_meaningful("Football-010", "laliga-tail.es")

    def test_cross_vertical_rejected(self, dataset):
        audit = ContextAudit(dataset)
        assert not audit.publisher_meaningful("Football-010", "recetas.es")

    def test_unknown_publisher_conservatively_rejected(self, dataset):
        audit = ContextAudit(dataset)
        assert not audit.publisher_meaningful("Football-010", "missing.example")

    def test_keyword_only_criterion(self, dataset):
        audit = ContextAudit(dataset, ContextCriterion(
            use_semantic_match=False))
        assert audit.publisher_meaningful("Football-010", "futbolhead.es")
        assert not audit.publisher_meaningful("Football-010", "laliga-tail.es")

    def test_semantic_only_criterion(self, dataset):
        audit = ContextAudit(dataset, ContextCriterion(
            use_keyword_match=False, max_path_edges=1))
        assert audit.publisher_meaningful("Football-010", "laliga-tail.es")

    def test_wider_radius_admits_more(self, dataset):
        narrow = ContextAudit(dataset, ContextCriterion(max_path_edges=0))
        wide = ContextAudit(dataset, ContextCriterion(max_path_edges=2))
        # recipes is 2 edges from... no: recipes is under lifestyle/food;
        # football->recipes is far in any case.  Use research vs ciencia.
        assert wide.publisher_meaningful("Research-010", "ciencia.es")
        # Exact-topic-only still matches ciencia (topic == research).
        assert narrow.publisher_meaningful("Research-010", "ciencia.es")

    def test_threshold_value_exposed(self, dataset):
        audit = ContextAudit(dataset)
        assert audit.lch_threshold > 0

    @pytest.mark.parametrize("radius", [0, 1, 2, 3])
    def test_neighborhood_judge_equals_lch_reference(self, dataset, radius):
        # The optimized judge intersects taxonomy neighbourhoods; the
        # reference runs the original LCH cross-product.  Every
        # (campaign, domain) verdict in the dataset must agree.
        audit = ContextAudit(dataset, ContextCriterion(max_path_edges=radius))
        domains = {record.domain
                   for campaign_id in dataset.campaigns
                   for record in dataset.records(campaign_id)}
        domains.add("missing.example")
        for campaign_id in dataset.campaigns:
            for domain in sorted(domains):
                assert audit._judge(campaign_id, domain) == \
                    audit._judge_reference(campaign_id, domain), \
                    (campaign_id, domain, radius)

    def test_reference_mode_dispatch(self, dataset):
        audit = ContextAudit(dataset)
        with hotpath.reference_hotpaths():
            assert audit.publisher_meaningful("Football-010", "futbolhead.es")
            assert not audit.publisher_meaningful("Football-010",
                                                  "recetas.es")


class TestAssess:
    def test_football_fractions(self, dataset):
        result = ContextAudit(dataset).assess("Football-010")
        # 4 of 6 logged impressions on football-themed publishers.
        assert result.audit_fraction.numerator == 4
        assert result.audit_fraction.denominator == 6
        # Vendor claims 6/7.
        assert result.vendor_fraction.numerator == 6
        assert result.meaningful_publishers == 2
        assert result.observed_publishers == 3

    def test_research_fractions(self, dataset):
        result = ContextAudit(dataset).assess("Research-010")
        assert result.audit_fraction.numerator == 2   # ciencia.es only
        assert result.audit_fraction.denominator == 3

    def test_vendor_gap_positive_for_football(self, dataset):
        result = ContextAudit(dataset).assess("Football-010")
        assert result.vendor_fraction.pct > result.audit_fraction.pct
