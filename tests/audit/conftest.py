"""Shared fixtures for audit tests: a small hand-built dataset.

Two campaigns with precisely known contents so every audit number can be
asserted exactly:

* ``Football-010`` — 6 impressions: 4 on football publishers (one of them
  a data-center IP / bot), 2 on an off-topic publisher.
* ``Research-010`` — 3 impressions on one science publisher and one unsafe
  publisher the vendor never reported.
"""

import pytest

from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.reporting import (
    ANONYMOUS_PLACEMENT,
    PlacementRow,
    VendorReport,
)
from repro.audit.dataset import AuditDataset
from repro.collector.store import ImpressionRecord, ImpressionStore
from repro.taxonomy.lexicon import build_default_lexicon
from repro.util.stats import Fraction2
from repro.web.publisher import Publisher
from repro.web.ranking import RankingService

START, END = CampaignSpec.flight(2016, 4, 2, 4, 3)

#: Anonymised tokens standing in for user identities.
TOKEN_FAN = "fan0fan0fan0fan0"
TOKEN_BOT = "b07bb07bb07bb07b"
TOKEN_CASUAL = "cascascascascas0"


def publisher(domain, rank, topics, keywords, unsafe=False, anonymous=False):
    return Publisher(domain=domain, global_rank=rank, country_focus="ES",
                     topics=tuple(topics), keywords=tuple(keywords),
                     unsafe=unsafe, is_anonymous=anonymous)


@pytest.fixture(scope="module")
def directory():
    publishers = [
        publisher("futbolhead.es", 50, ("football",), ("football",)),
        publisher("laliga-tail.es", 600_000, ("la-liga",), ("la liga",)),
        publisher("recetas.es", 9_000, ("recipes",), ("recipes", "food")),
        publisher("ciencia.es", 40_000, ("research",), ("research",)),
        publisher("casino-x.es", 2_000_000, ("online-casino",), ("casino",),
                  unsafe=True),
        publisher("ghost.es", 300, ("news",), ("news",)),  # vendor-only
    ]
    return {pub.domain: pub for pub in publishers}


def record(store, campaign, domain, token, ua="UA-1", timestamp=START,
           exposure=5.0, rank=None, dc=False):
    store.insert(ImpressionRecord(
        record_id=store.next_record_id(),
        campaign_id=campaign,
        creative_id=f"{campaign}-creative",
        url=f"http://{domain}/s/a-1.html",
        user_agent=ua,
        ip="",
        ip_token=token,
        timestamp=timestamp,
        exposure_seconds=exposure,
        provider="P",
        country="ES",
        global_rank=rank,
        is_datacenter=dc,
        dc_stage="denylist" if dc else "cleared",
    ))


@pytest.fixture(scope="module")
def dataset(directory):
    store = ImpressionStore()
    # Football-010: the heavy fan sees the ad 3 times on futbolhead.es,
    # 60 s apart; a bot sees it once; a casual user twice off-topic.
    for offset in (0.0, 60.0, 120.0):
        record(store, "Football-010", "futbolhead.es", TOKEN_FAN,
               timestamp=START + offset, exposure=5.0, rank=50)
    record(store, "Football-010", "laliga-tail.es", TOKEN_BOT,
           timestamp=START + 500.0, exposure=0.4, rank=600_000, dc=True)
    record(store, "Football-010", "recetas.es", TOKEN_CASUAL,
           timestamp=START + 1000.0, exposure=2.0, rank=9_000)
    record(store, "Football-010", "recetas.es", TOKEN_CASUAL,
           timestamp=START + 1300.0, exposure=0.5, rank=9_000)
    # Research-010: two impressions on ciencia.es, one on the unsafe casino.
    record(store, "Research-010", "ciencia.es", TOKEN_CASUAL,
           timestamp=START + 2000.0, exposure=3.0, rank=40_000)
    record(store, "Research-010", "ciencia.es", TOKEN_CASUAL,
           timestamp=START + 2100.0, exposure=0.2, rank=40_000)
    record(store, "Research-010", "casino-x.es", TOKEN_FAN,
           timestamp=START + 2200.0, exposure=4.0, rank=2_000_000)

    campaigns = {
        "Football-010": CampaignSpec(
            campaign_id="Football-010", keywords=("Football",),
            cpm_eur=0.10, target_countries=("ES",),
            start_unix=START, end_unix=END),
        "Research-010": CampaignSpec(
            campaign_id="Research-010", keywords=("Research",),
            cpm_eur=0.10, target_countries=("ES",),
            start_unix=START, end_unix=END),
    }
    vendor_reports = {
        # The vendor names futbolhead + the never-logged ghost.es, hides
        # the rest behind viewability/anonymity, and claims 6/7 contextual.
        "Football-010": VendorReport(
            campaign_id="Football-010",
            total_impressions=7,
            placements=(
                PlacementRow("futbolhead.es", 3),
                PlacementRow("ghost.es", 1),
                PlacementRow(ANONYMOUS_PLACEMENT, 2),
            ),
            contextual=Fraction2(6, 7),
            charged_eur=0.0007,
            refunded_eur=0.0001,
        ),
        "Research-010": VendorReport(
            campaign_id="Research-010",
            total_impressions=4,
            placements=(PlacementRow("ciencia.es", 2),),
            contextual=Fraction2(1, 4),
            charged_eur=0.0004,
            refunded_eur=0.0,
        ),
    }
    ranking = RankingService(directory.values())
    return AuditDataset(
        store=store,
        campaigns=campaigns,
        vendor_reports=vendor_reports,
        directory=directory,
        lexicon=build_default_lexicon(),
        ranking=ranking,
    )
