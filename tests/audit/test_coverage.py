"""Tests for repro.audit.coverage — measurement-loss accounting."""

import json
from dataclasses import dataclass

import pytest

from repro.audit.coverage import (
    LOSS_REASONS,
    CoverageCell,
    CoverageCounts,
    ExperimentCoverage,
    coverage_to_dict,
    coverage_to_json,
    merge_coverage,
    render_coverage,
    validate_coverage_document,
)
from repro.beacon.client import DeliveryStatus
from repro.faults.quarantine import QuarantineEntry


@dataclass
class FakeDelivery:
    """Duck-typed stand-in for BeaconDelivery."""

    status: DeliveryStatus = DeliveryStatus.DELIVERED
    committed: bool = False
    duplicates: int = 0
    quarantined_frames: int = 0


def committed(duplicates=0):
    return FakeDelivery(committed=True, duplicates=duplicates)


class TestCoverageCell:
    def test_reconciliation_identity(self):
        cell = CoverageCell(delivered=10, observed=8, duplicates=2,
                            quarantined=1, lost_connect_failed=3)
        assert cell.unique == 6
        assert cell.lost == 3
        assert cell.reconciles

    def test_mismatch_detected(self):
        cell = CoverageCell(delivered=10, observed=5)
        assert not cell.reconciles

    def test_merge_sums_every_field(self):
        left = CoverageCell(delivered=3, observed=2, lost_dropped=1)
        left.merge(CoverageCell(delivered=4, observed=3,
                                lost_script_blocked=1))
        assert (left.delivered, left.observed) == (7, 5)
        assert left.lost == 2


class TestClassification:
    def test_committed_delivery_counts_observed_plus_duplicates(self):
        counts = CoverageCounts()
        counts.record_delivered("a.es", "C1")
        counts.record_delivery("a.es", "C1", committed(duplicates=2))
        cell = counts.cell("a.es", "C1")
        assert cell.observed == 3
        assert cell.duplicates == 2
        assert cell.unique == 1
        assert cell.reconciles

    def test_quarantined_delivery(self):
        counts = CoverageCounts()
        counts.record_delivered("a.es", "C1")
        counts.record_delivery("a.es", "C1",
                               FakeDelivery(quarantined_frames=2))
        cell = counts.cell("a.es", "C1")
        assert cell.quarantined == 1  # one impression, however many frames
        assert cell.reconciles

    @pytest.mark.parametrize("status,field", [
        (DeliveryStatus.CONNECT_FAILED, "lost_connect_failed"),
        (DeliveryStatus.DROPPED_MID_STREAM, "lost_dropped"),
        (DeliveryStatus.HANDSHAKE_FAILED, "lost_handshake_failed"),
        (DeliveryStatus.DELIVERED, "lost_no_hello"),
    ])
    def test_uncommitted_status_maps_to_loss_reason(self, status, field):
        counts = CoverageCounts()
        counts.record_delivered("a.es", "C1")
        counts.record_delivery("a.es", "C1", FakeDelivery(status=status))
        assert getattr(counts.cell("a.es", "C1"), field) == 1
        assert counts.reconciles

    def test_commitment_wins_over_quarantine(self):
        counts = CoverageCounts()
        counts.record_delivered("a.es", "C1")
        counts.record_delivery(
            "a.es", "C1",
            FakeDelivery(committed=True, quarantined_frames=1))
        cell = counts.cell("a.es", "C1")
        assert cell.observed == 1
        assert cell.quarantined == 0

    def test_record_lost_reasons(self):
        counts = CoverageCounts()
        for reason in LOSS_REASONS:
            counts.record_delivered("a.es", "C1")
            counts.record_lost("a.es", "C1", reason)
        cell = counts.cell("a.es", "C1")
        assert cell.lost == len(LOSS_REASONS)
        assert cell.reconciles
        with pytest.raises(ValueError, match="unknown loss reason"):
            counts.record_lost("a.es", "C1", "gremlins")


class TestAggregation:
    @staticmethod
    def populated():
        counts = CoverageCounts()
        for domain, campaign in (("a.es", "C1"), ("a.es", "C2"),
                                 ("b.es", "C1")):
            counts.record_delivered(domain, campaign)
            counts.record_delivery(domain, campaign, committed())
        counts.record_delivered("b.es", "C1")
        counts.record_lost("b.es", "C1", "connect_failed")
        return counts

    def test_by_campaign_and_publisher(self):
        counts = self.populated()
        campaigns = counts.by_campaign()
        assert campaigns["C1"].delivered == 3
        assert campaigns["C2"].delivered == 1
        publishers = counts.by_publisher()
        assert publishers["b.es"].lost == 1
        assert counts.totals().delivered == 4

    def test_absorb_merges_shards(self):
        merged = merge_coverage([self.populated(), self.populated()])
        assert merged.totals().delivered == 8
        assert merged.cell("b.es", "C1").lost_connect_failed == 2
        assert merged.reconciles


class TestRendering:
    @staticmethod
    def coverage():
        counts = TestAggregation.populated()
        entry = QuarantineEntry(connection_id=7, byte_offset=12,
                                reason="malformed", domain="a.es",
                                campaign_id="C1", shard="march/ES/0")
        return ExperimentCoverage(counts=counts, quarantine=(entry,),
                                  quarantine_dropped=3,
                                  lost_shards=("april/RU/1",))

    def test_render_contains_reconciliation_line(self):
        text = render_coverage(self.coverage())
        assert "Measurement coverage by campaign" in text
        assert ("Reconciliation: delivered 4 = observed 3 - duplicates 0 "
                "+ quarantined 0 + lost 1 -> OK") in text
        assert "1 frame(s) kept, 3 dropped past capacity" in text
        assert "Lost shards (crash recovery exhausted): april/RU/1" in text

    def test_loss_table_only_lists_lossy_publishers(self):
        text = render_coverage(self.coverage())
        assert "Highest measurement loss by publisher" in text
        loss_section = text.split("Highest measurement loss")[1]
        assert "b.es" in loss_section
        assert "a.es" not in loss_section.split("Reconciliation")[0]

    def test_mismatch_is_loud(self):
        counts = CoverageCounts()
        counts.record_delivered("a.es", "C1")  # never classified
        counts.cells[("a.es", "C1")].observed = 0
        counts.record_delivered("a.es", "C1")
        counts.record_delivery("a.es", "C1", committed())
        # delivered 2, observed 1 -> identity violated
        text = render_coverage(ExperimentCoverage(counts=counts))
        assert "MISMATCH" in text


class TestExport:
    def test_json_document_is_strict_and_validates(self):
        document = json.loads(coverage_to_json(TestRendering.coverage()))
        assert validate_coverage_document(document) == []
        assert document["totals"]["delivered"] == 4
        assert document["quarantine"][0]["shard"] == "march/ES/0"
        assert document["lost_shards"] == ["april/RU/1"]

    def test_validator_flags_broken_identity(self):
        document = coverage_to_dict(TestRendering.coverage())
        document["totals"]["delivered"] += 1
        problems = validate_coverage_document(document)
        assert any("totals" in problem for problem in problems)

    def test_validator_flags_missing_sections(self):
        assert validate_coverage_document({}) == \
            ["document has no totals object"]
        document = coverage_to_dict(TestRendering.coverage())
        document["by_campaign"]["C1"] = "oops"
        document["reconciles"] = False
        problems = validate_coverage_document(document)
        assert "by_campaign[C1] is not an object" in problems
        assert "document does not claim reconciliation" in problems
