"""Tests for repro.audit.frequency — the Figure 3 analysis."""

import pytest

from repro.audit.frequency import FrequencyAudit
from tests.audit.conftest import TOKEN_BOT, TOKEN_CASUAL, TOKEN_FAN


class TestUserFrequencies:
    def test_fan_repetition_measured(self, dataset):
        audit = FrequencyAudit(dataset)
        points = audit.user_frequencies("Football-010")
        fan = next(p for p in points if p.user_key.startswith(TOKEN_FAN))
        assert fan.impressions == 3
        assert fan.median_interarrival_seconds == pytest.approx(60.0)
        assert fan.min_interarrival_seconds == pytest.approx(60.0)

    def test_single_impression_user_has_no_interarrival(self, dataset):
        audit = FrequencyAudit(dataset)
        points = audit.user_frequencies("Football-010")
        bot = next(p for p in points if p.user_key.startswith(TOKEN_BOT))
        assert bot.impressions == 1
        assert bot.median_interarrival_seconds is None

    def test_users_separated_per_campaign(self, dataset):
        audit = FrequencyAudit(dataset)
        points = audit.user_frequencies(None)
        casual = [p for p in points if p.user_key.startswith(TOKEN_CASUAL)]
        # The casual user appears once per campaign.
        assert sorted(p.campaign_id for p in casual) == ["Football-010",
                                                         "Research-010"]

    def test_scatter_omits_single_impression_users(self, dataset):
        audit = FrequencyAudit(dataset)
        series = audit.scatter_series("Football-010")
        assert all(count >= 2 for count, _ in series)

    def test_summary_counts(self, dataset):
        summary = FrequencyAudit(dataset).summary(None)
        assert summary.total_users == 5
        assert summary.users_over_10 == 0
        assert summary.max_impressions_single_user == 3
        assert summary.users_min_under_20s == 0


class TestWouldSuppress:
    def test_cap_of_one_suppresses_all_repeats(self, dataset):
        audit = FrequencyAudit(dataset)
        # 9 impressions total over 5 (user, campaign) pairs -> 4 suppressed.
        assert audit.would_suppress(1, None) == 4

    def test_cap_of_two(self, dataset):
        audit = FrequencyAudit(dataset)
        assert audit.would_suppress(2, "Football-010") == 1

    def test_large_cap_suppresses_nothing(self, dataset):
        assert FrequencyAudit(dataset).would_suppress(100, None) == 0

    def test_cap_validation(self, dataset):
        with pytest.raises(ValueError):
            FrequencyAudit(dataset).would_suppress(0)
