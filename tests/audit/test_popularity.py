"""Tests for repro.audit.popularity — the Figure 2 analysis."""

import pytest

from repro.audit.popularity import PopularityAudit


class TestDistribution:
    def test_fractions_sum_to_one(self, dataset):
        audit = PopularityAudit(dataset)
        distribution = audit.distribution("Football-010")
        assert sum(distribution.publisher_fractions) == pytest.approx(1.0)
        assert sum(distribution.impression_fractions) == pytest.approx(1.0)

    def test_bucket_placement(self, dataset):
        audit = PopularityAudit(dataset)
        distribution = audit.distribution("Football-010")
        edges = list(distribution.bucket_edges)
        # futbolhead.es has rank 50 -> bucket 0; 3 of 6 impressions there.
        assert distribution.impression_fractions[0] == pytest.approx(0.5)
        # recetas.es rank 9000 -> bucket (1K, 10K]; 2 of 6 impressions.
        assert distribution.impression_fractions[edges.index(10_000)] == \
            pytest.approx(2 / 6)
        # laliga-tail rank 600K -> (100K, 1M]; 1 of 6.
        assert distribution.impression_fractions[edges.index(1_000_000)] == \
            pytest.approx(1 / 6)

    def test_publisher_fractions_count_domains_once(self, dataset):
        audit = PopularityAudit(dataset)
        distribution = audit.distribution("Football-010")
        # 3 distinct publishers, one per bucket touched.
        assert distribution.publisher_fractions[0] == pytest.approx(1 / 3)

    def test_unranked_domains_counted_separately(self, dataset):
        audit = PopularityAudit(dataset)
        distribution = audit.distribution("Research-010")
        assert distribution.unranked_publishers == 0
        assert distribution.unranked_impressions == 0

    def test_cumulative_to(self, dataset):
        audit = PopularityAudit(dataset)
        distribution = audit.distribution("Football-010")
        assert distribution.cumulative_to(10_000) == pytest.approx(5 / 6)
        assert distribution.cumulative_to(10_000, "publishers") == \
            pytest.approx(2 / 3)

    def test_cumulative_requires_edge_value(self, dataset):
        distribution = PopularityAudit(dataset).distribution("Football-010")
        with pytest.raises(ValueError):
            distribution.cumulative_to(50_000)

    def test_top_concentration(self, dataset):
        audit = PopularityAudit(dataset)
        publishers, impressions = audit.top_concentration("Football-010",
                                                          100_000)
        assert publishers == pytest.approx(2 / 3)
        assert impressions == pytest.approx(5 / 6)

    def test_cpm_popularity_table_sorted_by_cpm(self, dataset):
        audit = PopularityAudit(dataset)
        rows = audit.cpm_popularity_table(["Football-010", "Research-010"])
        assert [row[0] for row in rows] == ["Football-010", "Research-010"]
        assert all(len(row) == 4 for row in rows)
