"""Tests for repro.audit.reconcile."""

import pytest

from repro.audit.reconcile import ReconciliationAudit


class TestReconciliation:
    def test_football_discrepancies(self, dataset):
        result = ReconciliationAudit(dataset).assess("Football-010")
        assert result.vendor_impressions == 7
        assert result.logged_impressions == 6
        assert result.publishers_unreported_by_vendor == 2
        assert result.logging_loss.numerator == 1
        assert result.logging_loss.denominator == 7

    def test_contextual_gap(self, dataset):
        result = ReconciliationAudit(dataset).assess("Football-010")
        # Vendor 6/7 ≈ 85.7 %, audit 4/6 ≈ 66.7 % -> gap ≈ 19 points.
        assert result.contextual_gap_points == pytest.approx(
            600 / 7 - 400 / 6, abs=0.01)

    def test_dc_cost_not_refunded(self, dataset):
        result = ReconciliationAudit(dataset).assess("Football-010")
        # estimated 0.0001 == refunded 0.0001 -> nothing outstanding.
        assert result.dc_cost_not_refunded_eur == pytest.approx(0.0)

    def test_all_campaigns(self, dataset):
        results = ReconciliationAudit(dataset).all_campaigns()
        assert [r.campaign_id for r in results] == ["Football-010",
                                                    "Research-010"]

    def test_missing_report_raises(self, dataset):
        audit = ReconciliationAudit(dataset)
        with pytest.raises(KeyError):
            audit.assess("missing")
