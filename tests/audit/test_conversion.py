"""Tests for repro.audit.conversion — the future-work funnel audit."""

import math

import pytest

from repro.adnetwork.conversions import ConversionEvent
from repro.audit.conversion import ConversionAudit
from tests.audit.conftest import START, TOKEN_CASUAL, TOKEN_FAN


def conversion(campaign_id, token, ua="UA-1", value=50.0):
    return ConversionEvent(campaign_id=campaign_id, timestamp=START + 5000,
                           ip="", ip_token=token, user_agent=ua,
                           value_eur=value)


@pytest.fixture
def conversions():
    # The fan converted once after clicking on Football-010.
    return [conversion("Football-010", TOKEN_FAN, value=120.0)]


class TestConversionAudit:
    def test_funnel_counts(self, dataset, conversions):
        audit = ConversionAudit(dataset, conversions)
        result = audit.assess("Football-010")
        assert result.impressions == 6
        assert result.conversions == 1
        assert result.revenue_eur == pytest.approx(120.0)

    def test_conversion_ratio(self, dataset, conversions):
        result = ConversionAudit(dataset, conversions).assess("Football-010")
        assert result.conversion_ratio.numerator == 1
        assert result.conversion_ratio.denominator == 6

    def test_campaign_without_conversions(self, dataset, conversions):
        result = ConversionAudit(dataset, conversions).assess("Research-010")
        assert result.conversions == 0
        assert math.isinf(result.cost_per_conversion_eur)

    def test_cost_per_conversion_uses_net_spend(self, dataset, conversions):
        result = ConversionAudit(dataset, conversions).assess("Football-010")
        # charged 0.0007 - refunded 0.0001 over one conversion.
        assert result.cost_per_conversion_eur == pytest.approx(0.0006)

    def test_table_covers_campaigns(self, dataset, conversions):
        table = ConversionAudit(dataset, conversions).table()
        assert [row.campaign_id for row in table] == ["Football-010",
                                                      "Research-010"]

    def test_fraud_signal_zero_without_clicks(self, dataset, conversions):
        audit = ConversionAudit(dataset, conversions)
        # The fixture store records no clicks at all, so the DC share of
        # clicks is 0 and the signal is non-positive.
        assert audit.fraud_signal("Football-010") <= 0.0

    def test_dc_conversions_join_on_user_key(self, dataset):
        # A conversion from the casual (non-DC) user: joins but is not DC.
        events = [conversion("Football-010", TOKEN_CASUAL)]
        result = ConversionAudit(dataset, events).assess("Football-010")
        assert result.conversions == 1
        assert result.dc_conversions == 0
