"""Tests for repro.audit.viewability — the Table 3 analysis."""

import pytest

from repro.audit.viewability import ViewabilityAudit


class TestViewabilityAudit:
    def test_football_upper_bound(self, dataset):
        result = ViewabilityAudit(dataset).assess("Football-010")
        # exposures: 5, 5, 5, 0.4, 2, 0.5 -> 4 of 6 at >= 1 s.
        assert result.viewable_upper_bound.numerator == 4
        assert result.viewable_upper_bound.denominator == 6

    def test_research_upper_bound(self, dataset):
        result = ViewabilityAudit(dataset).assess("Research-010")
        # exposures: 3, 0.2, 4 -> 2 of 3.
        assert result.viewable_upper_bound.numerator == 2

    def test_median_and_p90(self, dataset):
        result = ViewabilityAudit(dataset).assess("Research-010")
        assert result.median_exposure_seconds == pytest.approx(3.0)
        assert result.p90_exposure_seconds <= 4.0

    def test_custom_threshold(self, dataset):
        audit = ViewabilityAudit(dataset, min_exposure_seconds=4.5)
        result = audit.assess("Football-010")
        assert result.viewable_upper_bound.numerator == 3

    def test_threshold_validation(self, dataset):
        with pytest.raises(ValueError):
            ViewabilityAudit(dataset, min_exposure_seconds=0.0)

    def test_table_covers_all_campaigns(self, dataset):
        table = ViewabilityAudit(dataset).table()
        assert [row.campaign_id for row in table] == ["Football-010",
                                                      "Research-010"]

    def test_truncated_records_counted(self, dataset):
        result = ViewabilityAudit(dataset).assess("Football-010")
        assert result.truncated_records == 0


class TestMrcEstimate:
    def test_no_safeframe_records_in_fixture(self, dataset):
        from repro.audit.viewability import ViewabilityAudit

        estimate = ViewabilityAudit(dataset).mrc_estimate("Football-010")
        assert estimate.measurable_impressions == 0
        assert estimate.coverage.value == 0.0
        assert estimate.extrapolated_mrc == 0.0

    def test_safeframe_subset_measured(self, dataset):
        from dataclasses import replace

        from repro.audit.dataset import AuditDataset
        from repro.audit.viewability import ViewabilityAudit
        from repro.collector.store import ImpressionStore

        # Rebuild the store marking half the football records measurable.
        store = ImpressionStore()
        for index, record in enumerate(dataset.store):
            pixels = None
            if record.campaign_id == "Football-010":
                pixels = index % 2 == 0
            store.insert(replace(record, record_id=store.next_record_id(),
                                 pixels_in_view=pixels))
        rebuilt = AuditDataset(
            store=store, campaigns=dataset.campaigns,
            vendor_reports=dataset.vendor_reports,
            directory=dataset.directory, lexicon=dataset.lexicon,
            ranking=dataset.ranking)
        estimate = ViewabilityAudit(rebuilt).mrc_estimate("Football-010")
        assert estimate.measurable_impressions == 6
        assert estimate.coverage.value == 1.0
        # MRC on the measured set <= the upper bound, always.
        assert estimate.mrc_viewable_on_safeframe.pct <= \
            estimate.upper_bound.pct + 1e-9
        assert estimate.upper_bound_inflation >= 0.0
