"""Tests for repro.audit.fraud — the Table 4 analysis."""

import pytest

from repro.audit.fraud import FraudAudit
from repro.collector.store import ImpressionRecord, ImpressionStore


class TestFraudAudit:
    def test_football_dc_stats(self, dataset):
        stats = FraudAudit(dataset).assess("Football-010")
        # 3 distinct users/IP-tokens, one of them a DC bot.
        assert stats.dc_ips.numerator == 1
        assert stats.dc_ips.denominator == 3
        assert stats.dc_impressions.numerator == 1
        assert stats.dc_impressions.denominator == 6
        assert stats.dc_publishers.numerator == 1
        assert stats.dc_publishers.denominator == 3

    def test_clean_campaign_zeroes(self, dataset):
        stats = FraudAudit(dataset).assess("Research-010")
        assert stats.dc_impressions.numerator == 0
        assert stats.dc_ips.numerator == 0

    def test_cost_estimate_uses_cpm_bound(self, dataset):
        stats = FraudAudit(dataset).assess("Football-010")
        assert stats.estimated_cost_eur == pytest.approx(0.0001)

    def test_vendor_refund_carried(self, dataset):
        stats = FraudAudit(dataset).assess("Football-010")
        assert stats.vendor_refund_eur == pytest.approx(0.0001)

    def test_table_covers_all_campaigns(self, dataset):
        table = FraudAudit(dataset).table()
        assert [row.campaign_id for row in table] == ["Football-010",
                                                      "Research-010"]

    def test_stage_breakdown(self, dataset):
        breakdown = FraudAudit(dataset).stage_breakdown("Football-010")
        assert breakdown == {"denylist": 1}

    def test_unenriched_dataset_rejected(self, dataset):
        store = ImpressionStore()
        store.insert(ImpressionRecord(
            record_id=1, campaign_id="Football-010",
            creative_id="c", url="http://x.es/a", user_agent="UA",
            ip="2.0.0.1", timestamp=0.0, exposure_seconds=1.0))
        from dataclasses import replace
        broken = replace_dataset(dataset, store)
        with pytest.raises(ValueError):
            FraudAudit(broken).assess("Football-010")


def replace_dataset(dataset, store):
    from repro.audit.dataset import AuditDataset

    return AuditDataset(
        store=store,
        campaigns=dataset.campaigns,
        vendor_reports=dataset.vendor_reports,
        directory=dataset.directory,
        lexicon=dataset.lexicon,
        ranking=dataset.ranking,
    )
