"""Tests for repro.audit.export."""

import csv
import io
import json
from types import SimpleNamespace

import pytest

from repro.audit.conversion import ConversionResult
from repro.audit.export import (
    CSV_COLUMNS,
    funnel_to_dicts,
    funnel_to_json,
    report_to_csv,
    report_to_dict,
    report_to_json,
)
from repro.audit.report import full_audit


@pytest.fixture(scope="module")
def report(dataset):
    return full_audit(dataset)


class TestDictExport:
    def test_campaign_coverage(self, report):
        data = report_to_dict(report)
        ids = [entry["campaign_id"] for entry in data["campaigns"]]
        assert ids == ["Football-010", "Research-010"]

    def test_values_match_report(self, report):
        data = report_to_dict(report)
        football = data["campaigns"][0]
        assert football["brand_safety"]["publishers_audit_only"] == 2
        assert football["context"]["audit_pct"] == pytest.approx(66.67, abs=0.01)
        assert football["fraud"]["dc_impressions_pct"] == pytest.approx(16.67,
                                                                        abs=0.01)

    def test_aggregate_and_frequency_sections(self, report):
        data = report_to_dict(report)
        assert data["aggregate"]["publishers_audit_only"] == 3
        assert data["frequency"]["total_users"] == 5
        assert data["blacklist"] == ["casino-x.es"]

    def test_popularity_fractions_normalised(self, report):
        data = report_to_dict(report)
        for campaign in data["campaigns"]:
            fractions = campaign["popularity"]["impression_fractions"]
            assert sum(fractions) == pytest.approx(1.0, abs=0.01)


class TestJsonExport:
    def test_json_parses_back(self, report):
        data = json.loads(report_to_json(report))
        assert len(data["campaigns"]) == 2

    def test_json_is_sorted_and_indented(self, report):
        text = report_to_json(report)
        assert text.startswith("{\n")
        assert '"aggregate"' in text


def _zero_conversion_result() -> ConversionResult:
    return ConversionResult(
        campaign_id="Football-010", impressions=10, clicks=2, conversions=0,
        revenue_eur=0.0, spend_eur=1.5, dc_clicks=1, dc_conversions=0)


class TestFunnelExport:
    def test_infinite_cost_per_conversion_exports_as_null(self):
        """Regression: inf used to serialise as the bare token Infinity,
        which is not JSON."""
        rows = funnel_to_dicts([_zero_conversion_result()])
        assert rows[0]["cost_per_conversion_eur"] is None

    def test_funnel_json_is_strict(self):
        text = funnel_to_json([_zero_conversion_result()])
        assert "Infinity" not in text
        assert "NaN" not in text
        parsed = json.loads(text)
        assert parsed[0]["cost_per_conversion_eur"] is None
        assert parsed[0]["clicks"] == 2

    def test_finite_cost_survives_untouched(self):
        result = ConversionResult(
            campaign_id="C", impressions=10, clicks=4, conversions=2,
            revenue_eur=8.0, spend_eur=1.0, dc_clicks=0, dc_conversions=0)
        rows = funnel_to_dicts([result])
        assert rows[0]["cost_per_conversion_eur"] == pytest.approx(0.5)

    def test_render_uses_dash_for_infinite_cost(self, dataset):
        from repro.experiments.tables import render_conversion_funnel

        fake_result = SimpleNamespace(dataset=dataset, conversions=[])
        text = render_conversion_funnel(fake_result)
        assert "—" in text
        assert "inf" not in text


class TestJsonStrictness:
    def test_report_json_has_no_nonfinite_tokens(self, report):
        text = report_to_json(report)
        assert "Infinity" not in text
        assert "NaN" not in text


class TestCsvExport:
    def test_header_and_rows(self, report):
        text = report_to_csv(report)
        rows = list(csv.reader(io.StringIO(text)))
        assert tuple(rows[0]) == CSV_COLUMNS
        assert len(rows) == 3
        assert rows[1][0] == "Football-010"

    def test_numeric_cells_parse(self, report):
        rows = list(csv.reader(io.StringIO(report_to_csv(report))))
        for row in rows[1:]:
            for cell in row[1:]:
                float(cell)
