"""Tests for repro.audit.dataset."""

import pytest

from repro.audit.dataset import AuditDataset


class TestAuditDataset:
    def test_campaign_ids_in_order(self, dataset):
        assert dataset.campaign_ids == ["Football-010", "Research-010"]

    def test_records_per_campaign(self, dataset):
        assert len(dataset.records("Football-010")) == 6
        assert len(dataset.records("Research-010")) == 3

    def test_records_unknown_campaign_raises(self, dataset):
        with pytest.raises(KeyError):
            dataset.records("nope")

    def test_audit_publishers(self, dataset):
        assert dataset.audit_publishers("Football-010") == {
            "futbolhead.es", "laliga-tail.es", "recetas.es"}
        assert dataset.audit_publishers() == {
            "futbolhead.es", "laliga-tail.es", "recetas.es",
            "ciencia.es", "casino-x.es"}

    def test_vendor_publishers_exclude_anonymous(self, dataset):
        assert dataset.vendor_publishers("Football-010") == {
            "futbolhead.es", "ghost.es"}

    def test_vendor_publishers_all_campaigns(self, dataset):
        assert dataset.vendor_publishers() == {
            "futbolhead.es", "ghost.es", "ciencia.es"}

    def test_publisher_info(self, dataset):
        assert dataset.publisher_info("FUTBOLHEAD.es").domain == "futbolhead.es"
        assert dataset.publisher_info("missing.example") is None

    def test_require_report(self, dataset):
        assert dataset.require_report("Football-010").total_impressions == 7
        with pytest.raises(KeyError):
            dataset.require_report("missing")

    def test_report_for_unknown_campaign_rejected(self, dataset):
        with pytest.raises(ValueError):
            AuditDataset(
                store=dataset.store,
                campaigns={},
                vendor_reports=dataset.vendor_reports,
                directory=dataset.directory,
                lexicon=dataset.lexicon,
                ranking=dataset.ranking,
            )
