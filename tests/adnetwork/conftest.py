"""Shared fixtures for the ad-network tests."""

import random

import pytest

from repro.adnetwork.campaign import CampaignSpec
from repro.taxonomy.lexicon import build_default_lexicon
from repro.web.browsing import Pageview
from repro.web.publisher import Publisher

START, END = CampaignSpec.flight(2016, 4, 2, 4, 3)


@pytest.fixture(scope="module")
def lexicon():
    return build_default_lexicon()


@pytest.fixture
def football_campaign():
    return CampaignSpec(campaign_id="Football-010", keywords=("Football",),
                        cpm_eur=0.10, target_countries=("ES",),
                        start_unix=START, end_unix=END,
                        daily_budget_eur=5.0)


def make_publisher(domain="futbol9.es", topics=("football",),
                   keywords=("football",), rank=5000, **overrides):
    defaults = dict(domain=domain, global_rank=rank, country_focus="ES",
                    topics=tuple(topics), keywords=tuple(keywords))
    defaults.update(overrides)
    return Publisher(**defaults)


def make_pageview(publisher=None, timestamp=START + 3600.0, ip="2.0.0.1",
                  user_agent="UA-1", country="ES", interests=(),
                  dwell=10.0, is_bot=False, visitor_id=1):
    if publisher is None:
        publisher = make_publisher()
    return Pageview(timestamp=timestamp, publisher=publisher,
                    url=publisher.url_for_page(1), ip=ip,
                    user_agent=user_agent, country=country,
                    interests=tuple(interests), dwell_seconds=dwell,
                    is_bot=is_bot, visitor_id=visitor_id)


@pytest.fixture
def rng():
    return random.Random(1234)
