"""Reference-vs-optimized equivalence for the targeting hot paths.

The optimized ``MatchEngine`` answers contextual and behavioural
questions via taxonomy-neighbourhood intersections; the retained
reference implementations run the original LCH-style nested path-length
loops.  Every (campaign, publisher/interest) verdict must be identical.
"""

import itertools
import random

import pytest

from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.matching import MatchEngine
from repro.taxonomy.lexicon import build_default_lexicon
from tests.adnetwork.conftest import START, END, make_publisher

KEYWORD_POOL = ["Football", "tennis", "recipes", "laptops", "sneakers",
                "mortgages", "madrid", "baking", "smartphones", "running"]


@pytest.fixture(scope="module")
def lexicon():
    return build_default_lexicon()


def _campaigns(lexicon):
    rng = random.Random(42)
    campaigns = []
    for index in range(12):
        count = rng.randrange(1, 4)
        keywords = tuple(rng.sample(KEYWORD_POOL, count))
        campaigns.append(CampaignSpec(
            campaign_id=f"Equiv-{index:03d}", keywords=keywords,
            cpm_eur=0.10, target_countries=("ES",),
            start_unix=START, end_unix=END, daily_budget_eur=5.0))
    return campaigns


def _publishers(lexicon):
    rng = random.Random(43)
    topics = sorted(lexicon.tree)
    publishers = []
    for index in range(25):
        topic_count = rng.randrange(1, 4)
        keyword_count = rng.randrange(0, 3)
        publishers.append(make_publisher(
            domain=f"site{index}.es",
            topics=tuple(rng.sample(topics, topic_count)),
            keywords=tuple(rng.sample([k.lower() for k in KEYWORD_POOL],
                                      keyword_count))))
    return publishers


@pytest.mark.parametrize("radius", [0, 1, 2])
def test_contextual_match_equals_reference(lexicon, radius):
    engine = MatchEngine(lexicon, vertical_radius_edges=radius)
    for campaign, publisher in itertools.product(_campaigns(lexicon),
                                                 _publishers(lexicon)):
        optimized = engine.contextual_match(campaign, publisher)
        reference = engine._contextual_reference(campaign, publisher)
        assert optimized == reference, \
            (campaign.keywords, publisher.topics, publisher.keywords, radius)


def test_behavioural_match_equals_reference(lexicon):
    engine = MatchEngine(lexicon)
    rng = random.Random(44)
    topics = sorted(lexicon.tree)
    interest_sets = [()] + [tuple(rng.sample(topics, rng.randrange(1, 5)))
                            for _ in range(30)]
    for campaign, interests in itertools.product(_campaigns(lexicon),
                                                 interest_sets):
        optimized = engine.behavioural_match(campaign, interests)
        reference = engine.behavioural_match_reference(campaign, interests)
        assert optimized == reference, (campaign.keywords, interests)
