"""Tests for repro.adnetwork.campaign."""

import pytest

from repro.adnetwork.campaign import CampaignSpec

START, END = CampaignSpec.flight(2016, 3, 29, 3, 31)


def make_campaign(**overrides):
    defaults = dict(campaign_id="Research-010", keywords=("Research",),
                    cpm_eur=0.10, target_countries=("ES",),
                    start_unix=START, end_unix=END)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


class TestValidation:
    def test_valid_campaign(self):
        campaign = make_campaign()
        assert campaign.campaign_id == "Research-010"

    @pytest.mark.parametrize("overrides", [
        {"campaign_id": ""},
        {"keywords": ()},
        {"cpm_eur": 0.0},
        {"target_countries": ()},
        {"end_unix": START},
        {"daily_budget_eur": 0.0},
        {"frequency_cap": 0},
    ])
    def test_rejects_invalid(self, overrides):
        with pytest.raises(ValueError):
            make_campaign(**overrides)

    def test_default_frequency_cap_is_none(self):
        # The paper's finding (iv): no default cap exists anywhere.
        assert make_campaign().frequency_cap is None

    def test_creative_id_defaults_from_campaign(self):
        assert make_campaign().creative_id == "Research-010-creative"

    def test_explicit_creative_id_kept(self):
        assert make_campaign(creative_id="X").creative_id == "X"


class TestDerived:
    def test_bid_per_impression(self):
        assert make_campaign(cpm_eur=0.30).bid_per_impression == pytest.approx(0.0003)

    def test_duration_days(self):
        assert make_campaign().duration_days == pytest.approx(3.0)

    def test_is_active_boundaries(self):
        campaign = make_campaign()
        assert campaign.is_active(START)
        assert campaign.is_active(END - 1)
        assert not campaign.is_active(END)
        assert not campaign.is_active(START - 1)

    def test_targets_country(self):
        campaign = make_campaign(target_countries=("ES", "RU"))
        assert campaign.targets_country("RU")
        assert not campaign.targets_country("US")


class TestFlight:
    def test_inclusive_end_date(self):
        start, end = CampaignSpec.flight(2016, 4, 2, 4, 3)
        assert (end - start) == pytest.approx(2 * 86_400.0)

    def test_single_day_flight(self):
        start, end = CampaignSpec.flight(2016, 2, 15, 2, 15)
        assert (end - start) == pytest.approx(86_400.0)

    def test_rejects_reversed_dates(self):
        with pytest.raises(ValueError):
            CampaignSpec.flight(2016, 4, 3, 4, 1)


class TestPlacementExclusions:
    def test_default_no_exclusions(self):
        campaign = make_campaign()
        assert not campaign.excludes_publisher("anything.es")
        assert not campaign.excludes_publisher("x.es", is_anonymous=True)

    def test_excluded_domain_blocked_case_insensitively(self):
        campaign = make_campaign(excluded_domains=frozenset({"Bad.ES"}))
        assert campaign.excludes_publisher("bad.es")
        assert campaign.excludes_publisher("BAD.es")
        assert not campaign.excludes_publisher("good.es")

    def test_exclude_anonymous_flag(self):
        campaign = make_campaign(exclude_anonymous=True)
        assert campaign.excludes_publisher("any.es", is_anonymous=True)
        assert not campaign.excludes_publisher("any.es", is_anonymous=False)

    def test_with_exclusions_merges(self):
        campaign = make_campaign(excluded_domains=frozenset({"a.es"}))
        updated = campaign.with_exclusions(["B.es", "c.es"])
        assert updated.excluded_domains == {"a.es", "b.es", "c.es"}
        # Original is untouched (frozen dataclass semantics).
        assert campaign.excluded_domains == {"a.es"}

    def test_with_exclusions_can_toggle_anonymous(self):
        campaign = make_campaign()
        updated = campaign.with_exclusions([], exclude_anonymous=True)
        assert updated.exclude_anonymous

    def test_empty_excluded_domain_rejected(self):
        with pytest.raises(ValueError):
            make_campaign(excluded_domains=frozenset({""}))
