"""Tests for repro.adnetwork.reporting — the vendor report under audit."""

import random

import pytest

from repro.adnetwork.matching import MatchDecision, MatchReason
from repro.adnetwork.reporting import (
    ANONYMOUS_PLACEMENT,
    PlacementRow,
    ReportAggregate,
    VendorReporter,
    merge_aggregates,
)
from repro.adnetwork.server import DeliveredImpression
from repro.adnetwork.viewability import Exposure
from tests.adnetwork.conftest import make_pageview, make_publisher


def make_impression(campaign, impression_id=1, publisher=None,
                    viewable=True, reason=MatchReason.CONTEXTUAL):
    pageview = make_pageview(publisher or make_publisher())
    exposure = Exposure(render_delay=0.5,
                        exposure_seconds=5.0 if viewable else 0.2,
                        pixels_in_view=viewable)
    return DeliveredImpression(
        impression_id=impression_id,
        campaign=campaign,
        pageview=pageview,
        exposure=exposure,
        match=MatchDecision(eligible=True, reason=reason),
        clearing_cpm=0.05,
    )


class TestPlacementRow:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlacementRow(placement="", impressions=1)
        with pytest.raises(ValueError):
            PlacementRow(placement="a.es", impressions=0)

    def test_anonymous_flag(self):
        assert PlacementRow(ANONYMOUS_PLACEMENT, 5).is_anonymous
        assert not PlacementRow("a.es", 5).is_anonymous


class TestVendorReporter:
    def test_totals_count_all_impressions(self, football_campaign):
        impressions = [make_impression(football_campaign, i, viewable=i % 2 == 0)
                       for i in range(1, 11)]
        report = VendorReporter().report("Football-010", impressions)
        assert report.total_impressions == 10

    def test_placements_cover_only_viewable(self, football_campaign):
        viewable_pub = make_publisher(domain="seen.es")
        hidden_pub = make_publisher(domain="unseen.es")
        impressions = [
            make_impression(football_campaign, 1, viewable_pub, viewable=True),
            make_impression(football_campaign, 2, hidden_pub, viewable=False),
        ]
        report = VendorReporter().report("Football-010", impressions)
        assert report.reported_publishers == {"seen.es"}
        assert report.placement_impressions == 1

    def test_viewable_only_policy_can_be_disabled(self, football_campaign):
        hidden_pub = make_publisher(domain="unseen.es")
        impressions = [make_impression(football_campaign, 1, hidden_pub,
                                       viewable=False)]
        reporter = VendorReporter(viewable_only_placements=False)
        report = reporter.report("Football-010", impressions)
        assert report.reported_publishers == {"unseen.es"}

    def test_anonymous_publishers_aggregate(self, football_campaign):
        anonymous_a = make_publisher(domain="anon-a.es", is_anonymous=True)
        anonymous_b = make_publisher(domain="anon-b.es", is_anonymous=True)
        impressions = [
            make_impression(football_campaign, 1, anonymous_a),
            make_impression(football_campaign, 2, anonymous_b),
            make_impression(football_campaign, 3),
        ]
        report = VendorReporter().report("Football-010", impressions)
        assert report.anonymous_impressions == 2
        assert "anon-a.es" not in report.reported_publishers
        assert ANONYMOUS_PLACEMENT not in report.reported_publishers

    def test_contextual_fraction_counts_claimed(self, football_campaign):
        impressions = [
            make_impression(football_campaign, 1, reason=MatchReason.CONTEXTUAL),
            make_impression(football_campaign, 2, reason=MatchReason.BEHAVIOURAL),
            make_impression(football_campaign, 3, reason=MatchReason.BROAD),
            make_impression(football_campaign, 4, reason=MatchReason.BROAD),
        ]
        report = VendorReporter().report("Football-010", impressions)
        assert report.contextual.numerator == 2
        assert report.contextual.denominator == 4

    def test_contextual_includes_nonviewable(self, football_campaign):
        impressions = [
            make_impression(football_campaign, 1, viewable=False,
                            reason=MatchReason.CONTEXTUAL),
        ]
        report = VendorReporter().report("Football-010", impressions)
        assert report.contextual.pct == 100.0

    def test_wrong_campaign_impression_rejected(self, football_campaign):
        impression = make_impression(football_campaign, 1)
        with pytest.raises(ValueError):
            VendorReporter().report("Other", [impression])

    def test_empty_campaign_report(self):
        report = VendorReporter().report("Empty", [])
        assert report.total_impressions == 0
        assert report.placements == ()
        assert report.contextual.value == 0.0

    def test_money_fields_carried(self, football_campaign):
        report = VendorReporter().report(
            "Football-010", [make_impression(football_campaign, 1)],
            charged_eur=1.5, refunded_eur=0.25)
        assert report.charged_eur == 1.5
        assert report.refunded_eur == 0.25


class TestReportAggregates:
    def test_report_equals_build_of_aggregate(self, football_campaign):
        impressions = [make_impression(football_campaign, i,
                                       viewable=i % 3 != 0)
                       for i in range(1, 13)]
        reporter = VendorReporter()
        direct = reporter.report("Football-010", impressions)
        via_aggregate = reporter.build(
            reporter.aggregate("Football-010", impressions))
        assert via_aggregate == direct

    def test_merged_shards_equal_single_pass(self, football_campaign):
        publishers = [make_publisher(domain=f"p{i}.es") for i in range(4)]
        impressions = [make_impression(football_campaign, i,
                                       publishers[i % 4],
                                       viewable=i % 2 == 0,
                                       reason=MatchReason.CONTEXTUAL
                                       if i % 3 == 0 else MatchReason.BROAD)
                       for i in range(1, 21)]
        reporter = VendorReporter()
        whole = reporter.aggregate("Football-010", impressions)
        shards = [reporter.aggregate("Football-010", impressions[i::3])
                  for i in range(3)]
        assert merge_aggregates(shards, "Football-010") == whole

    def test_merge_rejects_foreign_campaign(self, football_campaign):
        reporter = VendorReporter()
        aggregate = reporter.aggregate(
            "Football-010", [make_impression(football_campaign, 1)])
        with pytest.raises(ValueError):
            merge_aggregates([aggregate], "Other")

    def test_empty_merge_builds_empty_report(self):
        merged = merge_aggregates([], "Empty")
        report = VendorReporter.build(merged)
        assert report.total_impressions == 0
        assert report.placements == ()

    def test_aggregate_validation(self):
        with pytest.raises(ValueError):
            ReportAggregate("", 0, 0, ())
        with pytest.raises(ValueError):
            ReportAggregate("a", -1, 0, ())
