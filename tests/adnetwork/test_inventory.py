"""Tests for repro.adnetwork.inventory — requests and external demand."""

import random

import pytest

from repro.adnetwork.inventory import (
    AdRequest,
    ExternalDemand,
    ExternalDemandConfig,
    make_request,
)
from tests.adnetwork.conftest import make_pageview, make_publisher


class TestAdRequest:
    def test_make_request_scales_floor_to_market(self):
        pageview = make_pageview(make_publisher(floor_cpm=0.10))
        assert make_request(pageview, price_level=0.5).floor_cpm == pytest.approx(0.05)

    def test_floor_per_impression(self):
        pageview = make_pageview(make_publisher(floor_cpm=0.10))
        assert make_request(pageview).floor_per_impression == pytest.approx(0.0001)

    def test_rejects_nonpositive_price_level(self):
        with pytest.raises(ValueError):
            make_request(make_pageview(), price_level=0.0)

    def test_rejects_negative_floor(self):
        with pytest.raises(ValueError):
            AdRequest(pageview=make_pageview(), floor_cpm=-0.1)


class TestExternalDemandConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ExternalDemandConfig(default_competition=-1)
        with pytest.raises(ValueError):
            ExternalDemandConfig(bid_over_floor_min=3, bid_over_floor_max=2)
        with pytest.raises(ValueError):
            ExternalDemandConfig(default_price_level=0)


class TestExternalDemand:
    def test_country_levels(self):
        demand = ExternalDemand()
        assert demand.competition_level("RU") < demand.competition_level("US")
        assert demand.price_level("RU") < demand.price_level("US")

    def test_unknown_country_uses_defaults(self):
        demand = ExternalDemand()
        assert demand.competition_level("XX") == demand.config.default_competition
        assert demand.price_level("XX") == demand.config.default_price_level

    def test_no_bid_when_no_premium_demand(self):
        demand = ExternalDemand()
        pageview = make_pageview(make_publisher(premium_demand=0.0),
                                 country="US")
        request = make_request(pageview)
        rng = random.Random(0)
        assert all(demand.sample_bid(request, rng) == 0.0 for _ in range(50))

    def test_bid_always_above_floor_when_present(self):
        demand = ExternalDemand()
        pageview = make_pageview(
            make_publisher(premium_demand=0.95, floor_cpm=0.10), country="US")
        request = make_request(pageview)
        rng = random.Random(1)
        bids = [demand.sample_bid(request, rng) for _ in range(300)]
        positive = [bid for bid in bids if bid > 0]
        assert positive
        assert all(bid > request.floor_cpm for bid in positive)

    def test_low_competition_market_sees_fewer_bids(self):
        demand = ExternalDemand()
        publisher = make_publisher(premium_demand=0.9, floor_cpm=0.10)
        rng = random.Random(2)
        us_hits = sum(demand.sample_bid(
            make_request(make_pageview(publisher, country="US")), rng) > 0
            for _ in range(500))
        ru_hits = sum(demand.sample_bid(
            make_request(make_pageview(publisher, country="RU")), rng) > 0
            for _ in range(500))
        assert ru_hits < us_hits * 0.6
