"""Tests for repro.adnetwork.matching — the network's targeting engine."""

import random

import pytest

from repro.adnetwork.matching import MatchEngine, MatchReason
from tests.adnetwork.conftest import make_publisher


@pytest.fixture
def engine(lexicon):
    return MatchEngine(lexicon, broad_match_rate=0.0, behavioural_rate=1.0)


class TestContextualMatch:
    def test_keyword_list_match(self, engine, football_campaign):
        publisher = make_publisher(topics=("news",), keywords=("football",))
        assert engine.contextual_match(football_campaign, publisher)

    def test_topic_radius_match(self, engine, football_campaign):
        # la-liga is one edge from football in the default taxonomy.
        publisher = make_publisher(topics=("la-liga",), keywords=("x",))
        assert engine.contextual_match(football_campaign, publisher)

    def test_cross_vertical_no_match(self, engine, football_campaign):
        publisher = make_publisher(topics=("recipes",), keywords=("food",))
        assert not engine.contextual_match(football_campaign, publisher)

    def test_radius_zero_requires_exact_topic(self, lexicon, football_campaign):
        engine = MatchEngine(lexicon, vertical_radius_edges=0)
        exact = make_publisher(topics=("football",), keywords=("x",))
        near = make_publisher(domain="b.es", topics=("la-liga",), keywords=("x",))
        assert engine.contextual_match(football_campaign, exact)
        assert not engine.contextual_match(football_campaign, near)

    def test_verdicts_are_cached(self, engine, football_campaign):
        publisher = make_publisher()
        assert engine.contextual_match(football_campaign, publisher)
        key = (football_campaign.campaign_id, publisher.domain)
        assert key in engine._contextual_cache


class TestBehaviouralMatch:
    def test_exact_interest(self, engine, football_campaign):
        assert engine.behavioural_match(football_campaign, ("football",))

    def test_adjacent_interest(self, engine, football_campaign):
        assert engine.behavioural_match(football_campaign, ("la-liga",))
        assert engine.behavioural_match(football_campaign, ("sports",))

    def test_distant_interest_no_match(self, engine, football_campaign):
        assert not engine.behavioural_match(football_campaign, ("recipes",))

    def test_empty_interests_no_match(self, engine, football_campaign):
        assert not engine.behavioural_match(football_campaign, ())


class TestDecide:
    def test_contextual_takes_priority(self, engine, football_campaign):
        publisher = make_publisher(topics=("football",))
        decision = engine.decide(football_campaign, publisher, ("football",),
                                 random.Random(0))
        assert decision.reason is MatchReason.CONTEXTUAL
        assert decision.claimed_contextual

    def test_behavioural_when_publisher_off_topic(self, engine,
                                                  football_campaign):
        publisher = make_publisher(topics=("recipes",), keywords=("food",))
        decision = engine.decide(football_campaign, publisher, ("football",),
                                 random.Random(0))
        assert decision.reason is MatchReason.BEHAVIOURAL
        assert decision.claimed_contextual   # the undisclosed criterion

    def test_behavioural_rate_gates_the_signal(self, lexicon,
                                               football_campaign):
        engine = MatchEngine(lexicon, broad_match_rate=0.0,
                             behavioural_rate=0.0)
        publisher = make_publisher(topics=("recipes",), keywords=("food",))
        decision = engine.decide(football_campaign, publisher, ("football",),
                                 random.Random(0))
        assert not decision.eligible

    def test_broad_never_claimed_contextual(self, lexicon, football_campaign):
        engine = MatchEngine(lexicon, broad_match_rate=1.0,
                             behavioural_rate=0.0)
        publisher = make_publisher(topics=("recipes",), keywords=("food",))
        decision = engine.decide(football_campaign, publisher, (),
                                 random.Random(0))
        assert decision.eligible
        assert decision.reason is MatchReason.BROAD
        assert not decision.claimed_contextual

    def test_broad_rate_override(self, engine, football_campaign):
        publisher = make_publisher(topics=("recipes",), keywords=("food",))
        rng = random.Random(0)
        decision = engine.decide(football_campaign, publisher, (), rng,
                                 broad_rate=1.0)
        assert decision.reason is MatchReason.BROAD

    def test_no_match_at_zero_rates(self, engine, football_campaign):
        publisher = make_publisher(topics=("recipes",), keywords=("food",))
        decision = engine.decide(football_campaign, publisher, (),
                                 random.Random(0), broad_rate=0.0)
        assert not decision.eligible
        assert decision.reason is MatchReason.NONE


class TestConstruction:
    def test_rejects_bad_rates(self, lexicon):
        with pytest.raises(ValueError):
            MatchEngine(lexicon, broad_match_rate=1.5)
        with pytest.raises(ValueError):
            MatchEngine(lexicon, behavioural_rate=-0.1)
        with pytest.raises(ValueError):
            MatchEngine(lexicon, vertical_radius_edges=-1)

    def test_campaign_topics_resolution(self, engine, football_campaign):
        assert engine.campaign_topics(football_campaign) == ("football",)
