"""Tests for repro.adnetwork.viewability."""

import random

import pytest

from repro.adnetwork.viewability import Exposure, ExposureConfig, ExposureModel
from tests.adnetwork.conftest import make_pageview, make_publisher


class TestExposure:
    def test_vendor_viewable_needs_both_conditions(self):
        assert Exposure(0.5, 2.0, True).vendor_viewable
        assert not Exposure(0.5, 0.5, True).vendor_viewable
        assert not Exposure(0.5, 2.0, False).vendor_viewable

    def test_audit_upper_bound_ignores_pixels(self):
        # The Same-Origin Policy blinds the auditor to pixel visibility.
        exposure = Exposure(0.5, 2.0, False)
        assert exposure.audit_viewable_upper_bound
        assert not exposure.vendor_viewable

    def test_exact_one_second_is_viewable(self):
        assert Exposure(0.1, 1.0, True).vendor_viewable


class TestExposureConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ExposureConfig(render_delay_min=2.0, render_delay_max=1.0)
        with pytest.raises(ValueError):
            ExposureConfig(base_in_view_prob=1.5)
        with pytest.raises(ValueError):
            ExposureConfig(engagement_view_bonus=-0.1)


class TestExposureModel:
    def test_exposure_is_dwell_minus_render_delay(self):
        model = ExposureModel(ExposureConfig(render_delay_min=1.0,
                                             render_delay_max=1.0))
        pageview = make_pageview(dwell=5.0)
        exposure = model.sample(pageview, random.Random(0))
        assert exposure.exposure_seconds == pytest.approx(4.0)

    def test_exposure_never_negative(self):
        model = ExposureModel(ExposureConfig(render_delay_min=2.0,
                                             render_delay_max=3.0))
        pageview = make_pageview(dwell=0.5)
        for seed in range(20):
            exposure = model.sample(pageview, random.Random(seed))
            assert exposure.exposure_seconds == 0.0

    def test_engaging_publishers_more_often_in_view(self):
        model = ExposureModel()
        rng = random.Random(1)
        sporty = make_pageview(make_publisher(engagement=2.2), dwell=10.0)
        dull = make_pageview(make_publisher(domain="b.es", engagement=0.6),
                             dwell=10.0)
        sporty_hits = sum(model.sample(sporty, rng).pixels_in_view
                          for _ in range(800))
        dull_hits = sum(model.sample(dull, rng).pixels_in_view
                        for _ in range(800))
        assert sporty_hits > dull_hits

    def test_long_dwell_is_audit_viewable(self):
        model = ExposureModel()
        pageview = make_pageview(dwell=60.0)
        exposure = model.sample(pageview, random.Random(2))
        assert exposure.audit_viewable_upper_bound
