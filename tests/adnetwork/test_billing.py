"""Tests for repro.adnetwork.billing."""

import random

import pytest

from repro.adnetwork.billing import (
    BillingLedger,
    CampaignBillingSummary,
    Charge,
    Refund,
)


class _FakePageview:
    def __init__(self, is_bot):
        self.is_bot = is_bot


class _FakeCampaign:
    def __init__(self, cid):
        self.campaign_id = cid


class _FakeImpression:
    def __init__(self, cid, is_bot, price=0.0001):
        self.campaign = _FakeCampaign(cid)
        self.pageview = _FakePageview(is_bot)
        self.price_eur = price


class TestLedger:
    def test_charge_accumulation(self):
        ledger = BillingLedger()
        ledger.charge("a", 1, 0.10, 0.0)
        ledger.charge("a", 2, 0.20, 1.0)
        ledger.charge("b", 3, 0.50, 2.0)
        assert ledger.charged_total("a") == pytest.approx(0.30)
        assert ledger.charged_total("b") == pytest.approx(0.50)
        assert ledger.charged_total("c") == 0.0

    def test_net_total_subtracts_refunds(self):
        ledger = BillingLedger()
        ledger.charge("a", 1, 1.0, 0.0)
        ledger.refunds.append(Refund("a", 0.25, covered_impressions=5))
        assert ledger.net_total("a") == pytest.approx(0.75)

    def test_charge_validation(self):
        with pytest.raises(ValueError):
            Charge("a", 1, -0.1, 0.0)
        with pytest.raises(ValueError):
            Refund("a", -0.1, 0)


class TestFraudRefunds:
    def test_full_detection_refunds_every_bot_impression(self):
        ledger = BillingLedger()
        impressions = ([_FakeImpression("a", is_bot=True)] * 10
                       + [_FakeImpression("a", is_bot=False)] * 10)
        refunds = ledger.apply_fraud_refunds(impressions, random.Random(0),
                                             detection_rate=1.0)
        assert len(refunds) == 1
        assert refunds[0].covered_impressions == 10
        assert refunds[0].amount_eur == pytest.approx(10 * 0.0001)

    def test_zero_detection_refunds_nothing(self):
        ledger = BillingLedger()
        impressions = [_FakeImpression("a", is_bot=True)] * 10
        assert ledger.apply_fraud_refunds(impressions, random.Random(0),
                                          detection_rate=0.0) == []

    def test_human_impressions_never_refunded(self):
        ledger = BillingLedger()
        impressions = [_FakeImpression("a", is_bot=False)] * 50
        assert ledger.apply_fraud_refunds(impressions, random.Random(0),
                                          detection_rate=1.0) == []

    def test_refunds_grouped_per_campaign(self):
        ledger = BillingLedger()
        impressions = ([_FakeImpression("a", is_bot=True)] * 5
                       + [_FakeImpression("b", is_bot=True)] * 3)
        refunds = ledger.apply_fraud_refunds(impressions, random.Random(0),
                                             detection_rate=1.0)
        assert sorted(r.campaign_id for r in refunds) == ["a", "b"]

    def test_refunds_recorded_on_ledger(self):
        ledger = BillingLedger()
        ledger.charge("a", 1, 0.0001, 0.0)
        ledger.apply_fraud_refunds([_FakeImpression("a", is_bot=True)],
                                   random.Random(0), detection_rate=1.0)
        assert ledger.refunded_total("a") > 0

    def test_partial_detection_is_partial(self):
        ledger = BillingLedger()
        impressions = [_FakeImpression("a", is_bot=True) for _ in range(400)]
        refunds = ledger.apply_fraud_refunds(impressions, random.Random(1),
                                             detection_rate=0.5)
        assert 120 < refunds[0].covered_impressions < 280

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            BillingLedger().apply_fraud_refunds([], random.Random(0),
                                                detection_rate=2.0)


class TestSummaries:
    def test_summaries_cover_charges_and_refunds(self):
        ledger = BillingLedger()
        ledger.charge("b", 1, 0.10, 0.0)
        ledger.charge("a", 2, 0.20, 1.0)
        ledger.refunds.append(Refund("a", 0.05, covered_impressions=3))
        summaries = ledger.summaries()
        assert list(summaries) == ["a", "b"]
        assert summaries["a"].charged_eur == pytest.approx(0.20)
        assert summaries["a"].refunded_eur == pytest.approx(0.05)
        assert summaries["a"].refund_covered_impressions == 3
        assert summaries["b"].refunded_eur == 0.0

    def test_refund_only_campaign_gets_a_summary(self):
        ledger = BillingLedger()
        ledger.refunds.append(Refund("x", 0.01, covered_impressions=1))
        assert ledger.summaries()["x"].charged_eur == 0.0

    def test_absorb_summary_preserves_query_surface(self):
        source = BillingLedger()
        source.charge("a", 1, 0.10, 0.0)
        source.charge("a", 2, 0.15, 1.0)
        source.refunds.append(Refund("a", 0.05, covered_impressions=2))
        target = BillingLedger()
        for summary in source.summaries().values():
            target.absorb_summary(summary)
        assert target.charged_total("a") == pytest.approx(
            source.charged_total("a"))
        assert target.refunded_total("a") == pytest.approx(
            source.refunded_total("a"))
        assert target.net_total("a") == pytest.approx(source.net_total("a"))

    def test_absorbing_shards_in_order_is_deterministic(self):
        shards = []
        for seed in range(3):
            ledger = BillingLedger()
            ledger.charge("a", 1, 0.1 * (seed + 1), float(seed))
            shards.append(ledger.summaries())
        merged_one = BillingLedger()
        merged_two = BillingLedger()
        for shard in shards:
            for summary in shard.values():
                merged_one.absorb_summary(summary)
                merged_two.absorb_summary(summary)
        # Identical fold order -> bit-identical float totals.
        assert merged_one.charged_total("a") == merged_two.charged_total("a")

    def test_summary_validation(self):
        with pytest.raises(ValueError):
            CampaignBillingSummary("", 0.0, 0.0, 0)
        with pytest.raises(ValueError):
            CampaignBillingSummary("a", -0.1, 0.0, 0)
        with pytest.raises(ValueError):
            CampaignBillingSummary("a", 0.0, 0.0, -1)
