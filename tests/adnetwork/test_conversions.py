"""Tests for repro.adnetwork.conversions — the post-click funnel."""

import random

import pytest

from repro.adnetwork.conversions import (
    ConversionConfig,
    ConversionEvent,
    ConversionSimulator,
)
from repro.adnetwork.matching import MatchDecision, MatchReason
from repro.adnetwork.server import DeliveredImpression
from repro.adnetwork.viewability import Exposure
from tests.adnetwork.conftest import make_pageview, make_publisher


def make_impression(campaign, is_bot=False):
    pageview = make_pageview(make_publisher(), is_bot=is_bot)
    return DeliveredImpression(
        impression_id=1, campaign=campaign, pageview=pageview,
        exposure=Exposure(0.5, 5.0, True),
        match=MatchDecision(True, MatchReason.CONTEXTUAL),
        clearing_cpm=0.05)


class TestConversionEvent:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConversionEvent(campaign_id="", timestamp=0, ip="1.1.1.1",
                            user_agent="UA", value_eur=10.0)
        with pytest.raises(ValueError):
            ConversionEvent(campaign_id="c", timestamp=0, ip="1.1.1.1",
                            user_agent="UA", value_eur=0.0)
        with pytest.raises(ValueError):
            ConversionEvent(campaign_id="c", timestamp=0, ip="",
                            user_agent="UA", value_eur=10.0)

    def test_anonymized_replaces_ip_with_token(self):
        event = ConversionEvent(campaign_id="c", timestamp=0, ip="1.1.1.1",
                                user_agent="UA", value_eur=10.0)
        anonymous = event.anonymized("salt")
        assert anonymous.ip == ""
        assert len(anonymous.ip_token) == 16
        # Idempotent.
        assert anonymous.anonymized("salt") == anonymous

    def test_token_matches_impression_store_scheme(self):
        from repro.util.hashing import anonymize_ip

        event = ConversionEvent(campaign_id="c", timestamp=0, ip="1.1.1.1",
                                user_agent="UA", value_eur=10.0)
        assert event.anonymized("s").user_key == \
            f"{anonymize_ip('1.1.1.1', salt='s')}\x1fUA"


class TestConversionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ConversionConfig(human_conversion_rate=1.5)
        with pytest.raises(ValueError):
            ConversionConfig(deliberation_min_seconds=100,
                             deliberation_max_seconds=50)
        with pytest.raises(ValueError):
            ConversionConfig(order_value_min_eur=0)


class TestConversionSimulator:
    def test_no_click_no_conversion(self, football_campaign):
        simulator = ConversionSimulator(
            ConversionConfig(human_conversion_rate=1.0))
        impression = make_impression(football_campaign)
        assert simulator.simulate(impression, 0, random.Random(0)) is None
        assert simulator.clicks_seen == 0

    def test_human_click_converts_at_full_rate(self, football_campaign):
        simulator = ConversionSimulator(
            ConversionConfig(human_conversion_rate=1.0))
        impression = make_impression(football_campaign)
        event = simulator.simulate(impression, 1, random.Random(0))
        assert event is not None
        assert event.campaign_id == "Football-010"
        assert event.ip == impression.pageview.ip
        assert event.timestamp > impression.pageview.timestamp
        assert event.value_eur > 0

    def test_bots_never_convert_by_default(self, football_campaign):
        simulator = ConversionSimulator(
            ConversionConfig(human_conversion_rate=1.0))
        impression = make_impression(football_campaign, is_bot=True)
        rng = random.Random(1)
        assert all(simulator.simulate(impression, 1, rng) is None
                   for _ in range(50))
        assert simulator.clicks_seen == 50
        assert simulator.conversions == 0

    def test_partial_rate_is_partial(self, football_campaign):
        simulator = ConversionSimulator(
            ConversionConfig(human_conversion_rate=0.5))
        impression = make_impression(football_campaign)
        rng = random.Random(2)
        hits = sum(simulator.simulate(impression, 1, rng) is not None
                   for _ in range(400))
        assert 140 < hits < 260
