"""Tests for repro.adnetwork.server — the delivery engine."""

import random

import pytest

from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.inventory import ExternalDemand, ExternalDemandConfig
from repro.adnetwork.matching import MatchEngine, MatchReason
from repro.adnetwork.server import AdServer, NetworkPolicy
from repro.geo.ipdb import GeoIpDatabase
from repro.geo.providers import ProviderRegistry
from tests.adnetwork.conftest import END, START, make_pageview, make_publisher


@pytest.fixture(scope="module")
def registry():
    return ProviderRegistry(random.Random(61))


@pytest.fixture(scope="module")
def ipdb(registry):
    return GeoIpDatabase(registry)


def quiet_external():
    return ExternalDemand(ExternalDemandConfig(
        competition_by_country=(("ES", 0.0),), default_competition=0.0,
        price_level_by_country=(("ES", 1.0),), default_price_level=1.0))


def football_campaign(**overrides):
    defaults = dict(campaign_id="Football-010", keywords=("Football",),
                    cpm_eur=0.10, target_countries=("ES",),
                    start_unix=START, end_unix=END, daily_budget_eur=100.0)
    defaults.update(overrides)
    return CampaignSpec(**defaults)


def make_server(lexicon, ipdb, campaigns=None, policy=None):
    campaigns = campaigns if campaigns is not None else [football_campaign()]
    return AdServer(campaigns, MatchEngine(lexicon), quiet_external(), ipdb,
                    policy=policy)


def es_pageview(registry, **overrides):
    ip = registry.access_providers("ES")[0].blocks[0].nth(77)
    defaults = dict(ip=ip, country="ES")
    defaults.update(overrides)
    return make_pageview(**defaults)


class TestServe:
    def test_matched_pageview_yields_impression(self, lexicon, ipdb, registry):
        server = make_server(lexicon, ipdb)
        impression = server.serve(es_pageview(registry), random.Random(0))
        assert impression is not None
        assert impression.campaign.campaign_id == "Football-010"
        assert impression.match.reason is MatchReason.CONTEXTUAL
        assert impression.publisher_domain == "futbol9.es"

    def test_inactive_campaign_never_serves(self, lexicon, ipdb, registry):
        server = make_server(lexicon, ipdb)
        pageview = es_pageview(registry, timestamp=START - 1000)
        assert server.serve(pageview, random.Random(0)) is None

    def test_geo_mismatch_never_serves(self, lexicon, ipdb, registry):
        server = make_server(lexicon, ipdb)
        ru_ip = registry.access_providers("RU")[0].blocks[0].nth(5)
        pageview = es_pageview(registry, ip=ru_ip, country="RU")
        assert server.serve(pageview, random.Random(0)) is None

    def test_geo_resolution_prefers_ip_database(self, lexicon, ipdb, registry):
        server = make_server(lexicon, ipdb)
        # The visitor claims ES but the IP belongs to a Russian ISP: the
        # network's own geo lookup wins, so no Spain-targeted ad serves.
        ru_ip = registry.access_providers("RU")[0].blocks[0].nth(9)
        pageview = es_pageview(registry, ip=ru_ip, country="ES")
        assert server.serve(pageview, random.Random(0)) is None

    def test_unknown_ip_falls_back_to_claimed_country(self, lexicon, ipdb,
                                                      registry):
        server = make_server(lexicon, ipdb)
        pageview = es_pageview(registry, ip="1.2.3.4", country="ES")
        assert server.serve(pageview, random.Random(0)) is not None

    def test_impressions_charge_billing(self, lexicon, ipdb, registry):
        server = make_server(lexicon, ipdb)
        server.serve(es_pageview(registry), random.Random(0))
        assert server.billing.charged_total("Football-010") > 0

    def test_budget_exhaustion_stops_delivery(self, lexicon, ipdb, registry):
        campaign = football_campaign(daily_budget_eur=0.0002)
        server = make_server(lexicon, ipdb, campaigns=[campaign])
        rng = random.Random(1)
        late = START + 0.99 * 86_400
        for index in range(300):
            server.serve(es_pageview(registry, timestamp=late + index),
                         rng)
        # floor is 0.01 CPM -> 1e-5 per impression -> at most ~20-ish wins.
        assert len(server.impressions) <= 30

    def test_run_consumes_stream(self, lexicon, ipdb, registry):
        server = make_server(lexicon, ipdb)
        views = [es_pageview(registry, timestamp=START + i * 50)
                 for i in range(20)]
        delivered = server.run(iter(views), random.Random(2))
        assert delivered == server.impressions


class TestIvtPrefilter:
    def test_full_prefilter_blocks_all_bots(self, lexicon, ipdb, registry):
        policy = NetworkPolicy(ivt_prefilter_rate=1.0)
        server = make_server(lexicon, ipdb, policy=policy)
        pageview = es_pageview(registry, is_bot=True)
        assert server.serve(pageview, random.Random(0)) is None
        assert server.prefiltered_pageviews == 1

    def test_zero_prefilter_serves_bots(self, lexicon, ipdb, registry):
        policy = NetworkPolicy(ivt_prefilter_rate=0.0)
        server = make_server(lexicon, ipdb, policy=policy)
        pageview = es_pageview(registry, is_bot=True)
        assert server.serve(pageview, random.Random(0)) is not None

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            NetworkPolicy(ivt_prefilter_rate=1.5)
        with pytest.raises(ValueError):
            NetworkPolicy(default_frequency_cap=0)
        with pytest.raises(ValueError):
            NetworkPolicy(broad_base_rate=0.9, broad_max_rate=0.1)
        with pytest.raises(ValueError):
            NetworkPolicy(matched_supply_ref=0.0)


class TestFrequencyCap:
    def test_no_default_cap_allows_unbounded_repetition(self, lexicon, ipdb,
                                                        registry):
        server = make_server(lexicon, ipdb)
        rng = random.Random(3)
        for index in range(120):
            server.serve(es_pageview(registry, timestamp=START + index * 30),
                         rng)
        # Same IP+UA got far more than any sensible cap — the paper's point.
        assert len(server.impressions) > 100

    def test_advertiser_cap_enforced_per_user(self, lexicon, ipdb, registry):
        campaign = football_campaign(frequency_cap=3)
        server = make_server(lexicon, ipdb, campaigns=[campaign])
        rng = random.Random(4)
        for index in range(50):
            server.serve(es_pageview(registry, timestamp=START + index * 30),
                         rng)
        assert len(server.impressions) == 3

    def test_cap_distinguishes_user_agents(self, lexicon, ipdb, registry):
        campaign = football_campaign(frequency_cap=2)
        server = make_server(lexicon, ipdb, campaigns=[campaign])
        rng = random.Random(5)
        for index in range(30):
            ua = "UA-A" if index % 2 else "UA-B"
            server.serve(es_pageview(registry, timestamp=START + index * 30,
                                     user_agent=ua), rng)
        assert len(server.impressions) == 4   # 2 per (IP, UA) identity

    def test_network_default_cap_policy(self, lexicon, ipdb, registry):
        policy = NetworkPolicy(default_frequency_cap=5)
        server = make_server(lexicon, ipdb, policy=policy)
        rng = random.Random(6)
        for index in range(60):
            server.serve(es_pageview(registry, timestamp=START + index * 30),
                         rng)
        assert len(server.impressions) == 5


class TestBroadExpansion:
    def test_scarce_supply_raises_broad_rate(self, lexicon, ipdb, registry):
        campaign = football_campaign(campaign_id="Research",
                                     keywords=("Research",))
        server = make_server(lexicon, ipdb, campaigns=[campaign])
        rng = random.Random(7)
        off_topic = make_publisher(domain="recetas1.es", topics=("recipes",),
                                   keywords=("food",))
        # Feed many unmatched pageviews: supply estimate drops, spend stays
        # zero, so the expansion should climb well above the base rate.
        for index in range(400):
            server.serve(es_pageview(registry, publisher=off_topic,
                                     timestamp=START + 40_000 + index), rng)
        rate = server.broad_rate(campaign, START + 45_000)
        assert rate > 0.5

    def test_plentiful_supply_keeps_broad_at_base(self, lexicon, ipdb,
                                                  registry):
        server = make_server(lexicon, ipdb)
        rng = random.Random(8)
        for index in range(400):
            server.serve(es_pageview(registry, timestamp=START + 40_000 + index),
                         rng)
        campaign = server.campaigns[0]
        rate = server.broad_rate(campaign, START + 45_000)
        assert rate <= server.policy.broad_base_rate + 0.05

    def test_supply_estimate_reflects_traffic(self, lexicon, ipdb, registry):
        server = make_server(lexicon, ipdb)
        rng = random.Random(9)
        off_topic = make_publisher(domain="recetas2.es", topics=("recipes",),
                                   keywords=("food",))
        for index in range(300):
            publisher = off_topic if index % 3 else None
            server.serve(es_pageview(registry, publisher=publisher,
                                     timestamp=START + index), rng)
        estimate = server.matched_supply("Football-010")
        assert 0.2 < estimate < 0.5   # one in three pageviews matched


class TestPlacementExclusions:
    def test_excluded_domain_never_served(self, lexicon, ipdb, registry):
        campaign = football_campaign(
            excluded_domains=frozenset({"futbol9.es"}))
        server = make_server(lexicon, ipdb, campaigns=[campaign])
        rng = random.Random(10)
        for index in range(50):
            server.serve(es_pageview(registry, timestamp=START + index * 30),
                         rng)
        assert server.impressions == []

    def test_other_domains_unaffected(self, lexicon, ipdb, registry):
        campaign = football_campaign(
            excluded_domains=frozenset({"someother.es"}))
        server = make_server(lexicon, ipdb, campaigns=[campaign])
        assert server.serve(es_pageview(registry), random.Random(0)) is not None

    def test_anonymous_exclusion(self, lexicon, ipdb, registry):
        campaign = football_campaign(exclude_anonymous=True)
        server = make_server(lexicon, ipdb, campaigns=[campaign])
        anonymous_pub = make_publisher(domain="anon.es", is_anonymous=True)
        pageview = es_pageview(registry, publisher=anonymous_pub)
        assert server.serve(pageview, random.Random(0)) is None
