"""Tests for repro.adnetwork.pacing."""

import random

import pytest

from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.pacing import BudgetPacer

START, END = CampaignSpec.flight(2016, 3, 29, 3, 31)


def make_campaign(cid="c", budget=1.0):
    return CampaignSpec(campaign_id=cid, keywords=("Research",), cpm_eur=0.1,
                        target_countries=("ES",), start_unix=START,
                        end_unix=END, daily_budget_eur=budget)


class TestBudgetPacer:
    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            BudgetPacer([make_campaign("a"), make_campaign("a")])

    def test_bad_throttle_floor_rejected(self):
        with pytest.raises(ValueError):
            BudgetPacer([make_campaign()], throttle_floor=0.0)

    def test_spend_accumulates_per_day(self):
        campaign = make_campaign()
        pacer = BudgetPacer([campaign])
        pacer.record_spend(campaign, START + 100, 0.3)
        pacer.record_spend(campaign, START + 200, 0.2)
        assert pacer.spent_today(campaign, START + 300) == pytest.approx(0.5)
        # Next day starts fresh.
        assert pacer.spent_today(campaign, START + 86_400 + 1) == 0.0
        assert pacer.total_spend["c"] == pytest.approx(0.5)

    def test_negative_spend_rejected(self):
        campaign = make_campaign()
        pacer = BudgetPacer([campaign])
        with pytest.raises(ValueError):
            pacer.record_spend(campaign, START, -0.1)

    def test_exhausted_budget_blocks_bidding(self):
        campaign = make_campaign(budget=1.0)
        pacer = BudgetPacer([campaign])
        pacer.record_spend(campaign, START + 100, 1.0)
        rng = random.Random(0)
        assert not any(pacer.may_bid(campaign, START + 200, rng)
                       for _ in range(50))

    def test_intraday_schedule_throttles_early_spend(self):
        campaign = make_campaign(budget=1.0)
        pacer = BudgetPacer([campaign])
        # Spend 50% of budget in the first minute of the day:
        pacer.record_spend(campaign, START + 60, 0.5)
        rng = random.Random(1)
        # At minute 2 the schedule only allows ~2% + 2% allowance.
        assert not any(pacer.may_bid(campaign, START + 120, rng)
                       for _ in range(50))
        # By late evening the schedule has caught up.
        late = START + 0.9 * 86_400
        assert any(pacer.may_bid(campaign, late, rng) for _ in range(50))

    def test_on_schedule_campaign_keeps_bidding(self):
        campaign = make_campaign(budget=1.0)
        pacer = BudgetPacer([campaign])
        rng = random.Random(2)
        mid_day = START + 43_200
        pacer.record_spend(campaign, mid_day, 0.3)   # below the 0.52 allowance
        assert any(pacer.may_bid(campaign, mid_day, rng) for _ in range(20))

    def test_head_start_allowance_at_day_open(self):
        campaign = make_campaign(budget=1.0)
        pacer = BudgetPacer([campaign])
        rng = random.Random(3)
        assert any(pacer.may_bid(campaign, START + 1, rng) for _ in range(20))
