"""Tests for repro.adnetwork.auction."""

import random

import pytest

from repro.adnetwork.auction import Auction
from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.inventory import (
    ExternalDemand,
    ExternalDemandConfig,
    make_request,
)
from tests.adnetwork.conftest import END, START, make_pageview, make_publisher


def campaign(cid, cpm):
    return CampaignSpec(campaign_id=cid, keywords=("Football",), cpm_eur=cpm,
                        target_countries=("ES",), start_unix=START,
                        end_unix=END)


def no_external():
    return ExternalDemand(ExternalDemandConfig(
        competition_by_country=(("ES", 0.0),), default_competition=0.0))


class TestAuction:
    def test_highest_cpm_wins(self):
        auction = Auction(no_external())
        request = make_request(make_pageview(make_publisher(floor_cpm=0.01)))
        outcome = auction.run(request, [campaign("a", 0.10),
                                        campaign("b", 0.30)],
                              random.Random(0))
        assert outcome.winner.campaign_id == "b"

    def test_second_price_clearing(self):
        auction = Auction(no_external())
        request = make_request(make_pageview(make_publisher(floor_cpm=0.01)))
        outcome = auction.run(request, [campaign("a", 0.10),
                                        campaign("b", 0.30)],
                              random.Random(0))
        assert outcome.clearing_cpm == pytest.approx(0.10)

    def test_sole_bidder_clears_at_floor(self):
        auction = Auction(no_external())
        request = make_request(make_pageview(make_publisher(floor_cpm=0.05)))
        outcome = auction.run(request, [campaign("a", 0.30)], random.Random(0))
        assert outcome.winner.campaign_id == "a"
        assert outcome.clearing_cpm == pytest.approx(0.05)

    def test_bid_below_floor_loses(self):
        auction = Auction(no_external())
        request = make_request(make_pageview(make_publisher(floor_cpm=0.50)))
        outcome = auction.run(request, [campaign("a", 0.10)], random.Random(0))
        assert outcome.winner is None
        assert not outcome.our_win

    def test_no_candidates_no_sale(self):
        auction = Auction(no_external())
        request = make_request(make_pageview())
        outcome = auction.run(request, [], random.Random(0))
        assert outcome.winner is None

    def test_external_bid_above_our_cpm_takes_slot(self):
        # premium 1.0, competition forced via default, large floor multiplier
        demand = ExternalDemand(ExternalDemandConfig(
            competition_by_country=(("ES", 1.0),),
            bid_over_floor_min=100.0, bid_over_floor_max=100.0))
        auction = Auction(demand)
        request = make_request(make_pageview(
            make_publisher(premium_demand=1.0, floor_cpm=0.10)))
        outcome = auction.run(request, [campaign("a", 0.30)], random.Random(0))
        assert outcome.winner is None
        assert outcome.contested
        assert outcome.external_bid_cpm == pytest.approx(10.0)

    def test_we_beat_weak_external_bid(self):
        demand = ExternalDemand(ExternalDemandConfig(
            competition_by_country=(("ES", 1.0),),
            bid_over_floor_min=1.1, bid_over_floor_max=1.1))
        auction = Auction(demand)
        request = make_request(make_pageview(
            make_publisher(premium_demand=1.0, floor_cpm=0.01)))
        outcome = auction.run(request, [campaign("a", 0.30)], random.Random(0))
        assert outcome.winner.campaign_id == "a"
        assert outcome.contested
        # Second price: pay the external runner-up.
        assert outcome.clearing_cpm == pytest.approx(0.011)

    def test_clearing_never_exceeds_winner_bid(self):
        auction = Auction(no_external())
        request = make_request(make_pageview(make_publisher(floor_cpm=0.01)))
        for seed in range(20):
            outcome = auction.run(request, [campaign("a", 0.10),
                                            campaign("b", 0.10)],
                                  random.Random(seed))
            assert outcome.clearing_cpm <= 0.10 + 1e-12

    def test_equal_bids_rotate(self):
        auction = Auction(no_external())
        request = make_request(make_pageview(make_publisher(floor_cpm=0.01)))
        rng = random.Random(3)
        winners = {auction.run(request, [campaign("a", 0.10),
                                         campaign("b", 0.10)], rng)
                   .winner.campaign_id for _ in range(50)}
        assert winners == {"a", "b"}
