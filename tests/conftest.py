"""Session-scoped miniature experiment shared by experiments/integration tests."""

import pytest

from repro.experiments.config import paper_experiment
from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="session")
def small_config():
    return paper_experiment(seed=2016, scale=0.03)


@pytest.fixture(scope="session")
def small_result(small_config):
    return ExperimentRunner(small_config).run()
