"""Tests for the taxonomy tree's shared memo layer.

``path_length``/``nodes_within``/``max_depth`` carry tree-level memos
that every similarity consumer (the matching engine, the context audit,
LCH scoring) shares.  These tests pin the memoised answers to the
uncached reference walks and the invalidation-on-growth contract.
"""

import itertools

import pytest

from repro.taxonomy.lexicon import build_default_lexicon
from repro.taxonomy.tree import TaxonomyError, TaxonomyTree
from repro.util import hotpath


@pytest.fixture
def tree():
    instance = TaxonomyTree("entity")
    instance.add_path("sports", "football", "la-liga")
    instance.add_path("sports", "tennis")
    instance.add_path("food", "recipes")
    return instance


class TestPathLengthMemo:
    def test_matches_uncached_for_all_pairs(self, tree):
        for a, b in itertools.product(tree, repeat=2):
            assert tree.path_length(a, b) == tree.path_length_uncached(a, b)

    def test_symmetric_key_normalisation(self, tree):
        assert tree.path_length("la-liga", "recipes") == \
            tree.path_length("recipes", "la-liga")
        assert len(tree._path_cache) == 1

    def test_reference_mode_bypasses_memo(self, tree):
        with hotpath.reference_hotpaths():
            assert tree.path_length("football", "tennis") == 2
        assert not tree._path_cache

    def test_invalidated_on_add(self, tree):
        tree.path_length("football", "tennis")
        assert tree._path_cache
        tree.add("padel", "sports")
        assert not tree._path_cache
        assert tree.path_length("padel", "tennis") == 2


class TestNodesWithin:
    def test_radius_zero_is_self(self, tree):
        assert tree.nodes_within("football", 0) == frozenset({"football"})

    def test_radius_one_is_parent_and_children(self, tree):
        assert tree.nodes_within("football", 1) == \
            frozenset({"football", "sports", "la-liga"})

    def test_large_radius_reaches_whole_tree(self, tree):
        assert tree.nodes_within("la-liga", 10) == frozenset(tree)

    def test_membership_iff_path_length_within(self, tree):
        # The set-index form must agree with the pairwise criterion it
        # replaces, for every node and every radius up to the diameter.
        for name in tree:
            for radius in range(6):
                neighborhood = tree.nodes_within(name, radius)
                for other in tree:
                    expected = tree.path_length_uncached(name, other) <= radius
                    assert (other in neighborhood) == expected

    def test_membership_iff_path_length_on_default_taxonomy(self):
        tree = build_default_lexicon().tree
        nodes = list(tree)
        for name in nodes[::7]:
            for radius in (0, 1, 2):
                neighborhood = tree.nodes_within(name, radius)
                for other in nodes:
                    expected = tree.path_length_uncached(name, other) <= radius
                    assert (other in neighborhood) == expected

    def test_negative_radius_rejected(self, tree):
        with pytest.raises(TaxonomyError):
            tree.nodes_within("sports", -1)

    def test_unknown_node_rejected(self, tree):
        with pytest.raises(TaxonomyError):
            tree.nodes_within("cricket", 1)

    def test_invalidated_on_add(self, tree):
        before = tree.nodes_within("sports", 1)
        assert "padel" not in before
        tree.add("padel", "sports")
        assert not tree._neighborhood_cache
        assert "padel" in tree.nodes_within("sports", 1)

    def test_memoised_answer_is_stable(self, tree):
        first = tree.nodes_within("football", 1)
        assert tree.nodes_within("football", 1) is first


class TestMaxDepthMemo:
    def test_cached_and_invalidated(self, tree):
        assert tree.max_depth == 4
        assert tree._max_depth_cache == 4
        tree.add("champions-league", "la-liga")
        assert tree._max_depth_cache is None
        assert tree.max_depth == 5
