"""Tests for repro.taxonomy.tree."""

import pytest

from repro.taxonomy.tree import TaxonomyError, TaxonomyTree


@pytest.fixture
def tree():
    t = TaxonomyTree("entity")
    t.add("sports", "entity")
    t.add("football", "sports")
    t.add("la-liga", "football")
    t.add("basketball", "sports")
    t.add("science", "entity")
    t.add("research", "science")
    return t


class TestStructure:
    def test_root_depth_is_one(self, tree):
        assert tree.depth("entity") == 1

    def test_child_depths(self, tree):
        assert tree.depth("sports") == 2
        assert tree.depth("la-liga") == 4

    def test_max_depth(self, tree):
        assert tree.max_depth == 4

    def test_contains_and_len(self, tree):
        assert "football" in tree
        assert "hockey" not in tree
        assert len(tree) == 7

    def test_parent_and_children(self, tree):
        assert tree.parent("football") == "sports"
        assert tree.parent("entity") is None
        assert set(tree.children("sports")) == {"football", "basketball"}

    def test_duplicate_node_rejected(self, tree):
        with pytest.raises(TaxonomyError):
            tree.add("football", "entity")

    def test_unknown_parent_rejected(self, tree):
        with pytest.raises(TaxonomyError):
            tree.add("golf", "nonexistent")

    def test_empty_name_rejected(self):
        with pytest.raises(TaxonomyError):
            TaxonomyTree("")
        tree = TaxonomyTree("r")
        with pytest.raises(TaxonomyError):
            tree.add("", "r")

    def test_unknown_node_queries_raise(self, tree):
        for method in (tree.depth, tree.parent, tree.children,
                       tree.ancestors, tree.subtree):
            with pytest.raises(TaxonomyError):
                method("nonexistent")


class TestAddPath:
    def test_creates_missing_chain(self):
        tree = TaxonomyTree("entity")
        tree.add_path("a", "b", "c")
        assert tree.depth("c") == 4

    def test_extends_existing_chain(self):
        tree = TaxonomyTree("entity")
        tree.add_path("a", "b")
        tree.add_path("a", "b", "c")
        assert "c" in tree
        assert len(tree) == 4

    def test_conflicting_parent_rejected(self):
        tree = TaxonomyTree("entity")
        tree.add_path("a", "b")
        with pytest.raises(TaxonomyError):
            tree.add_path("x", "b")


class TestPaths:
    def test_ancestors_of_leaf(self, tree):
        assert tree.ancestors("la-liga") == ["la-liga", "football", "sports",
                                             "entity"]

    def test_lca_of_siblings(self, tree):
        assert tree.lowest_common_ancestor("football", "basketball") == "sports"

    def test_lca_crossing_root(self, tree):
        assert tree.lowest_common_ancestor("la-liga", "research") == "entity"

    def test_lca_of_node_with_itself(self, tree):
        assert tree.lowest_common_ancestor("football", "football") == "football"

    def test_lca_with_ancestor(self, tree):
        assert tree.lowest_common_ancestor("la-liga", "sports") == "sports"

    def test_path_length_edges(self, tree):
        assert tree.path_length("football", "football") == 0
        assert tree.path_length("football", "basketball") == 2
        assert tree.path_length("la-liga", "research") == 5
        assert tree.path_length("football", "sports") == 1

    def test_path_length_symmetric(self, tree):
        assert tree.path_length("la-liga", "research") == \
            tree.path_length("research", "la-liga")


class TestTraversal:
    def test_leaves(self, tree):
        assert set(tree.leaves()) == {"la-liga", "basketball", "research"}

    def test_subtree_preorder(self, tree):
        assert tree.subtree("sports") == ["sports", "football", "la-liga",
                                          "basketball"]

    def test_subtree_of_leaf_is_itself(self, tree):
        assert tree.subtree("research") == ["research"]

    def test_iteration_covers_all_nodes(self, tree):
        assert set(tree) == {"entity", "sports", "football", "la-liga",
                             "basketball", "science", "research"}
