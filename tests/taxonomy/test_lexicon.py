"""Tests for repro.taxonomy.lexicon — the default ontology and keyword map."""

import pytest

from repro.taxonomy.lexicon import (
    Lexicon,
    build_default_lexicon,
    build_default_taxonomy,
)
from repro.taxonomy.tree import TaxonomyTree


class TestDefaultTaxonomy:
    def test_contains_campaign_topics(self):
        tree = build_default_taxonomy()
        for node in ("research", "universities", "telematics", "football"):
            assert node in tree

    def test_contains_unsafe_verticals(self):
        tree = build_default_taxonomy()
        for node in ("adult", "gambling", "piracy"):
            assert node in tree

    def test_football_under_sports(self):
        tree = build_default_taxonomy()
        assert tree.parent("football") == "sports"

    def test_size_is_ontology_scale(self):
        assert len(build_default_taxonomy()) >= 80

    def test_max_depth_supports_lch(self):
        assert build_default_taxonomy().max_depth >= 4


class TestLexicon:
    def test_campaign_keywords_resolve(self):
        lexicon = build_default_lexicon()
        assert lexicon.topic_of("Research") == "research"
        assert lexicon.topic_of("Universities") == "universities"
        assert lexicon.topic_of("Telematics") == "telematics"
        assert lexicon.topic_of("Football") == "football"

    def test_normalisation_of_case_and_whitespace(self):
        lexicon = build_default_lexicon()
        assert lexicon.topic_of("  FOOTBALL ") == "football"
        assert lexicon.topic_of("la  liga") == "la-liga"

    def test_node_name_is_its_own_keyword(self):
        lexicon = build_default_lexicon()
        assert lexicon.topic_of("online-casino") == "online-casino"

    def test_unknown_keyword_is_none(self):
        assert build_default_lexicon().topic_of("xyzzy") is None

    def test_topics_of_deduplicates_and_preserves_order(self):
        lexicon = build_default_lexicon()
        topics = lexicon.topics_of(["Football", "soccer", "Research"])
        assert topics == ["football", "research"]

    def test_topics_of_drops_unknown(self):
        lexicon = build_default_lexicon()
        assert lexicon.topics_of(["xyzzy", "Football"]) == ["football"]

    def test_vocabulary_is_normalised_and_sorted(self):
        vocabulary = build_default_lexicon().vocabulary()
        assert vocabulary == sorted(vocabulary)
        assert all(term == term.lower() for term in vocabulary)

    def test_mapping_to_unknown_node_rejected(self):
        tree = TaxonomyTree("entity")
        with pytest.raises(KeyError):
            Lexicon(tree, {"foo": "nonexistent"})
