"""Tests for repro.taxonomy.similarity — Leacock-Chodorow."""

import math

import pytest

from repro.taxonomy.similarity import (
    lch_similarity,
    max_lch_similarity,
    max_similarity_value,
    similarity_threshold,
)
from repro.taxonomy.tree import TaxonomyTree


@pytest.fixture
def tree():
    t = TaxonomyTree("entity")
    t.add_path("sports", "football", "la-liga")
    t.add_path("sports", "basketball")
    t.add_path("science", "research")
    return t


class TestLch:
    def test_identical_concepts_score_max(self, tree):
        score = lch_similarity(tree, "football", "football")
        assert score == pytest.approx(max_similarity_value(tree))
        assert score == pytest.approx(-math.log(1.0 / (2 * tree.max_depth)))

    def test_closer_concepts_score_higher(self, tree):
        near = lch_similarity(tree, "football", "la-liga")
        far = lch_similarity(tree, "football", "research")
        assert near > far

    def test_symmetry(self, tree):
        assert lch_similarity(tree, "la-liga", "research") == \
            pytest.approx(lch_similarity(tree, "research", "la-liga"))

    def test_exact_formula(self, tree):
        # football—basketball: 2 edges -> 3 nodes; D = 4.
        expected = -math.log(3.0 / 8.0)
        assert lch_similarity(tree, "football", "basketball") == \
            pytest.approx(expected)

    def test_root_to_leaf(self, tree):
        expected = -math.log(4.0 / 8.0)   # 3 edges -> 4 nodes
        assert lch_similarity(tree, "entity", "la-liga") == pytest.approx(expected)


class TestMaxLch:
    def test_best_pair_wins(self, tree):
        score = max_lch_similarity(tree, ["research"],
                                   ["la-liga", "science"])
        assert score == pytest.approx(lch_similarity(tree, "research", "science"))

    def test_empty_side_is_minus_inf(self, tree):
        assert max_lch_similarity(tree, [], ["football"]) == float("-inf")
        assert max_lch_similarity(tree, ["football"], []) == float("-inf")

    def test_single_pair_equals_lch(self, tree):
        assert max_lch_similarity(tree, ["football"], ["basketball"]) == \
            pytest.approx(lch_similarity(tree, "football", "basketball"))


class TestThreshold:
    def test_threshold_separates_near_from_far(self, tree):
        threshold = similarity_threshold(tree, max_path_edges=1)
        assert lch_similarity(tree, "football", "la-liga") >= threshold
        assert lch_similarity(tree, "football", "research") < threshold

    def test_threshold_is_inclusive_at_exact_distance(self, tree):
        threshold = similarity_threshold(tree, max_path_edges=2)
        assert lch_similarity(tree, "football", "basketball") >= threshold

    def test_zero_edges_only_identical(self, tree):
        threshold = similarity_threshold(tree, max_path_edges=0)
        assert lch_similarity(tree, "football", "football") >= threshold
        assert lch_similarity(tree, "football", "sports") < threshold

    def test_negative_edges_rejected(self, tree):
        with pytest.raises(ValueError):
            similarity_threshold(tree, max_path_edges=-1)
