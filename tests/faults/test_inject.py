"""Tests for repro.faults.inject — the seeded fault dice."""

import random

import pytest

from repro.faults.inject import NULL_INJECTOR, FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.metrics import MetricsRegistry


def make_plan(*specs, name="test"):
    return FaultPlan(name=name, specs=specs)


class TestDeterminism:
    def test_same_seed_same_fire_sequence(self):
        plan = FaultPlan.preset("flaky")
        rolls = []
        for _ in range(2):
            injector = FaultInjector(plan, random.Random(1234))
            rolls.append([injector.fires("connect", "refused")
                          for _ in range(200)])
        assert rolls[0] == rolls[1]
        assert any(rolls[0])  # the flaky preset does fire at p=0.05

    def test_same_seed_same_mangle_sequence(self):
        plan = FaultPlan.preset("hostile")
        payload = bytes(range(64))
        outputs = []
        for _ in range(2):
            injector = FaultInjector(plan, random.Random(99))
            outputs.append([injector.mangle(payload) for _ in range(300)])
        assert outputs[0] == outputs[1]
        kinds = {kind for _, kind in outputs[0]}
        assert kinds == {"", "truncate", "bit_flip"}

    def test_unconfigured_fault_never_draws(self):
        # Enabling fault A must not perturb fault B's dice: a roll for a
        # (stage, kind) with zero probability consumes no randomness.
        plan = make_plan(FaultSpec("connect", "refused", 0.5))
        injector = FaultInjector(plan, random.Random(7))
        before = injector.rng.getstate()
        assert not injector.fires("stream", "disconnect")
        assert not injector.fires("collector", "backpressure")
        assert injector.rng.getstate() == before

    def test_inactive_injector_is_a_noop(self):
        assert not NULL_INJECTOR.active
        assert not NULL_INJECTOR.fires("connect", "refused")
        assert NULL_INJECTOR.jitter(1.0) == 0.0
        data, kind = NULL_INJECTOR.mangle(b"\x81\x05hello")
        assert (data, kind) == (b"\x81\x05hello", "")

    def test_injecting_plan_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            FaultInjector(make_plan(FaultSpec("connect", "refused", 0.5)))


class TestMangle:
    def test_truncate_shortens_but_keeps_prefix(self):
        plan = make_plan(FaultSpec("frame", "truncate", 1.0))
        injector = FaultInjector(plan, random.Random(3))
        payload = bytes(range(32))
        data, kind = injector.mangle(payload)
        assert kind == "truncate"
        assert 1 <= len(data) < len(payload)
        assert payload.startswith(data)

    def test_bit_flip_changes_exactly_one_bit(self):
        plan = make_plan(FaultSpec("frame", "bit_flip", 1.0))
        injector = FaultInjector(plan, random.Random(3))
        payload = bytes(range(32))
        data, kind = injector.mangle(payload)
        assert kind == "bit_flip"
        assert len(data) == len(payload)
        diff = [a ^ b for a, b in zip(data, payload) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1

    def test_single_byte_survives_truncation(self):
        plan = make_plan(FaultSpec("frame", "truncate", 1.0))
        injector = FaultInjector(plan, random.Random(3))
        assert injector.mangle(b"\x00")[0] == b"\x00"


class TestAccounting:
    def test_counters_created_lazily_on_first_fire(self):
        metrics = MetricsRegistry()
        plan = make_plan(FaultSpec("connect", "refused", 1.0),
                         FaultSpec("stream", "disconnect", 0.0))
        injector = FaultInjector(plan, random.Random(5), metrics=metrics)
        assert not any(name.startswith("fault.")
                       for name, _, _ in metrics.snapshot().counters)
        assert injector.fires("connect", "refused")
        counters = {name: value
                    for name, _, value in metrics.snapshot().counters}
        assert counters["fault.connect.refused"] == 1
        assert "fault.stream.disconnect" not in counters

    def test_jitter_bounded_and_deterministic(self):
        plan = make_plan(FaultSpec("connect", "refused", 0.1))
        a = FaultInjector(plan, random.Random(11))
        b = FaultInjector(plan, random.Random(11))
        draws = [a.jitter(0.25) for _ in range(50)]
        assert draws == [b.jitter(0.25) for _ in range(50)]
        assert all(0.0 <= draw < 0.25 for draw in draws)
        assert a.jitter(0.0) == 0.0


class TestFaultPoint:
    def test_point_scopes_to_one_stage(self):
        plan = make_plan(FaultSpec("connect", "refused", 1.0),
                         FaultSpec("connect", "timeout", 0.0, param=2.5))
        injector = FaultInjector(plan, random.Random(5))
        point = injector.point("connect")
        assert point.stage == "connect"
        assert point.fires("refused")
        assert point.param("timeout") == 2.5
        assert not injector.point("stream").fires("refused")
