"""Tests for repro.faults.plan — declarative fault schedules."""

import pytest

from repro.faults.plan import (
    FAULT_KINDS,
    PRESET_NAMES,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)


class TestFaultSpec:
    def test_rejects_unknown_stage_kind(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultSpec("connect", "teleport", 0.1)
        with pytest.raises(ValueError, match="unknown fault"):
            FaultSpec("dns", "refused", 0.1)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("connect", "refused", 1.5)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("connect", "refused", -0.1)

    def test_rejects_negative_param(self):
        with pytest.raises(ValueError, match="param"):
            FaultSpec("connect", "timeout", 0.1, param=-1.0)

    def test_every_vocabulary_entry_constructs(self):
        for stage, kind in FAULT_KINDS:
            FaultSpec(stage, kind, 0.5)


class TestRetryPolicy:
    def test_backoff_is_bounded_exponential(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.5, multiplier=2.0,
                             max_delay=3.0, jitter=0.0)
        assert policy.backoff(1) == 0.5
        assert policy.backoff(2) == 1.0
        assert policy.backoff(3) == 2.0
        assert policy.backoff(4) == 3.0  # capped at max_delay
        assert policy.backoff(10) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="failures"):
            RetryPolicy().backoff(0)


class TestFaultPlan:
    def test_default_plan_is_inactive(self):
        plan = FaultPlan()
        assert plan.name == "none"
        assert not plan.injects
        assert not plan.retries_enabled
        assert not plan.active

    def test_crash_scopes_do_not_activate(self):
        # A re-executed shard must be byte-identical to an uncrashed one,
        # so a crash-only plan may not flip any in-shard behaviour.
        plan = FaultPlan(name="crashy", crash_scopes=("march/ES/0",))
        assert not plan.active
        assert plan.should_crash("march/ES/0", 0)
        assert not plan.should_crash("march/ES/0", 1)
        assert not plan.should_crash("march/ES/1", 0)

    def test_rejects_duplicate_specs(self):
        with pytest.raises(ValueError, match="duplicate fault spec"):
            FaultPlan(name="x", specs=(
                FaultSpec("connect", "refused", 0.1),
                FaultSpec("connect", "refused", 0.2)))

    def test_probability_and_param_lookup(self):
        plan = FaultPlan.preset("flaky")
        assert plan.probability("connect", "refused") == 0.05
        assert plan.probability("connect", "never-configured") == 0.0
        assert plan.param("connect", "timeout") == 0.75
        assert plan.param("frame", "truncate", default=9.0) == 0.0

    def test_plan_is_hashable(self):
        # ExperimentConfig is a dict key (world caches, lru_cache), so
        # the plan must hash like any other config field.
        assert hash(FaultPlan.preset("flaky")) == hash(FaultPlan.preset("flaky"))
        assert FaultPlan.preset("flaky") != FaultPlan.preset("hostile")


class TestPresetsAndResolve:
    def test_presets_all_resolve(self):
        for name in PRESET_NAMES:
            plan = FaultPlan.resolve(name)
            assert plan.name == name

    def test_none_and_missing_are_equal(self):
        assert FaultPlan.resolve(None) == FaultPlan.resolve("none") \
            == FaultPlan()

    def test_flaky_and_hostile_are_active(self):
        assert FaultPlan.preset("flaky").active
        assert FaultPlan.preset("hostile").active
        assert FaultPlan.preset("hostile").probability("connect", "refused") \
            > FaultPlan.preset("flaky").probability("connect", "refused")

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="preset"):
            FaultPlan.preset("chaotic")
        with pytest.raises(ValueError, match="--faults"):
            FaultPlan.resolve("/no/such/plan.json")

    def test_inline_json_round_trip(self):
        plan = FaultPlan.resolve(
            '{"name": "custom", "faults": [{"stage": "connect", '
            '"kind": "refused", "probability": 0.5}], '
            '"retry": {"max_attempts": 2}}')
        assert plan.name == "custom"
        assert plan.probability("connect", "refused") == 0.5
        assert plan.retry.max_attempts == 2
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_file_plan(self, tmp_path):
        path = tmp_path / "myplan.json"
        path.write_text(FaultPlan.preset("flaky").to_json(),
                        encoding="utf-8")
        assert FaultPlan.resolve(str(path)) == FaultPlan.preset("flaky")

    def test_crash_shards_round_trip(self):
        plan = FaultPlan(name="crashy", crash_scopes=("a/b/0", "a/b/1"),
                         crash_attempts=3)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_bad_documents_rejected(self):
        with pytest.raises(ValueError, match="bad inline fault plan"):
            FaultPlan.resolve("{not json")
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"surprise": 1})
        with pytest.raises(ValueError, match="missing field"):
            FaultPlan.from_dict({"faults": [{"stage": "connect"}]})
