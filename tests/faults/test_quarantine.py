"""Tests for repro.faults.quarantine — bounded malformed-frame log."""

import pytest

from repro.faults.quarantine import (
    DEFAULT_QUARANTINE_CAPACITY,
    QuarantineEntry,
    QuarantineLog,
)


def make_entry(connection_id=1, byte_offset=0, reason="reserved bits set"):
    return QuarantineEntry(connection_id=connection_id,
                           byte_offset=byte_offset, reason=reason)


def test_records_until_capacity_then_counts_drops():
    log = QuarantineLog(capacity=2)
    assert log.record(make_entry(1))
    assert log.record(make_entry(2))
    assert not log.record(make_entry(3))
    assert not log.record(make_entry(4))
    assert len(log) == 2
    assert log.dropped == 2
    assert log.total == 4
    assert [entry.connection_id for entry in log.entries()] == [1, 2]


def test_zero_capacity_keeps_nothing_but_still_counts():
    log = QuarantineLog(capacity=0)
    assert not log.record(make_entry())
    assert log.entries() == ()
    assert log.total == 1


def test_negative_capacity_rejected():
    with pytest.raises(ValueError, match="capacity"):
        QuarantineLog(capacity=-1)


def test_default_capacity_is_bounded():
    assert QuarantineLog().capacity == DEFAULT_QUARANTINE_CAPACITY


def test_entries_snapshot_is_immutable():
    log = QuarantineLog()
    log.record(make_entry())
    snapshot = log.entries()
    log.record(make_entry(2))
    assert len(snapshot) == 1
