"""Tests for repro.beacon.script — the simulated injected JavaScript."""

import random

import pytest

from repro.adnetwork.matching import MatchDecision, MatchReason
from repro.adnetwork.server import DeliveredImpression
from repro.adnetwork.viewability import Exposure
from repro.beacon.script import BeaconScript, BeaconScriptConfig
from tests.adnetwork.conftest import make_pageview, make_publisher


def make_impression(campaign, publisher=None, exposure_seconds=8.0,
                    is_bot=False):
    pageview = make_pageview(publisher or make_publisher(), is_bot=is_bot)
    return DeliveredImpression(
        impression_id=1,
        campaign=campaign,
        pageview=pageview,
        exposure=Exposure(0.5, exposure_seconds, True),
        match=MatchDecision(True, MatchReason.CONTEXTUAL),
        clearing_cpm=0.05,
    )


class TestBeaconScriptConfig:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            BeaconScriptConfig(browser_block_rate=1.5)
        with pytest.raises(ValueError):
            BeaconScriptConfig(mouse_move_rate_per_second=-1)


class TestObserve:
    def test_observation_mirrors_impression(self, football_campaign):
        script = BeaconScript(BeaconScriptConfig(browser_block_rate=0.0))
        impression = make_impression(football_campaign)
        observation = script.observe(impression, random.Random(0))
        assert observation is not None
        assert observation.campaign_id == "Football-010"
        assert observation.page_url == impression.pageview.url
        assert observation.user_agent == impression.pageview.user_agent
        assert observation.exposure_seconds == 8.0

    def test_publisher_sandbox_blocks_script(self, football_campaign):
        script = BeaconScript(BeaconScriptConfig(browser_block_rate=0.0))
        publisher = make_publisher(blocks_scripts=True)
        impression = make_impression(football_campaign, publisher)
        assert script.observe(impression, random.Random(0)) is None
        assert script.blocked_by_publisher == 1

    def test_browser_block_rate(self, football_campaign):
        script = BeaconScript(BeaconScriptConfig(browser_block_rate=1.0))
        impression = make_impression(football_campaign)
        assert script.observe(impression, random.Random(0)) is None
        assert script.blocked_by_browser == 1

    def test_zero_exposure_has_no_interactions(self, football_campaign):
        script = BeaconScript(BeaconScriptConfig(browser_block_rate=0.0))
        impression = make_impression(football_campaign, exposure_seconds=0.0)
        observation = script.observe(impression, random.Random(0))
        assert observation is not None
        assert observation.interactions == ()

    def test_interactions_sorted_and_within_exposure(self, football_campaign):
        config = BeaconScriptConfig(browser_block_rate=0.0,
                                    mouse_move_rate_per_second=2.0)
        script = BeaconScript(config)
        impression = make_impression(football_campaign, exposure_seconds=10.0)
        observation = script.observe(impression, random.Random(1))
        offsets = [event.offset_seconds for event in observation.interactions]
        assert offsets == sorted(offsets)
        assert all(0 <= offset <= 10.0 for offset in offsets)
        assert observation.mouse_moves >= 10   # ~2/s over 10 s

    def test_bots_click_more_than_humans(self, football_campaign):
        config = BeaconScriptConfig(browser_block_rate=0.0,
                                    human_click_rate=0.01,
                                    bot_click_rate=0.5)
        script = BeaconScript(config)
        rng = random.Random(2)
        bot_clicks = sum(
            script.observe(make_impression(football_campaign, is_bot=True),
                           rng).clicks for _ in range(300))
        human_clicks = sum(
            script.observe(make_impression(football_campaign, is_bot=False),
                           rng).clicks for _ in range(300))
        assert bot_clicks > human_clicks * 5


class TestSafeFrameObservation:
    def test_safeframe_publisher_reports_pixels(self, football_campaign):
        script = BeaconScript(BeaconScriptConfig(browser_block_rate=0.0))
        publisher = make_publisher(safeframe=True)
        impression = make_impression(football_campaign, publisher)
        observation = script.observe(impression, random.Random(0))
        assert observation.pixels_in_view is True  # exposure fixture says so

    def test_cross_origin_publisher_reports_none(self, football_campaign):
        script = BeaconScript(BeaconScriptConfig(browser_block_rate=0.0))
        impression = make_impression(football_campaign)  # safeframe=False
        observation = script.observe(impression, random.Random(0))
        assert observation.pixels_in_view is None
