"""Tests for repro.beacon.client — beacon-to-collector delivery."""

import random

import pytest

from repro.adnetwork.matching import MatchDecision, MatchReason
from repro.adnetwork.server import DeliveredImpression
from repro.adnetwork.viewability import Exposure
from repro.beacon.client import BeaconClient, DeliveryStatus
from repro.beacon.events import BeaconObservation, InteractionEvent, InteractionKind
from repro.collector.server import CollectorServer
from repro.collector.store import ImpressionStore
from repro.net.transport import NetworkConditions, SimulatedNetwork
from repro.util.simclock import SimClock
from tests.adnetwork.conftest import START, make_pageview, make_publisher


def make_impression(campaign, exposure_seconds=6.0, render_delay=0.5,
                    timestamp=START + 100.0):
    pageview = make_pageview(make_publisher(), timestamp=timestamp)
    return DeliveredImpression(
        impression_id=1,
        campaign=campaign,
        pageview=pageview,
        exposure=Exposure(render_delay, exposure_seconds, True),
        match=MatchDecision(True, MatchReason.CONTEXTUAL),
        clearing_cpm=0.05,
    )


def make_observation(impression, interactions=()):
    return BeaconObservation(
        campaign_id=impression.campaign.campaign_id,
        creative_id=impression.campaign.creative_id,
        page_url=impression.pageview.url,
        user_agent=impression.pageview.user_agent,
        interactions=tuple(interactions),
        exposure_seconds=impression.exposure.exposure_seconds,
    )


@pytest.fixture
def pipeline():
    clock = SimClock(START)
    store = ImpressionStore()
    network = SimulatedNetwork(clock, random.Random(71),
                               NetworkConditions(connect_failure_rate=0.0,
                                                 mid_stream_failure_rate=0.0))
    collector = CollectorServer(store)
    collector.attach(network)
    client = BeaconClient(network, collector, clock, random.Random(72))
    return client, collector, store, network, clock


class TestDelivery:
    def test_successful_delivery_commits_record(self, pipeline,
                                                football_campaign):
        client, collector, store, _, _ = pipeline
        impression = make_impression(football_campaign)
        observation = make_observation(impression)
        delivery = client.deliver(impression, observation)
        assert delivery.status is DeliveryStatus.DELIVERED
        assert len(store) == 1
        record = next(iter(store))
        assert record.campaign_id == "Football-010"
        assert record.url == impression.pageview.url
        assert record.ip == impression.pageview.ip
        assert not record.truncated

    def test_exposure_measured_as_connection_duration(self, pipeline,
                                                      football_campaign):
        client, _, store, _, _ = pipeline
        impression = make_impression(football_campaign, exposure_seconds=6.0)
        client.deliver(impression, make_observation(impression))
        record = next(iter(store))
        # Duration = exposure minus the connect latency (<= 0.1 s).
        assert 5.8 <= record.exposure_seconds <= 6.0

    def test_timestamp_is_server_connection_time(self, pipeline,
                                                 football_campaign):
        client, _, store, _, _ = pipeline
        impression = make_impression(football_campaign,
                                     timestamp=START + 500.0,
                                     render_delay=1.0)
        client.deliver(impression, make_observation(impression))
        record = next(iter(store))
        assert START + 501.0 <= record.timestamp <= START + 501.2

    def test_interactions_counted_at_server(self, pipeline,
                                            football_campaign):
        client, _, store, _, _ = pipeline
        impression = make_impression(football_campaign, exposure_seconds=9.0)
        events = [InteractionEvent(InteractionKind.MOUSE_MOVE, 1.0),
                  InteractionEvent(InteractionKind.MOUSE_MOVE, 2.5),
                  InteractionEvent(InteractionKind.CLICK, 4.0)]
        client.deliver(impression, make_observation(impression, events))
        record = next(iter(store))
        assert record.mouse_moves == 2
        assert record.clicks == 1

    def test_connect_failure_loses_impression(self, football_campaign):
        clock = SimClock(START)
        store = ImpressionStore()
        network = SimulatedNetwork(clock, random.Random(3),
                                   NetworkConditions(connect_failure_rate=1.0))
        collector = CollectorServer(store)
        collector.attach(network)
        client = BeaconClient(network, collector, clock, random.Random(4))
        impression = make_impression(football_campaign)
        delivery = client.deliver(impression, make_observation(impression))
        assert delivery.status is DeliveryStatus.CONNECT_FAILED
        assert not delivery.reached_server
        assert len(store) == 0

    def test_mid_stream_drop_truncates_exposure(self, football_campaign):
        clock = SimClock(START)
        store = ImpressionStore()
        network = SimulatedNetwork(
            clock, random.Random(5),
            NetworkConditions(connect_failure_rate=0.0,
                              mid_stream_failure_rate=1.0))
        collector = CollectorServer(store)
        collector.attach(network)
        client = BeaconClient(network, collector, clock, random.Random(6))
        impression = make_impression(football_campaign, exposure_seconds=20.0)
        events = [InteractionEvent(InteractionKind.MOUSE_MOVE, 2.0)]
        delivery = client.deliver(impression,
                                  make_observation(impression, events))
        assert delivery.status is DeliveryStatus.DROPPED_MID_STREAM
        assert delivery.reached_server
        record = next(iter(store))
        assert record.truncated
        assert record.exposure_seconds < 20.0

    def test_overlapping_impressions_keep_independent_durations(
            self, pipeline, football_campaign):
        client, _, store, _, _ = pipeline
        # Second impression renders *before* the first one unloads.
        first = make_impression(football_campaign, exposure_seconds=50.0,
                                timestamp=START + 100.0)
        second = make_impression(football_campaign, exposure_seconds=5.0,
                                 timestamp=START + 110.0)
        client.deliver(first, make_observation(first))
        client.deliver(second, make_observation(second))
        durations = sorted(record.exposure_seconds for record in store)
        assert durations[0] == pytest.approx(5.0, abs=0.2)
        assert durations[1] == pytest.approx(50.0, abs=0.2)

    def test_server_skew_shifts_timestamps(self, football_campaign):
        clock = SimClock(START, server_skew=10.0)
        store = ImpressionStore()
        network = SimulatedNetwork(clock, random.Random(7),
                                   NetworkConditions(connect_failure_rate=0.0,
                                                     mid_stream_failure_rate=0.0))
        collector = CollectorServer(store)
        collector.attach(network)
        client = BeaconClient(network, collector, clock, random.Random(8))
        impression = make_impression(football_campaign,
                                     timestamp=START + 100.0,
                                     render_delay=0.0)
        client.deliver(impression, make_observation(impression))
        record = next(iter(store))
        assert record.timestamp >= START + 110.0
