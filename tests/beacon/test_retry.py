"""Tests for the beacon client's retry/backoff loop under fault plans."""

import dataclasses
import random

import pytest

from repro.beacon.client import BeaconClient, DeliveryStatus
from repro.collector.server import CollectorServer
from repro.collector.store import ImpressionStore
from repro.faults.inject import FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec, RetryPolicy
from repro.net.transport import NetworkConditions, SimulatedNetwork
from repro.util.simclock import SimClock
from tests.adnetwork.conftest import START
from tests.beacon.test_client import make_impression, make_observation


def make_pipeline(plan, fault_seed=1, client_seed=72):
    clock = SimClock(START)
    store = ImpressionStore()
    injector = FaultInjector(plan, random.Random(fault_seed))
    network = SimulatedNetwork(
        clock, random.Random(71),
        NetworkConditions(connect_failure_rate=0.0,
                          mid_stream_failure_rate=0.0),
        injector=injector)
    collector = CollectorServer(store, injector=injector)
    collector.attach(network)
    client = BeaconClient(network, collector, clock,
                          random.Random(client_seed), injector=injector)
    return client, collector, store


def make_distinct_impression(campaign, impression_id, **kwargs):
    # Each impression needs its own id: the delivery nonce is derived
    # from it, and a shared id would make the collector dedup every
    # delivery after the first.
    impression = make_impression(campaign, **kwargs)
    return dataclasses.replace(impression, impression_id=impression_id)


def refused_plan(max_attempts, probability=1.0, jitter=0.0):
    return FaultPlan(
        name="test",
        specs=(FaultSpec("connect", "refused", probability),),
        retry=RetryPolicy(max_attempts=max_attempts, base_delay=0.5,
                          multiplier=2.0, max_delay=30.0, jitter=jitter))


class TestRetrySchedule:
    def test_exhausted_retries_follow_exact_backoff_schedule(
            self, football_campaign):
        # Every connect refused, jitter 0: the attempt instants are pure
        # arithmetic — render, +base, +base*multiplier — and the client
        # gives up after max_attempts.
        client, _, store = make_pipeline(refused_plan(max_attempts=3))
        impression = make_impression(football_campaign)
        delivery = client.deliver(impression, make_observation(impression))
        assert delivery.status is DeliveryStatus.CONNECT_FAILED
        assert delivery.attempts == 3
        assert not delivery.committed
        assert len(store) == 0
        first = delivery.attempt_instants[0]
        assert delivery.attempt_instants == (
            first, first + 0.5, first + 0.5 + 1.0)

    def test_timeout_fault_charges_configured_wait(self, football_campaign):
        plan = FaultPlan(
            name="test",
            specs=(FaultSpec("connect", "timeout", 1.0, param=0.75),),
            retry=RetryPolicy(max_attempts=2, base_delay=0.5, jitter=0.0))
        client, _, _ = make_pipeline(plan)
        impression = make_impression(football_campaign)
        delivery = client.deliver(impression, make_observation(impression))
        assert delivery.attempts == 2
        gap = delivery.attempt_instants[1] - delivery.attempt_instants[0]
        assert gap == pytest.approx(0.75 + 0.5)

    def test_same_seed_reproduces_identical_schedule(self, football_campaign):
        plan = refused_plan(max_attempts=4, probability=0.5, jitter=0.25)
        outcomes = []
        for _ in range(2):
            client, _, _ = make_pipeline(plan, fault_seed=9)
            deliveries = []
            for impression_id in range(1, 6):
                impression = make_distinct_impression(
                    football_campaign, impression_id,
                    timestamp=START + 100.0 * impression_id)
                deliveries.append(client.deliver(
                    impression, make_observation(impression)))
            outcomes.append([(d.status, d.attempts, d.attempt_instants)
                             for d in deliveries])
        assert outcomes[0] == outcomes[1]

    def test_retry_recovers_flaky_connect(self, football_campaign):
        # With p=0.5 some first attempts fail; bounded retry must convert
        # at least one such failure into a committed delivery.
        plan = refused_plan(max_attempts=3, probability=0.5)
        client, _, store = make_pipeline(plan, fault_seed=2)
        recovered = False
        for impression_id in range(1, 21):
            impression = make_distinct_impression(
                football_campaign, impression_id,
                timestamp=START + 100.0 * impression_id)
            delivery = client.deliver(impression,
                                      make_observation(impression))
            if delivery.attempts > 1 and delivery.committed:
                recovered = True
        assert recovered
        assert len(store) > 0

    def test_handshake_failure_is_not_retried(self, football_campaign):
        # An unattached collector never answers the upgrade: that is a
        # deterministic rejection, so retrying is pointless and the
        # client must not burn attempts on it.
        plan = refused_plan(max_attempts=4, probability=0.0)
        clock = SimClock(START)
        injector = FaultInjector(plan, random.Random(1))
        network = SimulatedNetwork(
            clock, random.Random(71),
            NetworkConditions(connect_failure_rate=0.0,
                              mid_stream_failure_rate=0.0),
            injector=injector)
        collector = CollectorServer(ImpressionStore(), injector=injector)
        client = BeaconClient(network, collector, clock, random.Random(72),
                              injector=injector)
        impression = make_impression(football_campaign)
        delivery = client.deliver(impression, make_observation(impression))
        assert delivery.status is DeliveryStatus.HANDSHAKE_FAILED
        assert delivery.attempts == 1


class TestDuplicateDelivery:
    def test_duplicate_redelivery_dedups_at_collector(self,
                                                      football_campaign):
        plan = FaultPlan(
            name="test",
            specs=(FaultSpec("delivery", "duplicate", 1.0),),
            retry=RetryPolicy(max_attempts=1, base_delay=0.5, jitter=0.0))
        client, collector, store = make_pipeline(plan)
        impression = make_impression(football_campaign)
        delivery = client.deliver(impression, make_observation(impression))
        assert delivery.status is DeliveryStatus.DELIVERED
        assert delivery.committed
        assert delivery.attempts == 2       # original + one re-delivery
        assert delivery.duplicates == 1     # rejected by the nonce
        assert len(store) == 1
        assert collector.duplicates == 1


class TestNonce:
    def test_nonce_is_stable_per_impression(self, football_campaign):
        plan = refused_plan(max_attempts=2, probability=0.0)
        client_a, _, _ = make_pipeline(plan, fault_seed=1)
        client_b, _, _ = make_pipeline(plan, fault_seed=2)
        impression = make_impression(football_campaign)
        assert client_a._nonce(impression) == client_b._nonce(impression)
        other = make_distinct_impression(football_campaign, 2)
        assert client_a._nonce(impression) != client_a._nonce(other)

    def test_no_nonce_on_the_wire_without_faults(self, football_campaign):
        clock = SimClock(START)
        store = ImpressionStore()
        network = SimulatedNetwork(
            clock, random.Random(71),
            NetworkConditions(connect_failure_rate=0.0,
                              mid_stream_failure_rate=0.0))
        collector = CollectorServer(store)
        collector.attach(network)
        client = BeaconClient(network, collector, clock, random.Random(72))
        impression = make_impression(football_campaign)
        client.deliver(impression, make_observation(impression))
        assert len(store) == 1
        # The collector never saw (or tracked) a nonce.
        assert collector._seen_nonces == {}
