"""Shared fixtures for beacon tests."""

import pytest

from repro.adnetwork.campaign import CampaignSpec

START, END = CampaignSpec.flight(2016, 4, 2, 4, 3)


@pytest.fixture
def football_campaign():
    return CampaignSpec(campaign_id="Football-010", keywords=("Football",),
                        cpm_eur=0.10, target_countries=("ES",),
                        start_unix=START, end_unix=END,
                        daily_budget_eur=5.0)
