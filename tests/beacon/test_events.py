"""Tests for repro.beacon.events."""

import pytest

from repro.beacon.events import (
    BeaconObservation,
    InteractionEvent,
    InteractionKind,
)


def make_observation(**overrides):
    defaults = dict(
        campaign_id="Football-010",
        creative_id="Football-010-creative",
        page_url="http://futbol1.es/football/article-1.html",
        user_agent="Mozilla/5.0",
        interactions=(),
        exposure_seconds=5.0,
    )
    defaults.update(overrides)
    return BeaconObservation(**defaults)


class TestInteractionEvent:
    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError):
            InteractionEvent(InteractionKind.CLICK, -1.0)


class TestBeaconObservation:
    def test_valid(self):
        observation = make_observation()
        assert observation.exposure_seconds == 5.0

    @pytest.mark.parametrize("overrides", [
        {"campaign_id": ""},
        {"creative_id": ""},
        {"page_url": ""},
        {"exposure_seconds": -0.1},
    ])
    def test_rejects_invalid(self, overrides):
        with pytest.raises(ValueError):
            make_observation(**overrides)

    def test_interaction_after_unload_rejected(self):
        late = InteractionEvent(InteractionKind.CLICK, 10.0)
        with pytest.raises(ValueError):
            make_observation(interactions=(late,), exposure_seconds=5.0)

    def test_counters(self):
        events = (
            InteractionEvent(InteractionKind.MOUSE_MOVE, 1.0),
            InteractionEvent(InteractionKind.MOUSE_MOVE, 2.0),
            InteractionEvent(InteractionKind.CLICK, 3.0),
        )
        observation = make_observation(interactions=events)
        assert observation.mouse_moves == 2
        assert observation.clicks == 1
