"""Tests for per-stage memory watermarks."""

import pytest

from repro.obs.memwatch import (
    TRACEMALLOC_ENV,
    MemoryWatch,
    current_rss_bytes,
    memory_watermarks,
    tracemalloc_enabled_from_env,
)
from repro.obs.metrics import WALL, MetricsRegistry


class TestCurrentRss:
    def test_reports_positive_on_linux(self):
        # /proc/self/statm exists on every platform CI runs on; the
        # degraded 0 path is covered by the error branch, not asserted.
        assert current_rss_bytes() >= 0


class TestEnvFlag:
    @pytest.mark.parametrize("value, expected", [
        ("1", True), ("true", True), ("YES", True), (" on ", True),
        ("", False), ("0", False), ("off", False), ("maybe", False),
    ])
    def test_parsing(self, value, expected, monkeypatch):
        monkeypatch.setenv(TRACEMALLOC_ENV, value)
        assert tracemalloc_enabled_from_env() is expected

    def test_absent_means_off(self, monkeypatch):
        monkeypatch.delenv(TRACEMALLOC_ENV, raising=False)
        assert tracemalloc_enabled_from_env() is False


class TestMemoryWatch:
    def test_stage_accumulates_spans(self):
        watch = MemoryWatch(trace=False)
        for _ in range(3):
            with watch.stage("merge"):
                pass
        stats = watch.stages()["merge"]
        assert stats.spans == 3
        assert stats.rss_peak_bytes >= 0
        assert stats.tracemalloc_peak_bytes == 0

    def test_registry_receives_gauges_after_each_span(self):
        registry = MetricsRegistry()
        watch = MemoryWatch(registry=registry, trace=False)
        with watch.stage("simulate"):
            pass
        snapshot = registry.snapshot()
        names = {name for name, domain, _ in snapshot.gauges
                 if domain == WALL}
        assert "mem.simulate.spans" in names
        assert "mem.simulate.rss_peak_bytes" in names
        assert snapshot.gauge_value("mem.simulate.spans") == 1

    def test_record_to_flushes_accumulated_stages(self):
        watch = MemoryWatch(trace=False)
        with watch.stage("enrich"):
            pass
        registry = MetricsRegistry()
        watch.record_to(registry)
        table = memory_watermarks(registry.snapshot())
        assert set(table) == {"enrich"}
        assert table["enrich"]["spans"] == 1
        assert set(table["enrich"]) == {"spans", "rss_peak_bytes",
                                        "rss_delta_bytes",
                                        "tracemalloc_peak_bytes"}

    def test_stage_exception_still_records(self):
        watch = MemoryWatch(trace=False)
        with pytest.raises(RuntimeError):
            with watch.stage("merge"):
                raise RuntimeError("boom")
        assert watch.stages()["merge"].spans == 1

    def test_tracemalloc_peak_sampled_when_enabled(self):
        watch = MemoryWatch(trace=True)
        with watch.stage("simulate"):
            blob = [bytes(64) for _ in range(2048)]
            del blob
        assert watch.stages()["simulate"].tracemalloc_peak_bytes > 0

    def test_trace_defaults_from_env(self, monkeypatch):
        monkeypatch.setenv(TRACEMALLOC_ENV, "1")
        assert MemoryWatch().trace is True
        monkeypatch.delenv(TRACEMALLOC_ENV)
        assert MemoryWatch().trace is False


class TestMemoryWatermarks:
    def test_ignores_foreign_gauges(self):
        registry = MetricsRegistry()
        registry.gauge("mem.merge.rss_peak_bytes", domain=WALL).set(10.0)
        registry.gauge("queue.depth", domain=WALL).set(5.0)
        table = memory_watermarks(registry.snapshot())
        assert set(table) == {"merge"}

    def test_empty_snapshot(self):
        assert memory_watermarks(MetricsRegistry().snapshot()) == {}

    def test_watermark_merge_is_max(self):
        # Gauges absorb as max across snapshots — exactly watermark
        # semantics, which is why the watch rides the metrics layer.
        worst = MetricsRegistry()
        for peak in (10.0, 30.0, 20.0):
            shard = MetricsRegistry()
            shard.gauge("mem.simulate.rss_peak_bytes",
                        domain=WALL).set(peak)
            worst.absorb(shard.snapshot())
        table = memory_watermarks(worst.snapshot())
        assert table["simulate"]["rss_peak_bytes"] == 30.0
