"""Tests for the live progress renderer riding the wall event channel."""

import io

from repro.obs.events import EventLog
from repro.obs.metrics import WALL
from repro.obs.progress import ProgressRenderer, format_heartbeat


def heartbeat(log=None, **attrs):
    log = log if log is not None else EventLog()
    defaults = {"shards_done": 5, "shards_total": 20, "running": 2,
                "queued": 13, "merge_buffer": 1, "rss_bytes": 48 << 20,
                "elapsed_seconds": 3.0, "utilization": 1.0,
                "eta_seconds": 9.0}
    defaults.update(attrs)
    return log.emit("runner.heartbeat", at=3.0, domain=WALL, **defaults)


class TestFormatHeartbeat:
    def test_full_line(self):
        line = format_heartbeat(heartbeat())
        assert line.startswith("[#####---------------] 5/20 shards")
        assert "2 running" in line
        assert "13 queued" in line
        assert "buf 1" in line
        assert "rss 48 MiB" in line
        assert "eta 9s" in line

    def test_bar_fills_at_completion(self):
        line = format_heartbeat(heartbeat(shards_done=20, queued=0,
                                          merge_buffer=0, running=0,
                                          eta_seconds=0.0))
        assert line.startswith("[####################] 20/20 shards")
        assert "queued" not in line
        assert "buf" not in line

    def test_minute_scale_eta(self):
        assert "eta 2m05s" in format_heartbeat(heartbeat(eta_seconds=125.0))

    def test_missing_eta_omitted(self):
        log = EventLog()
        event = log.emit("runner.heartbeat", at=0.0, domain=WALL,
                         shards_done=0, shards_total=20)
        assert "eta" not in format_heartbeat(event)


class TestProgressRenderer:
    def test_non_tty_appends_plain_lines(self):
        stream = io.StringIO()  # not a TTY
        renderer = ProgressRenderer(stream=stream)
        log = EventLog()
        log.subscribe(renderer.handle)
        heartbeat(log)
        heartbeat(log, shards_done=10)
        renderer.close()
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert "\r" not in stream.getvalue()
        assert "5/20 shards" in lines[0]
        assert "10/20 shards" in lines[1]

    def test_ignores_sim_events_and_other_wall_events(self):
        stream = io.StringIO()
        renderer = ProgressRenderer(stream=stream)
        log = EventLog()
        log.subscribe(renderer.handle)
        log.emit("shard.started", at=0.0)
        log.emit("other.wall", at=0.0, domain=WALL)
        renderer.close()
        assert stream.getvalue() == ""

    def test_tty_redraws_in_place_and_closes_line(self):
        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        renderer = ProgressRenderer(stream=stream)
        log = EventLog()
        log.subscribe(renderer.handle)
        heartbeat(log)
        heartbeat(log, shards_done=10)
        renderer.close()
        text = stream.getvalue()
        assert text.count("\r") == 2
        assert text.endswith("\n")
        # The second draw pads over the first if it was longer.
        assert "10/20 shards" in text
