"""Edge-case tests for the ``--metrics`` table renderer."""

import math

from repro.obs.metrics import SIM, WALL, MetricsRegistry, MetricsSnapshot
from repro.obs.render import render_metrics


class TestRenderMetricsEdgeCases:
    def test_empty_snapshot_renders_placeholder(self):
        assert render_metrics(MetricsSnapshot()) == "(no metrics recorded)"
        assert render_metrics(
            MetricsRegistry().snapshot()) == "(no metrics recorded)"

    def test_non_finite_gauges_render_without_raising(self):
        registry = MetricsRegistry()
        registry.gauge("eta.seconds", domain=WALL).set(float("inf"))
        registry.gauge("drift.seconds", domain=WALL).set(float("-inf"))
        registry.gauge("ratio", domain=WALL).set(float("nan"))
        text = render_metrics(registry.snapshot())
        assert "eta.seconds" in text
        assert "drift.seconds" in text
        assert "ratio" in text

    def test_zero_count_histogram_renders(self):
        registry = MetricsRegistry()
        registry.histogram("latency", edges=(0.1, 1.0), domain=SIM)
        text = render_metrics(registry.snapshot())
        assert "latency" in text
        assert "overflow=0" in text
        # The mean is omitted (not a ZeroDivisionError) for empty
        # histograms.
        assert "mean=" not in text

    def test_alignment_stable_across_name_lengths(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a.much.longer.metric.name").inc(12345)
        registry.gauge("g", domain=WALL).set(math.pi)
        text = render_metrics(registry.snapshot())
        lines = [line for line in text.splitlines() if line.strip()]
        # Every row in one table shares one width.
        sim_rows = [line for line in lines if line.startswith("a ")
                    or line.startswith("a.")]
        assert len(sim_rows) == 2
        assert len({len(row.rstrip()) for row in sim_rows}) == 1
        assert len({row.index("|") for row in sim_rows}) == 1

    def test_mixed_domains_render_two_sections(self):
        registry = MetricsRegistry()
        registry.counter("sim.counter").inc()
        registry.gauge("wall.gauge", domain=WALL).set(1.0)
        text = render_metrics(registry.snapshot())
        assert "Sim-domain metrics" in text
        assert "Wall-clock metrics" in text
