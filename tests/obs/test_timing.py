"""Tests for repro.obs.timing — clock-explicit spans and domains."""

from repro.obs.metrics import SIM, WALL, MetricsRegistry
from repro.obs.render import render_metrics
from repro.obs.timing import Timer, sim_timer, wall_timer
from repro.util.simclock import SimClock


class TestTimer:
    def test_span_observes_elapsed_clock_time(self):
        registry = MetricsRegistry()
        clock = SimClock(1000.0)
        timer = sim_timer(registry, "span.seconds", clock.now,
                          edges=(1.0, 10.0))
        with timer.measure():
            clock.advance(5.0)
        snapshot = registry.snapshot().histogram_named("span.seconds")
        assert snapshot.total == 1
        assert snapshot.sum == 5.0
        assert snapshot.counts == (0, 1)

    def test_sim_timer_registers_in_sim_domain(self):
        registry = MetricsRegistry()
        sim_timer(registry, "a.seconds", SimClock().now)
        snapshot = registry.snapshot()
        assert snapshot.histogram_named("a.seconds").domain == SIM

    def test_wall_timer_registers_in_wall_domain(self):
        registry = MetricsRegistry()
        timer = wall_timer(registry, "b.seconds")
        with timer.measure():
            pass
        histogram = registry.snapshot().histogram_named("b.seconds")
        assert histogram.domain == WALL
        assert histogram.total == 1
        assert histogram.sum >= 0.0

    def test_observe_records_external_duration(self):
        registry = MetricsRegistry()
        timer = Timer(registry.histogram("c.seconds", (1.0,)),
                      clock=lambda: 0.0)
        timer.observe(0.25)
        assert registry.snapshot().histogram_named("c.seconds").sum == 0.25

    def test_sim_timings_are_deterministic(self):
        def run():
            registry = MetricsRegistry()
            clock = SimClock(0.0)
            timer = sim_timer(registry, "d.seconds", clock.now)
            for step in (0.2, 1.5, 40.0):
                with timer.measure():
                    clock.advance(step)
            return registry.snapshot().sim_only()

        assert run() == run()


class TestRender:
    def test_render_mentions_each_domain_and_metric(self):
        registry = MetricsRegistry()
        registry.counter("frames").inc(3)
        wall_timer(registry, "decode.seconds").observe(0.001)
        text = render_metrics(registry.snapshot())
        assert "Sim-domain metrics" in text
        assert "Wall-clock metrics" in text
        assert "frames" in text and "decode.seconds" in text

    def test_render_empty_snapshot(self):
        assert render_metrics(MetricsRegistry().snapshot()) \
            == "(no metrics recorded)"
