"""Tests for the deterministic tracing subsystem (trace + traceio)."""

import json

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    FlightRecorder,
    NullTracer,
    SpanRecord,
    TraceError,
    Tracer,
    TraceRecord,
    trace_id_for,
)
from repro.obs.traceio import (
    AuditVerdict,
    dumps_chrome_trace,
    dumps_trace_jsonl,
    loads_trace_jsonl,
    render_explain,
    render_trace_tree,
    with_audit_spans,
)


def build_trace(tracer=None, impression_id=7, record_id=3):
    tracer = tracer or Tracer(seed=11, scope="P1/DE/0")
    tracer.start("impression", at=100.0, publisher="site.example")
    tracer.event("auction.decide", at=100.0, winner="C1")
    tracer.begin("transport.connect", at=100.5, connection=1)
    tracer.event("ws.frame", at=100.6, opcode="text")
    tracer.end(at=101.0)
    tracer.set_impression(impression_id, "C1")
    if record_id is not None:
        tracer.set_record(record_id)
    return tracer.commit()


class TestTraceId:
    def test_pure_function_of_seed_scope_impression(self):
        assert trace_id_for(1, "a/b/0", 5) == trace_id_for(1, "a/b/0", 5)
        assert trace_id_for(1, "a/b/0", 5) != trace_id_for(2, "a/b/0", 5)
        assert trace_id_for(1, "a/b/0", 5) != trace_id_for(1, "a/b/1", 5)
        assert trace_id_for(1, "a/b/0", 5) != trace_id_for(1, "a/b/0", 6)

    def test_sixteen_hex_chars(self):
        token = trace_id_for(2016, "february/ES/0", 123)
        assert len(token) == 16
        int(token, 16)


class TestTracer:
    def test_commit_builds_document_order_tree(self):
        trace = build_trace()
        assert [span.name for span in trace.spans] == [
            "impression", "auction.decide", "transport.connect", "ws.frame"]
        root = trace.root
        assert root.parent_id is None
        connect = trace.spans_named("transport.connect")[0]
        frame = trace.spans_named("ws.frame")[0]
        assert connect.parent_id == root.span_id
        assert frame.parent_id == connect.span_id
        assert connect.duration == pytest.approx(0.5)
        # Root auto-closes at commit, at the latest span end observed.
        assert root.end == pytest.approx(101.0)

    def test_trace_identity_fields(self):
        trace = build_trace()
        assert trace.impression_id == 7
        assert trace.record_id == 3
        assert trace.campaign_id == "C1"
        assert trace.shard_scope == "P1/DE/0"
        assert trace.trace_id == trace_id_for(11, "P1/DE/0", 7)

    def test_attrs_stringified_deterministically(self):
        tracer = Tracer(seed=1, scope="s")
        tracer.start("root", at=0.0, flag=True, ratio=0.25, count=3, label="x")
        tracer.set_impression(1, "C")
        trace = tracer.commit()
        assert trace.root.attrs == (("flag", "true"), ("ratio", "0.25"),
                                    ("count", "3"), ("label", "x"))
        assert trace.root.attr("flag") == "true"
        assert trace.root.attr("missing") is None

    def test_span_methods_are_noops_without_pending_trace(self):
        tracer = Tracer(seed=1, scope="s")
        tracer.event("auction.decide", at=5.0)
        tracer.begin("transport.connect", at=6.0)
        tracer.end(at=7.0)
        assert tracer.commit() is None
        assert len(tracer.recorder) == 0

    def test_commit_without_impression_raises(self):
        tracer = Tracer(seed=1, scope="s")
        tracer.start("root", at=0.0)
        with pytest.raises(TraceError):
            tracer.commit()

    def test_double_start_raises(self):
        tracer = Tracer(seed=1, scope="s")
        tracer.start("root", at=0.0)
        with pytest.raises(TraceError):
            tracer.start("root", at=1.0)

    def test_abandon_discards_pending(self):
        tracer = Tracer(seed=1, scope="s")
        tracer.start("root", at=0.0)
        tracer.abandon()
        assert not tracer.active
        assert len(tracer.recorder) == 0
        build_trace(tracer)     # a fresh start works afterwards
        assert len(tracer.recorder) == 1

    def test_end_never_pops_the_root(self):
        tracer = Tracer(seed=1, scope="s")
        tracer.start("root", at=0.0)
        tracer.end(at=1.0)      # no open child: must be a no-op
        tracer.event("leaf", at=2.0)
        tracer.set_impression(1, "C")
        trace = tracer.commit()
        assert trace.spans_named("leaf")[0].parent_id \
            == trace.root.span_id

    def test_now_advances_monotonically(self):
        tracer = Tracer(seed=1, scope="s")
        tracer.start("root", at=10.0)
        tracer.advance_to(20.0)
        tracer.advance_to(15.0)
        assert tracer.now == 20.0

    def test_backwards_span_rejected(self):
        with pytest.raises(TraceError):
            SpanRecord(span_id=0, parent_id=None, name="x",
                       start=2.0, end=1.0)

    def test_null_tracer_is_inert(self):
        NULL_TRACER.start("root", at=0.0)
        NULL_TRACER.event("x", at=1.0)
        assert NULL_TRACER.commit() is None
        assert not NULL_TRACER.active
        assert isinstance(NULL_TRACER, NullTracer)


class TestFlightRecorder:
    def make_trace(self, index):
        return TraceRecord(
            trace_id=f"{index:016x}", shard_scope="s", impression_id=index,
            campaign_id="C", record_id=index,
            spans=(SpanRecord(span_id=0, parent_id=None, name="root",
                              start=float(index), end=float(index) + 1),))

    def test_head_tail_retention_policy(self):
        recorder = FlightRecorder(head=2, tail=3)
        for index in range(1, 11):
            recorder.record(self.make_trace(index))
        kept = [trace.impression_id for trace in recorder.traces()]
        assert kept == [1, 2, 8, 9, 10]     # first head, last tail
        assert recorder.committed == 10
        assert recorder.dropped == 5
        assert len(recorder) == 5

    def test_retention_is_a_pure_function_of_commit_order(self):
        first = FlightRecorder(head=2, tail=2)
        second = FlightRecorder(head=2, tail=2)
        for index in range(1, 9):
            first.record(self.make_trace(index))
            second.record(self.make_trace(index))
        assert first.traces() == second.traces()
        assert first.dropped == second.dropped

    def test_unbounded_head_keeps_everything(self):
        recorder = FlightRecorder(head=None, tail=0)
        for index in range(1, 100):
            recorder.record(self.make_trace(index))
        assert len(recorder) == 99
        assert recorder.dropped == 0

    def test_lookups(self):
        recorder = FlightRecorder(head=4, tail=4)
        for index in range(1, 5):
            recorder.record(self.make_trace(index))
        assert recorder.find_by_record(3).impression_id == 3
        assert recorder.find_by_impression(2).record_id == 2
        assert recorder.find(f"{1:016x}").impression_id == 1
        assert recorder.find_by_record(99) is None
        # Lookups stay correct after more commits invalidate the index.
        recorder.record(self.make_trace(5))
        assert recorder.find_by_record(5).impression_id == 5

    def test_annotate_appends_child_of_root(self):
        recorder = FlightRecorder()
        recorder.record(self.make_trace(1))
        assert recorder.annotate(1, "enrich.geo", at=1.5, country="DE")
        trace = recorder.find_by_record(1)
        added = trace.spans_named("enrich.geo")[0]
        assert added.parent_id == trace.root.span_id
        assert added.attr("country") == "DE"
        assert not recorder.annotate(99, "enrich.geo", at=0.0)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(head=-1)
        with pytest.raises(ValueError):
            FlightRecorder(tail=-1)


class TestTraceIO:
    def test_chrome_export_is_strict_json_with_one_tid_per_trace(self):
        traces = [build_trace(Tracer(seed=1, scope="a"), impression_id=1,
                              record_id=1),
                  build_trace(Tracer(seed=1, scope="b"), impression_id=2,
                              record_id=2)]
        text = dumps_chrome_trace(traces)
        document = json.loads(text)
        events = document["traceEvents"]
        assert {event["tid"] for event in events} == {1, 2}
        metadata = [event for event in events if event["ph"] == "M"]
        assert len(metadata) == 2
        complete = [event for event in events if event["ph"] == "X"]
        assert len(complete) == sum(len(trace.spans) for trace in traces)
        connect = next(event for event in complete
                       if event["name"] == "transport.connect")
        assert connect["dur"] == 500_000      # 0.5 s in microseconds
        assert connect["cat"] == "transport"
        assert "NaN" not in text and "Infinity" not in text

    def test_jsonl_round_trip_is_lossless(self):
        traces = (build_trace(), build_trace(Tracer(seed=2, scope="x"),
                                             impression_id=9,
                                             record_id=None))
        assert loads_trace_jsonl(dumps_trace_jsonl(traces)) == traces

    def test_render_tree_shows_nesting_and_attrs(self):
        rendered = render_trace_tree(build_trace())
        assert "impression" in rendered
        assert "`-- ws.frame" in rendered or "|-- ws.frame" in rendered
        assert "opcode=text" in rendered
        assert "+0.500s" in rendered

    def test_with_audit_spans_appends_classifications(self):
        verdicts = [AuditVerdict("fraud", "clean", "no dc hit")]
        extended = with_audit_spans(build_trace(), verdicts, at=102.0)
        classify = extended.spans_named("audit.classify")
        assert len(classify) == 1
        assert classify[0].attr("audit") == "fraud"
        assert classify[0].parent_id == extended.root.span_id

    def test_render_explain_includes_header_tree_and_verdicts(self):
        verdicts = [AuditVerdict("viewability", "viewable", "2.0s"),
                    AuditVerdict("fraud", "clean", "no dc hit")]
        rendered = render_explain(build_trace(), verdicts,
                                  header_lines=["  extra header"])
        assert "Impression receipt" in rendered
        assert "impression #7 · record #3" in rendered
        assert "extra header" in rendered
        assert "audit.classify" in rendered
        assert "Audit verdicts" in rendered
        assert "viewable" in rendered
