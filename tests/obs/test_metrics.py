"""Tests for repro.obs.metrics — registry, snapshot, canonical merge."""

import json
import pickle

import pytest

from repro.obs.metrics import (
    SIM,
    WALL,
    MetricsError,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("pipeline.frames")
        counter.inc()
        counter.inc(4)
        assert registry.snapshot().counter_value("pipeline.frames") == 5

    def test_counter_accepts_float_amounts(self):
        registry = MetricsRegistry()
        spend = registry.counter("billing.spend_eur")
        spend.inc(0.25)
        spend.inc(0.5)
        assert registry.snapshot().counter_value("billing.spend_eur") \
            == pytest.approx(0.75)

    def test_counter_rejects_decrease(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_holds_last_value(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("store.sealed")
        gauge.set(1)
        gauge.set(0)
        assert registry.snapshot().gauge_value("store.sealed") == 0

    def test_histogram_buckets_and_overflow(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", edges=(1.0, 10.0))
        for value in (0.5, 1.0, 5.0, 100.0):
            histogram.observe(value)
        snap = registry.snapshot().histogram_named("h")
        assert snap.counts == (2, 1)
        assert snap.overflow == 1
        assert snap.total == 4
        assert snap.sum == pytest.approx(106.5)

    def test_histogram_rejects_unsorted_edges(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("h", edges=(10.0, 1.0))

    def test_histogram_rejects_empty_edges(self):
        with pytest.raises(MetricsError):
            MetricsRegistry().histogram("h", edges=())


class TestRegistry:
    def test_same_name_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_domain_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x", domain=SIM)
        with pytest.raises(MetricsError):
            registry.counter("x", domain=WALL)

    def test_kind_clash_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(MetricsError):
            registry.gauge("x")

    def test_invalid_names_and_domains_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricsError):
            registry.counter("")
        with pytest.raises(MetricsError):
            registry.counter("has space")
        with pytest.raises(MetricsError):
            registry.counter("x", domain="cpu")


class TestSnapshot:
    def make_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("b.sim").inc(2)
        registry.counter("a.wall", domain=WALL).inc(7)
        registry.gauge("g").set(3.5)
        registry.histogram("h", edges=(1.0,), domain=WALL).observe(0.5)
        return registry.snapshot()

    def test_snapshot_is_name_sorted(self):
        snapshot = self.make_snapshot()
        names = [name for name, _, _ in snapshot.counters]
        assert names == sorted(names)

    def test_restrict_by_domain(self):
        snapshot = self.make_snapshot()
        sim = snapshot.sim_only()
        assert sim.counter_value("b.sim") == 2
        assert sim.counter_value("a.wall") == 0
        assert sim.histogram_named("h") is None

    def test_snapshot_pickles(self):
        snapshot = self.make_snapshot()
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_to_json_is_strict(self):
        registry = MetricsRegistry()
        registry.gauge("bad").set(float("inf"))
        text = registry.snapshot().to_json()
        assert "Infinity" not in text and "NaN" not in text
        data = json.loads(text)
        assert data["sim"]["gauges"]["bad"] is None

    def test_to_dict_groups_by_domain(self):
        data = self.make_snapshot().to_dict()
        assert data["sim"]["counters"]["b.sim"] == 2
        assert data["wall"]["counters"]["a.wall"] == 7
        assert data["wall"]["histograms"]["h"]["counts"] == [1]


class TestMerge:
    def shard_snapshot(self, factor):
        registry = MetricsRegistry()
        registry.counter("frames").inc(10 * factor)
        registry.counter("spend", domain=SIM).inc(0.125 * factor)
        registry.gauge("peak").set(factor)
        histogram = registry.histogram("exposure", edges=(1.0, 10.0))
        histogram.observe(0.5 * factor)
        histogram.observe(20.0)
        return registry.snapshot()

    def test_merge_sums_counters_and_histograms(self):
        merged = merge_snapshots([self.shard_snapshot(1),
                                  self.shard_snapshot(2)])
        assert merged.counter_value("frames") == 30
        assert merged.counter_value("spend") == pytest.approx(0.375)
        assert merged.gauge_value("peak") == 2
        histogram = merged.histogram_named("exposure")
        assert histogram.total == 4
        assert histogram.overflow == 2

    def test_merge_of_empty_is_empty(self):
        assert merge_snapshots([]) == MetricsSnapshot()

    def test_merge_is_order_insensitive_for_integer_metrics(self):
        first = merge_snapshots([self.shard_snapshot(1),
                                 self.shard_snapshot(3)])
        second = merge_snapshots([self.shard_snapshot(3),
                                  self.shard_snapshot(1)])
        assert first.counter_value("frames") == second.counter_value("frames")
        assert first.histogram_named("exposure") \
            == second.histogram_named("exposure")

    def test_mismatched_histogram_edges_raise(self):
        a = MetricsRegistry()
        a.histogram("h", edges=(1.0,))
        b = MetricsRegistry()
        b.histogram("h", edges=(2.0,))
        with pytest.raises(MetricsError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_absorb_recreates_instruments(self):
        source = MetricsRegistry()
        source.counter("x").inc(3)
        target = MetricsRegistry()
        target.absorb(source.snapshot())
        target.absorb(source.snapshot())
        assert target.snapshot().counter_value("x") == 6
