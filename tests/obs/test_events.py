"""Tests for the structured run-telemetry event log."""

import json

import pytest

from repro.obs.events import (
    DEFAULT_SHARD_EVENT_CAPACITY,
    EVENTS_SCHEMA,
    NULL_EVENTS,
    Event,
    EventLog,
    EventSchemaError,
    dumps_events_jsonl,
    validate_event_dict,
    validate_events_jsonl,
)
from repro.obs.metrics import SIM, WALL


class TestEvent:
    def test_attr_lookup(self):
        event = Event(seq=0, domain=SIM, name="shard.started", at=1.0,
                      attrs=(("attempt", 0), ("weight", 2.5)))
        assert event.attr("attempt") == 0
        assert event.attr("weight") == 2.5
        assert event.attr("missing", "fallback") == "fallback"

    def test_to_dict_is_schema_stamped_and_json_safe(self):
        event = Event(seq=3, domain=WALL, name="runner.heartbeat", at=0.5,
                      scope="run", attrs=(("eta", float("inf")),))
        obj = event.to_dict()
        assert obj["schema"] == EVENTS_SCHEMA
        assert obj["attrs"]["eta"] is None  # non-finite -> null
        json.dumps(obj, allow_nan=False)  # strict JSON round trip


class TestEventLog:
    def test_emit_records_in_order(self):
        log = EventLog(scope="february/DE/0")
        log.emit("shard.started", at=10.0, attempt=0)
        log.emit("shard.merged", at=20.0)
        names = [event.name for event in log.events()]
        assert names == ["shard.started", "shard.merged"]
        assert [event.seq for event in log.events()] == [0, 1]
        assert log.events()[0].scope == "february/DE/0"

    def test_scope_override(self):
        log = EventLog(scope="default")
        event = log.emit("shard.lost", at=0.0, scope="other")
        assert event.scope == "other"

    def test_per_domain_seq_counters(self):
        # A burst of wall heartbeats must never perturb sim numbering —
        # that independence is what keeps the sim channel byte-identical
        # whether or not --progress was on.
        log = EventLog()
        log.emit("a", at=0.0)
        log.emit("hb", at=0.1, domain=WALL)
        log.emit("hb", at=0.2, domain=WALL)
        log.emit("b", at=1.0)
        assert [e.seq for e in log.sim_events()] == [0, 1]
        assert [e.seq for e in log.wall_events()] == [0, 1]

    def test_rejects_bad_domain_name_and_attrs(self):
        log = EventLog()
        with pytest.raises(EventSchemaError, match="domain"):
            log.emit("x", at=0.0, domain="cpu")
        with pytest.raises(EventSchemaError, match="name"):
            log.emit("", at=0.0)
        with pytest.raises(EventSchemaError, match="scalar"):
            log.emit("x", at=0.0, payload=[1, 2])

    def test_capacity_drops_and_counts(self):
        log = EventLog(capacity=2)
        seen = []
        log.subscribe(seen.append)
        for index in range(5):
            log.emit("e", at=float(index))
        assert len(log) == 2
        assert log.dropped == 3
        # Listeners see every emission, including dropped ones: the
        # progress renderer must not starve at the capacity bound.
        assert len(seen) == 5
        # seq keeps counting through drops.
        assert seen[-1].seq == 4

    def test_absorb_renumbers_per_domain(self):
        shard_a = EventLog(scope="a")
        shard_a.emit("shard.started", at=1.0)
        shard_a.emit("hb", at=0.1, domain=WALL)
        shard_b = EventLog(scope="b")
        shard_b.emit("shard.started", at=2.0)
        merged = EventLog()
        merged.emit("shard.planned", at=0.0)
        merged.absorb(shard_a.events(), dropped=shard_a.dropped)
        merged.absorb(shard_b.events(), dropped=shard_b.dropped)
        assert [e.seq for e in merged.sim_events()] == [0, 1, 2]
        assert [e.scope for e in merged.sim_events()] == ["", "a", "b"]
        assert [e.seq for e in merged.wall_events()] == [0]

    def test_absorb_accumulates_dropped(self):
        merged = EventLog()
        merged.absorb((), dropped=7)
        merged.absorb((), dropped=2)
        assert merged.dropped == 9

    def test_default_shard_capacity_is_bounded(self):
        assert DEFAULT_SHARD_EVENT_CAPACITY > 0


class TestNullEvents:
    def test_emit_stores_nothing(self):
        assert NULL_EVENTS.emit("anything", at=0.0, junk=object()) is None
        assert len(NULL_EVENTS) == 0
        NULL_EVENTS.absorb([Event(seq=0, domain=SIM, name="x", at=0.0)])
        assert len(NULL_EVENTS) == 0

    def test_subscribe_refused(self):
        with pytest.raises(EventSchemaError):
            NULL_EVENTS.subscribe(lambda event: None)


class TestNdjsonExport:
    def test_round_trip_validates(self):
        log = EventLog(scope="s")
        log.emit("shard.started", at=1.5, attempt=0)
        log.emit("runner.heartbeat", at=0.2, domain=WALL, rss_bytes=123)
        text = dumps_events_jsonl(log.events())
        assert text.endswith("\n")
        assert validate_events_jsonl(text) == 2
        first = json.loads(text.splitlines()[0])
        assert list(first) == sorted(first)  # sorted keys
        assert validate_event_dict(first) == []

    def test_empty_log_exports_empty_text(self):
        assert dumps_events_jsonl(()) == ""
        assert validate_events_jsonl("") == 0

    def test_strict_json_refuses_nan(self):
        log = EventLog()
        log.emit("x", at=float("nan"))
        text = dumps_events_jsonl(log.events())
        assert "NaN" not in text
        assert json.loads(text.splitlines()[0])["at"] is None

    @pytest.mark.parametrize("line, match", [
        ("not json", "not valid JSON"),
        ("[1, 2]", "must be an object"),
        ('{"schema": "other"}', "schema"),
        ('{"schema": "repro-events/1", "seq": -1, "domain": "sim", '
         '"name": "x", "at": 0, "scope": "", "attrs": {}}', "seq"),
        ('{"schema": "repro-events/1", "seq": 0, "domain": "cpu", '
         '"name": "x", "at": 0, "scope": "", "attrs": {}}', "domain"),
        ('{"schema": "repro-events/1", "seq": 0, "domain": "sim", '
         '"name": "", "at": 0, "scope": "", "attrs": {}}', "name"),
        ('{"schema": "repro-events/1", "seq": 0, "domain": "sim", '
         '"name": "x", "at": "soon", "scope": "", "attrs": {}}', "at"),
        ('{"schema": "repro-events/1", "seq": 0, "domain": "sim", '
         '"name": "x", "at": 0, "scope": "", "attrs": {"k": [1]}}',
         "attrs"),
    ])
    def test_validate_rejects_bad_lines(self, line, match):
        with pytest.raises(EventSchemaError, match=match):
            validate_events_jsonl(line + "\n")

    def test_validator_names_offending_line(self):
        log = EventLog()
        log.emit("fine", at=0.0)
        text = dumps_events_jsonl(log.events()) + "broken\n"
        with pytest.raises(EventSchemaError, match="line 2"):
            validate_events_jsonl(text)
