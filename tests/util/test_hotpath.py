"""Tests for the reference-mode switch and the hashing hot paths.

``repro.util.hotpath`` is the single switch every optimized hot path
dispatches on; these tests pin its semantics, then pin the optimized
hashing implementations (interned SHA-256 prefix states) to their
single-shot reference counterparts.
"""

import pytest

from repro.util import hotpath
from repro.util import hashing
from repro.util.hashing import (
    anonymize_ip,
    anonymize_ip_reference,
    stable_hash,
    stable_hash_reference,
)


class TestHotpathSwitch:
    def test_default_is_optimized(self):
        assert hotpath.reference_mode() is False

    def test_set_returns_previous(self):
        previous = hotpath.set_reference_mode(True)
        try:
            assert previous is False
            assert hotpath.reference_mode() is True
            assert hotpath.set_reference_mode(False) is True
        finally:
            hotpath.set_reference_mode(False)

    def test_context_manager_restores(self):
        assert not hotpath.reference_mode()
        with hotpath.reference_hotpaths():
            assert hotpath.reference_mode()
            with hotpath.reference_hotpaths(False):
                assert not hotpath.reference_mode()
            assert hotpath.reference_mode()
        assert not hotpath.reference_mode()

    def test_context_manager_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with hotpath.reference_hotpaths():
                raise RuntimeError("boom")
        assert not hotpath.reference_mode()


class TestStableHashEquivalence:
    CASES = [
        ("single",),
        ("seed", "scope"),
        ("seed", "scope", "42"),
        ("2016", "shard-3", "impression", "1234567"),
        ("", "", ""),
        ("ünïcode", "τοπίο", "💡"),
        ("embedded\x1fseparator", "suffix"),
    ]

    @pytest.mark.parametrize("parts", CASES)
    @pytest.mark.parametrize("bits", [8, 32, 64, 128, 256])
    def test_matches_reference(self, parts, bits):
        assert stable_hash(*parts, bits=bits) == \
            stable_hash_reference(*parts, bits=bits)

    def test_shared_prefix_calls_stay_independent(self):
        # Many calls sharing a prefix reuse one interned hasher state;
        # each must still hash as if computed from scratch.
        for index in range(100):
            suffix = str(index)
            assert stable_hash("seed", "scope", suffix) == \
                stable_hash_reference("seed", "scope", suffix)

    @pytest.mark.parametrize("bits", [0, -8, 7, 257, 264])
    def test_invalid_bits_rejected_in_both_modes(self, bits):
        with pytest.raises(ValueError):
            stable_hash("a", "b", bits=bits)
        with pytest.raises(ValueError):
            stable_hash_reference("a", "b", bits=bits)

    def test_reference_mode_matches(self):
        with hotpath.reference_hotpaths():
            assert stable_hash("a", "b", "c") == \
                stable_hash_reference("a", "b", "c")

    def test_prefix_table_clears_on_overflow(self, monkeypatch):
        monkeypatch.setattr(hashing, "_MAX_INTERNED", 8)
        hashing._PREFIX_STATES.clear()
        for index in range(20):
            prefix = f"prefix-{index}"
            assert stable_hash(prefix, "x") == \
                stable_hash_reference(prefix, "x")
        assert len(hashing._PREFIX_STATES) <= 8


class TestAnonymizeIpEquivalence:
    @pytest.mark.parametrize("ip", ["1.2.3.4", "255.255.255.255",
                                    "10.0.0.1", "2.128.77.3"])
    @pytest.mark.parametrize("salt", ["", "adaudit", "Football-010",
                                      "salt|with|pipes"])
    def test_matches_reference(self, ip, salt):
        assert anonymize_ip(ip, salt=salt) == \
            anonymize_ip_reference(ip, salt=salt)

    def test_empty_ip_rejected_in_both_modes(self):
        with pytest.raises(ValueError):
            anonymize_ip("", salt="s")
        with pytest.raises(ValueError):
            anonymize_ip_reference("", salt="s")

    def test_distinct_salts_unlink(self):
        assert anonymize_ip("1.2.3.4", salt="a") != \
            anonymize_ip("1.2.3.4", salt="b")

    def test_salt_table_clears_on_overflow(self, monkeypatch):
        monkeypatch.setattr(hashing, "_MAX_INTERNED", 4)
        hashing._SALT_STATES.clear()
        for index in range(12):
            salt = f"salt-{index}"
            assert anonymize_ip("9.8.7.6", salt=salt) == \
                anonymize_ip_reference("9.8.7.6", salt=salt)
        assert len(hashing._SALT_STATES) <= 4
