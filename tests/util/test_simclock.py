"""Tests for repro.util.simclock."""

import pytest

from repro.util.simclock import SimClock


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(100.0).now() == 100.0

    def test_advance_moves_forward(self):
        clock = SimClock(10.0)
        clock.advance(5.0)
        assert clock.now() == 15.0

    def test_advance_returns_new_time(self):
        assert SimClock(0.0).advance(3.0) == 3.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            SimClock(0.0).advance(-1.0)

    def test_advance_to_jumps_forward(self):
        clock = SimClock(0.0)
        clock.advance_to(50.0)
        assert clock.now() == 50.0

    def test_advance_to_is_noop_when_behind(self):
        clock = SimClock(100.0)
        clock.advance_to(10.0)
        assert clock.now() == 100.0

    def test_server_skew_applies_to_server_now(self):
        clock = SimClock(100.0, server_skew=2.5)
        assert clock.server_now() == 102.5
        assert clock.now() == 100.0

    def test_at_utc_matches_known_epoch(self):
        clock = SimClock.at_utc(1970, 1, 1)
        assert clock.now() == 0.0

    def test_at_utc_2016_campaign_start(self):
        clock = SimClock.at_utc(2016, 3, 29)
        assert clock.now() == 1459209600.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_isoformat_renders_utc(self):
        assert SimClock.at_utc(2016, 4, 2).isoformat().startswith("2016-04-02T00:00:00")
