"""Tests for repro.util.rng — deterministic named random streams."""

import random

import pytest

from repro.util.rng import CumulativeSampler, RngFactory, weighted_choice, zipf_weights


class TestRngFactory:
    def test_same_name_returns_same_stream(self):
        factory = RngFactory(seed=1)
        assert factory.stream("a") is factory.stream("a")

    def test_different_names_yield_independent_sequences(self):
        factory = RngFactory(seed=1)
        a = [factory.stream("a").random() for _ in range(5)]
        b = [factory.stream("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_reproduces_sequences(self):
        first = RngFactory(seed=42).stream("x").random()
        second = RngFactory(seed=42).stream("x").random()
        assert first == second

    def test_different_seeds_differ(self):
        assert RngFactory(1).stream("x").random() != RngFactory(2).stream("x").random()

    def test_draws_on_one_stream_do_not_perturb_another(self):
        factory_a = RngFactory(seed=7)
        factory_a.stream("noise").random()
        value_after_noise = factory_a.stream("signal").random()
        factory_b = RngFactory(seed=7)
        value_without_noise = factory_b.stream("signal").random()
        assert value_after_noise == value_without_noise

    def test_fork_is_deterministic_and_independent(self):
        base = RngFactory(seed=3)
        fork_value = base.fork("child").stream("s").random()
        assert fork_value == RngFactory(seed=3).fork("child").stream("s").random()
        assert fork_value != base.stream("s").random()


class TestZipfWeights:
    def test_first_rank_has_largest_weight(self):
        weights = zipf_weights(10)
        assert weights[0] == max(weights)

    def test_monotonically_decreasing(self):
        weights = zipf_weights(50, exponent=1.2)
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_exponent_zero_is_uniform(self):
        assert zipf_weights(5, exponent=0.0) == [1.0] * 5

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_rejects_negative_exponent(self):
        with pytest.raises(ValueError):
            zipf_weights(5, exponent=-1.0)


class TestWeightedChoice:
    def test_returns_only_positive_weight_item(self):
        rng = random.Random(0)
        for _ in range(20):
            assert weighted_choice(rng, ["a", "b"], [0.0, 1.0]) == "b"

    def test_rejects_empty_items(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), [], [])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_choice(random.Random(0), ["a"], [1.0, 2.0])


class TestCumulativeSampler:
    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            CumulativeSampler([])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValueError):
            CumulativeSampler([1.0, -0.5])

    def test_rejects_all_zero_weights(self):
        with pytest.raises(ValueError):
            CumulativeSampler([0.0, 0.0])

    def test_samples_respect_distribution(self):
        sampler = CumulativeSampler([8.0, 1.0, 1.0])
        rng = random.Random(123)
        counts = [0, 0, 0]
        for _ in range(5000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] > counts[1] + counts[2]

    def test_zero_weight_item_never_sampled(self):
        sampler = CumulativeSampler([1.0, 0.0, 1.0])
        rng = random.Random(5)
        assert all(sampler.sample(rng) != 1 for _ in range(2000))

    def test_len_matches_weights(self):
        assert len(CumulativeSampler([1, 2, 3])) == 3
