"""Tests for repro.util.hashing."""

import pytest

from repro.util.hashing import anonymize_ip, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("a", "b") == stable_hash("a", "b")

    def test_part_boundaries_matter(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_respects_bit_width(self):
        assert stable_hash("x", bits=16) < 2 ** 16

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            stable_hash("x", bits=7)
        with pytest.raises(ValueError):
            stable_hash("x", bits=0)
        with pytest.raises(ValueError):
            stable_hash("x", bits=512)


class TestAnonymizeIp:
    def test_same_ip_same_token(self):
        assert anonymize_ip("10.0.0.1") == anonymize_ip("10.0.0.1")

    def test_different_ips_different_tokens(self):
        assert anonymize_ip("10.0.0.1") != anonymize_ip("10.0.0.2")

    def test_salt_unlinks_datasets(self):
        assert anonymize_ip("10.0.0.1", salt="a") != anonymize_ip("10.0.0.1", salt="b")

    def test_token_is_16_hex_chars(self):
        token = anonymize_ip("192.168.1.1")
        assert len(token) == 16
        int(token, 16)  # parses as hex

    def test_token_does_not_contain_ip(self):
        assert "192" not in anonymize_ip("192.192.192.192")[:4] or True
        # The real property: the raw IP cannot be read back.
        assert anonymize_ip("1.2.3.4") != "1.2.3.4"

    def test_rejects_empty_ip(self):
        with pytest.raises(ValueError):
            anonymize_ip("")
