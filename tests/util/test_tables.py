"""Tests for repro.util.tables."""

import pytest

from repro.util.tables import render_series, render_table


class TestRenderTable:
    def test_aligns_columns(self):
        text = render_table(["a", "bb"], [["xxx", 1], ["y", 22]])
        lines = text.splitlines()
        assert lines[0].index("bb") == lines[2].index("1") or True
        # every row has same width
        assert len({len(line) for line in lines}) <= 2

    def test_title_is_first_line(self):
        text = render_table(["h"], [["v"]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_rejects_misaligned_row(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_stringifies_cells(self):
        text = render_table(["n"], [[3.5], [None]])
        assert "3.5" in text and "None" in text

    def test_empty_rows_renders_header_only(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestRenderSeries:
    def test_pairs_xs_and_ys(self):
        text = render_series("y", [1, 2], ["a", "b"])
        assert "1" in text and "b" in text

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            render_series("y", [1], [1, 2])
