"""Tests for repro.util.stats."""

import pytest

from repro.util.stats import (
    Fraction2,
    bucket_index,
    cumulative_fractions,
    histogram,
    log_buckets,
    median,
    percentile,
)


class TestMedian:
    def test_odd_length(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even_length_averages_middle(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_single_value(self):
        assert median([7.0]) == 7.0

    def test_does_not_mutate_input(self):
        values = [3.0, 1.0, 2.0]
        median(values)
        assert values == [3.0, 1.0, 2.0]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            median([])


class TestPercentile:
    def test_p0_is_min_p100_is_max(self):
        values = [5.0, 1.0, 9.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 9.0

    def test_p50_matches_median(self):
        values = [1.0, 2.0, 3.0, 10.0]
        assert percentile(values, 50) == median(values)

    def test_interpolates_between_points(self):
        assert percentile([0.0, 10.0], 25) == 2.5

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestLogBuckets:
    def test_default_edges_cover_alexa_range(self):
        edges = log_buckets(10_000_000)
        assert edges == [100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000]

    def test_last_edge_covers_max_value(self):
        edges = log_buckets(1_500_000)
        assert edges[-1] >= 1_500_000

    def test_small_max_gives_single_bucket(self):
        assert log_buckets(50) == [100]

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            log_buckets(0)
        with pytest.raises(ValueError):
            log_buckets(100, base=1)
        with pytest.raises(ValueError):
            log_buckets(100, first_edge=0)


class TestBucketIndex:
    def test_boundary_values_fall_in_lower_bucket(self):
        edges = [100, 1000, 10000]
        assert bucket_index(100, edges) == 0
        assert bucket_index(101, edges) == 1
        assert bucket_index(1000, edges) == 1

    def test_values_beyond_last_edge_raise(self):
        with pytest.raises(ValueError, match="exceeds the last bucket edge"):
            bucket_index(999_999, [100, 1000])

    def test_clamp_folds_overflow_into_last_bucket(self):
        assert bucket_index(999_999, [100, 1000], clamp=True) == 1

    def test_rejects_rank_below_one(self):
        with pytest.raises(ValueError):
            bucket_index(0, [100])

    def test_rejects_empty_edges(self):
        with pytest.raises(ValueError):
            bucket_index(1, [])


class TestHistogram:
    def test_counts_sum_to_input_size(self):
        edges = [10, 100, 1000]
        counts = histogram([1, 5, 50, 500, 1000], edges)
        assert sum(counts) == 5

    def test_bucket_placement(self):
        counts = histogram([1, 2, 20, 200], [10, 100, 1000])
        assert counts == [2, 1, 1]

    def test_out_of_range_value_raises(self):
        with pytest.raises(ValueError, match="exceeds the last bucket edge"):
            histogram([1, 5000], [10, 100, 1000])

    def test_out_of_range_value_clamps_when_asked(self):
        counts = histogram([1, 5000], [10, 100, 1000], clamp=True)
        assert counts == [1, 0, 1]


class TestCumulativeFractions:
    def test_last_is_one(self):
        assert cumulative_fractions([1, 2, 3])[-1] == pytest.approx(1.0)

    def test_monotone_nondecreasing(self):
        fractions = cumulative_fractions([5, 0, 3, 2])
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))

    def test_all_zero_counts(self):
        assert cumulative_fractions([0, 0]) == [0.0, 0.0]


class TestFraction2:
    def test_pct_and_str(self):
        fraction = Fraction2(57, 100)
        assert fraction.pct == pytest.approx(57.0)
        assert str(fraction) == "57.00 %"

    def test_zero_denominator_is_zero(self):
        assert Fraction2(0, 0).value == 0.0

    def test_rejects_numerator_above_denominator(self):
        with pytest.raises(ValueError):
            Fraction2(2, 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Fraction2(-1, 1)

    def test_equality_and_hash(self):
        assert Fraction2(1, 2) == Fraction2(1, 2)
        assert hash(Fraction2(1, 2)) == hash(Fraction2(1, 2))
        assert Fraction2(1, 2) != Fraction2(2, 4)
