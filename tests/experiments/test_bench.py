"""Tests for the ``repro bench`` harness and its BENCH.json schema."""

import json

import pytest

from repro.experiments import bench
from repro.experiments.bench import (
    BENCH_SCHEMA,
    BenchSchemaError,
    SCALE_PRESETS,
    dumps_bench,
    mask_microbenchmark,
    resolve_scale,
    run_probe,
    validate_bench_document,
    write_bench,
)


def minimal_run(mode="serial", jobs=1, reference=False):
    row = {
        "mode": mode,
        "jobs": jobs,
        "reference": reference,
        "wall_seconds": 1.5,
        "cold_start_seconds": 0.2,
        "warm_wall_seconds": 1.3,
        "pageviews": 100,
        "delivered": 40,
        "logged": 38,
        "pageviews_per_second": 66.7,
        "impressions_per_second": 26.7,
        "peak_rss_bytes": 40 << 20,
        "peak_rss_self_bytes": 40 << 20,
        "peak_rss_children_bytes": 36 << 20,
        "memory_watermarks": {
            "simulate": {"spans": 1, "rss_peak_bytes": 30 << 20,
                         "rss_delta_bytes": 5 << 20,
                         "tracemalloc_peak_bytes": 0},
        },
        "tracemalloc": False,
        "stage_wall_seconds": {
            "shard.wall_seconds": {"count": 4, "sum_seconds": 1.2,
                                   "mean_seconds": 0.3},
        },
    }
    if mode == "serial":
        row["store_memory"] = {
            "impressions": 38,
            "columnar_bytes": 4_000,
            "reference_bytes": 20_000,
            "columnar_bytes_per_impression": 105.3,
            "reference_bytes_per_impression": 526.3,
            "reference_ratio": 5.0,
        }
        row["store_bytes_per_impression"] = 105.3
    return row


def minimal_document():
    return {
        "schema": BENCH_SCHEMA,
        "created_unix": 1_700_000_000.0,
        "python": "3.11.0",
        "platform": "linux",
        "seed": 2016,
        "scale": 0.01,
        "jobs": [1, 2],
        "shard_slices": 4,
        "runs": [minimal_run("serial"),
                 minimal_run("parallel", jobs=2),
                 minimal_run("reference-serial", reference=True)],
        "sweep": [{"jobs": 2, "end_to_end_speedup": 1.8,
                   "warm_speedup": 1.9}],
        "comparison": {"end_to_end_speedup": 1.4,
                       "impressions_per_second_gain": 1.4},
        "micro": {"mask_xor_64kib": {
            "payload_bytes": 65536,
            "optimized_seconds_per_op": 2e-4,
            "reference_seconds_per_op": 5e-3,
            "optimized_mib_per_second": 320.0,
            "reference_mib_per_second": 12.5,
            "speedup": 25.0,
        }},
    }


class TestResolveScale:
    @pytest.mark.parametrize("name", sorted(SCALE_PRESETS))
    def test_presets(self, name):
        assert resolve_scale(name) == SCALE_PRESETS[name]

    def test_float_passthrough(self):
        assert resolve_scale("0.125") == 0.125

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="tiny"):
            resolve_scale("gigantic")

    def test_large_presets_reach_paper_volumes(self):
        # ``large``/``huge`` exist to hit the 10⁶–10⁷-pageview range the
        # paper's methodology targets; keep them ordered and distinct.
        assert SCALE_PRESETS["medium"] < SCALE_PRESETS["large"] \
            < SCALE_PRESETS["huge"]


class TestSchemaValidation:
    def test_minimal_document_valid(self):
        validate_bench_document(minimal_document())

    def test_dumps_is_strict_sorted_json(self):
        text = dumps_bench(minimal_document())
        assert text.endswith("\n")
        parsed = json.loads(text)
        assert parsed["schema"] == BENCH_SCHEMA
        assert list(parsed) == sorted(parsed)

    def test_comparison_is_optional(self):
        document = minimal_document()
        del document["comparison"]
        validate_bench_document(document)

    @pytest.mark.parametrize("mutate, message", [
        (lambda d: d.update(schema="bench/0"), "schema"),
        (lambda d: d.pop("runs"), "runs"),
        (lambda d: d.update(runs=[]), "runs"),
        (lambda d: d.update(scale=0.0), "scale"),
        (lambda d: d.update(jobs=2), "jobs"),
        (lambda d: d.update(jobs=[]), "jobs"),
        (lambda d: d.update(jobs=[2, 1]), "jobs"),
        (lambda d: d.pop("micro"), "micro"),
        (lambda d: d["runs"][0].update(mode="warp"), "mode"),
        (lambda d: d["runs"][0].update(wall_seconds=0.0), "wall_seconds"),
        (lambda d: d["runs"][0].pop("cold_start_seconds"), "cold_start"),
        (lambda d: d["runs"][0].update(warm_wall_seconds=0.0), "warm_wall"),
        (lambda d: d["sweep"][0].update(jobs=8), "matching parallel"),
        (lambda d: d["sweep"][0].update(warm_speedup=0.0), "warm_speedup"),
        (lambda d: d["runs"].append(minimal_run("parallel", jobs=2)),
         "distinct jobs"),
        (lambda d: d["runs"][0].update(pageviews=-1), "pageviews"),
        (lambda d: d["runs"][0].update(pageviews=True), "pageviews"),
        (lambda d: d["runs"][0].pop("stage_wall_seconds"), "stage"),
        (lambda d: d["runs"][0].pop("peak_rss_self_bytes"),
         "peak_rss_self_bytes"),
        (lambda d: d["runs"][0].update(peak_rss_children_bytes=-1),
         "peak_rss_children_bytes"),
        (lambda d: d["runs"][0].pop("memory_watermarks"),
         "memory_watermarks"),
        (lambda d: d["runs"][0].update(memory_watermarks={"merge": 3}),
         "memory_watermarks"),
        (lambda d: d["runs"][0].update(
            memory_watermarks={"merge": {"spans": "one"}}),
         "memory_watermarks"),
        (lambda d: d["runs"][0].pop("tracemalloc"), "tracemalloc"),
        (lambda d: d["runs"][0].update(tracemalloc=1), "tracemalloc"),
        (lambda d: d["runs"][0].pop("store_memory"), "store_memory"),
        (lambda d: d["runs"][0].update(store_memory=7), "store_memory"),
        (lambda d: d["runs"][0]["store_memory"].pop("columnar_bytes"),
         "columnar_bytes"),
        (lambda d: d["runs"][0]["store_memory"].update(reference_ratio=-1),
         "reference_ratio"),
        (lambda d: d["runs"][0].pop("store_bytes_per_impression"),
         "store_bytes_per_impression"),
        (lambda d: d["micro"]["mask_xor_64kib"].update(speedup=0.0),
         "speedup"),
    ])
    def test_violations_rejected(self, mutate, message):
        document = minimal_document()
        mutate(document)
        with pytest.raises(BenchSchemaError, match=message):
            validate_bench_document(document)

    def test_faults_field_optional_but_must_be_named(self):
        # Committed BENCH.json files predate the fault layer, so the
        # field is optional — but when present it must name the plan.
        document = minimal_document()
        validate_bench_document(document)          # no faults fields
        document["faults"] = "flaky"
        document["runs"][0]["faults"] = "flaky"
        validate_bench_document(document)
        document["faults"] = ""
        with pytest.raises(BenchSchemaError, match="faults"):
            validate_bench_document(document)
        document["faults"] = "flaky"
        document["runs"][0]["faults"] = 7
        with pytest.raises(BenchSchemaError, match="faults"):
            validate_bench_document(document)

    def test_two_serial_runs_rejected(self):
        document = minimal_document()
        document["runs"].append(minimal_run("serial"))
        with pytest.raises(BenchSchemaError, match="exactly one serial"):
            validate_bench_document(document)

    def test_comparison_without_reference_run_rejected(self):
        document = minimal_document()
        document["runs"] = [minimal_run("serial")]
        del document["sweep"]
        with pytest.raises(BenchSchemaError, match="reference-serial"):
            validate_bench_document(document)

    def test_sweep_is_optional(self):
        document = minimal_document()
        del document["sweep"]
        validate_bench_document(document)

    def test_write_bench_roundtrips(self, tmp_path):
        path = write_bench(minimal_document(), tmp_path / "BENCH.json")
        validate_bench_document(json.loads(path.read_text()))


class TestMaskMicrobenchmark:
    def test_reports_consistent_speedup(self):
        result = mask_microbenchmark(payload_bytes=4096)
        assert result["payload_bytes"] == 4096
        assert result["speedup"] == pytest.approx(
            result["reference_seconds_per_op"]
            / result["optimized_seconds_per_op"])
        assert result["speedup"] > 1.0


class TestProbesAndDocument:
    def test_in_process_probe_shape(self):
        row = run_probe(seed=2016, scale=0.004, jobs=1)
        document = minimal_document()
        document["runs"] = [row]
        document["jobs"] = [1]
        document["scale"] = 0.004
        del document["comparison"]
        del document["sweep"]
        validate_bench_document(document)
        assert row["mode"] == "serial"
        assert row["pageviews"] > 0
        assert row["cold_start_seconds"] >= 0.0
        assert row["warm_wall_seconds"] > 0.0
        assert row["wall_seconds"] == pytest.approx(
            row["cold_start_seconds"] + row["warm_wall_seconds"])
        assert "shard.wall_seconds" in row["stage_wall_seconds"]
        assert row["peak_rss_bytes"] == max(row["peak_rss_self_bytes"],
                                            row["peak_rss_children_bytes"])
        assert row["tracemalloc"] is False
        assert {"simulate", "merge", "enrich",
                "world_build"} <= set(row["memory_watermarks"])
        memory = row["store_memory"]
        assert memory["impressions"] == row["logged"]
        assert memory["columnar_bytes"] > 0
        assert memory["reference_bytes"] > memory["columnar_bytes"]
        assert row["store_bytes_per_impression"] == pytest.approx(
            memory["columnar_bytes_per_impression"])

    def test_reference_probe_must_be_serial(self):
        with pytest.raises(ValueError):
            run_probe(seed=2016, scale=0.004, jobs=2, reference=True)

    def test_normalize_jobs(self):
        assert bench.normalize_jobs(2) == (1, 2)
        assert bench.normalize_jobs([4, 2, 1, 2]) == (1, 2, 4)
        with pytest.raises(ValueError):
            bench.normalize_jobs([])
        with pytest.raises(ValueError):
            bench.normalize_jobs([0])
        with pytest.raises(ValueError):
            bench.normalize_jobs([True])

    def test_run_bench_builds_valid_document(self):
        messages = []
        document = bench.run_bench(
            seed=2016, scale=0.004, jobs=[1, 2, 4], include_baseline=True,
            subprocess_probes=False, progress=messages.append)
        validate_bench_document(document)
        modes = [run["mode"] for run in document["runs"]]
        assert modes == ["serial", "parallel", "parallel",
                         "reference-serial"]
        assert document["jobs"] == [1, 2, 4]
        assert [entry["jobs"] for entry in document["sweep"]] == [2, 4]
        for entry in document["sweep"]:
            assert entry["end_to_end_speedup"] > 0
            assert entry["warm_speedup"] > 0
        assert document["comparison"]["end_to_end_speedup"] > 0
        assert document["micro"]["mask_xor_64kib"]["speedup"] > 1.0
        assert messages  # progress callback was exercised
