"""Tests for repro.experiments.tables / figures over the miniature run."""

import pytest

from repro.experiments import figures, tables


class TestTable1:
    def test_all_rows_present(self, small_result):
        headers, rows = tables.table1(small_result)
        assert len(rows) == 8
        assert headers[0] == "Campaign ID"

    def test_dates_match_paper(self, small_result):
        _, rows = tables.table1(small_result)
        by_id = {row[0]: row for row in rows}
        assert by_id["Research-010"][3] == "29 March"
        assert by_id["Research-010"][4] == "31 March"
        assert by_id["General-005"][3] == "15 February"
        assert by_id["Football-010"][4] == "03 April"

    def test_counts_match_dataset(self, small_result):
        _, rows = tables.table1(small_result)
        by_id = {row[0]: row for row in rows}
        assert by_id["Russia"][1] == small_result.logged("Russia")

    def test_render_is_nonempty(self, small_result):
        assert "Table 1" in tables.render_table1(small_result)


class TestTable2:
    def test_rows_and_render(self, small_result):
        headers, rows = tables.table2(small_result)
        assert len(rows) == 8
        assert "%" in str(rows[0][1])
        assert "Table 2" in tables.render_table2(small_result)

    def test_vendor_dominates_audit_for_football(self, small_result):
        _, rows = tables.table2(small_result)
        by_id = {row[0]: row for row in rows}
        audit = float(by_id["Football-010"][1].split()[0])
        vendor = float(by_id["Football-010"][2].split()[0])
        assert vendor > audit


class TestTable3:
    def test_values_in_plausible_band(self, small_result):
        _, rows = tables.table3(small_result)
        for row in rows:
            value = float(str(row[1]).split()[0])
            assert 30.0 < value < 95.0

    def test_football_tops_research(self, small_result):
        _, rows = tables.table3(small_result)
        by_id = {row[0]: float(str(row[1]).split()[0]) for row in rows}
        assert by_id["Football-010"] > by_id["Research-020"]


class TestTable4:
    def test_football_most_exposed(self, small_result):
        _, rows = tables.table4(small_result)
        by_id = {row[0]: float(str(row[2]).split()[0]) for row in rows}
        assert by_id["Football-030"] > by_id["General-010"]

    def test_render(self, small_result):
        assert "Table 4" in tables.render_table4(small_result)


class TestFigure1:
    def test_vendor_misses_majority_region_exists(self, small_result):
        figure = figures.figure1(small_result)
        assert figure.aggregate.audit_only > 0
        assert figure.aggregate.both > 0
        assert figure.aggregate.vendor_only > 0
        assert figure.spotlight_id == "General-005"

    def test_render(self, small_result):
        text = figures.figure1(small_result).render()
        assert "Figure 1" in text
        assert "General-005" in text


class TestFigure2:
    def test_five_series(self, small_result):
        figure = figures.figure2(small_result)
        assert len(figure.distributions) == 5
        assert figure.bucket_labels

    def test_fractions_normalised(self, small_result):
        figure = figures.figure2(small_result)
        for distribution in figure.distributions:
            assert sum(distribution.impression_fractions) == pytest.approx(
                1.0, abs=1e-6)

    def test_render(self, small_result):
        text = figures.figure2(small_result).render()
        assert "Figure 2" in text
        assert "Russia" in text


class TestFigure3:
    def test_scatter_points_exist(self, small_result):
        figure = figures.figure3(small_result)
        assert figure.points
        assert figure.users_over_10 >= 0

    def test_render(self, small_result):
        text = figures.figure3(small_result).render()
        assert "Figure 3" in text
        assert ">10 impressions" in text
