"""Tests for the markdown run report (``experiments.report``)."""

import dataclasses

import pytest

from repro.experiments.report import _md_table, render_run_report
from repro.obs.events import EventLog


@pytest.fixture(scope="module")
def report_text(small_result):
    return render_run_report(small_result)


class TestMdTable:
    def test_shape(self):
        text = _md_table(["a", "b"], [[1, "x"], [2, "y"]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| 1 | x |"
        assert len(lines) == 4


class TestRenderRunReport:
    def test_all_sections_present(self, report_text):
        for heading in ("# Repro run report",
                        "## Parameters",
                        "## Headline statistics",
                        "## Vendor-reported delivery",
                        "## Coverage reconciliation",
                        "## Simulation counters",
                        "## Stage wall timings",
                        "## Memory watermarks",
                        "## Event journal"):
            assert heading in report_text, heading

    def test_parameters_reflect_config(self, small_result, report_text):
        assert f"| seed | {small_result.config.seed} |" in report_text
        assert f"| scale | {small_result.config.scale} |" in report_text

    def test_coverage_reconciles(self, report_text):
        assert "| reconciles | yes |" in report_text

    def test_event_journal_summarised(self, report_text):
        # The runner always journals the sim channel, so the report sees
        # planned/started/merged rows plus the final reconciliation.
        assert "| sim | shard.planned |" in report_text
        assert "| sim | shard.merged |" in report_text
        assert "| sim | coverage.reconciled | 1 |" in report_text

    def test_audit_embedded_in_fenced_block(self, small_result):
        text = render_run_report(small_result, audit="AUDIT BODY\n")
        assert "## Audit report" in text
        assert "```\nAUDIT BODY\n```" in text

    def test_extra_memory_stage_merged(self, small_result):
        extra = {"audit": {"spans": 1, "rss_peak_bytes": 64 << 20,
                           "rss_delta_bytes": 1 << 20,
                           "tracemalloc_peak_bytes": 0}}
        text = render_run_report(small_result, extra_memory=extra)
        assert "| audit | 1 | 64.0 MiB | 1.0 MiB | off |" in text

    def test_empty_event_journal_message(self, small_result):
        bare = dataclasses.replace(small_result, events=EventLog())
        text = render_run_report(bare)
        assert "No events recorded (telemetry was off)." in text
