"""Tests for repro.experiments.config."""

import pytest

from repro.experiments.config import (
    CampaignPlan,
    ExperimentConfig,
    PeriodPlan,
    paper_experiment,
)


class TestPaperExperiment:
    def test_eight_campaigns_of_table1(self):
        config = paper_experiment()
        ids = [plan.spec.campaign_id for plan in config.campaigns]
        assert ids == ["Research-010", "Research-020", "Football-010",
                       "Football-030", "Russia", "USA", "General-005",
                       "General-010"]

    def test_table1_parameters(self):
        config = paper_experiment()
        russia = config.campaign("Russia").spec
        assert russia.cpm_eur == 0.01
        assert russia.target_countries == ("RU",)
        assert russia.keywords == ("Research",)
        general = config.campaign("General-005").spec
        assert general.keywords == ("Universities", "Research", "Telematics")

    def test_flight_dates_match_paper(self):
        config = paper_experiment()
        football = config.campaign("Football-010").spec
        assert football.duration_days == pytest.approx(2.0)
        general10 = config.campaign("General-010").spec
        assert general10.duration_days == pytest.approx(6.0)

    def test_impression_targets_match_paper(self):
        config = paper_experiment()
        assert config.campaign("Research-020").target_impressions == 42_399
        assert config.campaign("USA").target_impressions == 1_178

    def test_three_periods_cover_all_campaigns(self):
        config = paper_experiment()
        for plan in config.campaigns:
            covered = any(period.start_unix <= plan.spec.start_unix
                          and plan.spec.end_unix <= period.end_unix
                          for period in config.periods)
            assert covered, plan.spec.campaign_id

    def test_scale_shrinks_world_and_budgets(self):
        full = paper_experiment(scale=1.0)
        small = paper_experiment(scale=0.1)
        assert small.scaled_users_per_country < full.scaled_users_per_country
        assert small.campaign("Russia").spec.daily_budget_eur < \
            full.campaign("Russia").spec.daily_budget_eur
        assert small.campaign("Russia").target_impressions == \
            pytest.approx(410, abs=1)

    def test_unknown_campaign_raises(self):
        with pytest.raises(KeyError):
            paper_experiment().campaign("nope")


class TestValidation:
    def test_period_validation(self):
        with pytest.raises(ValueError):
            PeriodPlan(name="x", start_unix=10, end_unix=5, countries=("ES",))
        with pytest.raises(ValueError):
            PeriodPlan(name="x", start_unix=0, end_unix=5, countries=())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(publisher_count=10)

    def test_duplicate_campaign_ids_rejected(self):
        config = paper_experiment()
        with pytest.raises(ValueError):
            ExperimentConfig(campaigns=config.campaigns + (config.campaigns[0],))

    def test_campaign_plan_validation(self):
        config = paper_experiment()
        with pytest.raises(ValueError):
            CampaignPlan(spec=config.campaigns[0].spec, target_impressions=0)
