"""Tests for the compact shard wire format (``experiments.wire``).

The contract: ``unpack_shard_output(pack_shard_output(out))`` is value-
identical to ``out`` — every field, including the raw store column
payload, the trace set and the coverage ledger — while the packed blob
stays an order of magnitude smaller than a plain ``ShardOutput`` pickle.
A regression in either direction (lossy round-trip, or the wire format
quietly bloating back toward whole-object pickles) fails loudly here.
"""

import pickle

import pytest

from repro.experiments.config import paper_experiment
from repro.experiments.runner import build_world, plan_shards, run_shard
from repro.experiments.wire import (
    WIRE_VERSION,
    WireFormatError,
    pack_shard_output,
    unpack_shard_output,
)

#: The committed floor on wire-format compression vs. a plain pickle of
#: the same ``ShardOutput``.  Measured ~10x at these scales; 8x leaves
#: headroom for honest drift while still catching a format regression.
MIN_COMPRESSION = 8.0


@pytest.fixture(scope="module")
def wire_world():
    config = paper_experiment(seed=7, scale=0.02)
    return config, build_world(config)


class TestRoundTrip:
    def test_outputs_value_identical(self, wire_world):
        config, world = wire_world
        shards = plan_shards(config)
        for index in (0, len(shards) // 2, len(shards) - 1):
            out = run_shard(config, shards[index], world)
            back = unpack_shard_output(pack_shard_output(out), config, world)
            assert back == out

    def test_store_columns_value_identical(self, wire_world):
        # The store merge folds the shard's raw columns; the wire format
        # re-interns the store's string table through the frame-wide one,
        # so the payload must come back value-identical — and a store
        # rebuilt from it must serialise to byte-identical JSONL.
        from repro.collector.store import ImpressionStore

        config, world = wire_world
        shard = plan_shards(config)[0]
        out = run_shard(config, shard, world)
        back = unpack_shard_output(pack_shard_output(out), config, world)
        assert back.store_columns == out.store_columns
        original = ImpressionStore()
        original.absorb_columns(out.store_columns)
        rebuilt = ImpressionStore()
        rebuilt.absorb_columns(back.store_columns)
        assert rebuilt.dumps_jsonl() == original.dumps_jsonl()

    def test_traces_and_metrics_survive(self, wire_world):
        config, world = wire_world
        shard = plan_shards(config)[0]
        out = run_shard(config, shard, world)
        back = unpack_shard_output(pack_shard_output(out), config, world)
        assert back.traces == out.traces
        assert back.metrics == out.metrics
        assert back.coverage == out.coverage

    def test_events_survive(self, wire_world):
        # The telemetry journal crosses the wire with the shard (v2).
        config, world = wire_world
        shard = plan_shards(config)[0]
        out = run_shard(config, shard, world)
        back = unpack_shard_output(pack_shard_output(out), config, world)
        assert out.events  # at least shard.started
        assert back.events == out.events
        assert back.events_dropped == out.events_dropped

    def test_faulted_shard_round_trips(self):
        # Quarantine entries and loss accounting cross the wire too.
        from repro.faults.plan import FaultPlan

        config = paper_experiment(seed=7, scale=0.01,
                                  faults=FaultPlan.preset("flaky"))
        world = build_world(config)
        shard = plan_shards(config)[0]
        out = run_shard(config, shard, world)
        back = unpack_shard_output(pack_shard_output(out), config, world)
        assert back == out


class TestSizeBudget:
    def test_wire_is_an_order_of_magnitude_smaller(self, wire_world):
        config, world = wire_world
        shards = plan_shards(config)
        for index in (0, len(shards) - 1):
            out = run_shard(config, shards[index], world)
            plain = len(pickle.dumps(out, protocol=pickle.HIGHEST_PROTOCOL))
            wire = len(pack_shard_output(out))
            assert plain / wire >= MIN_COMPRESSION, (
                f"shard {index}: wire format compresses only "
                f"{plain / wire:.1f}x (pickle {plain} -> wire {wire}); "
                f"budget is {MIN_COMPRESSION}x")


class TestFraming:
    def test_unknown_version_rejected(self, wire_world):
        import zlib

        config, world = wire_world
        shard = plan_shards(config)[0]
        out = run_shard(config, shard, world)
        frame = pickle.loads(zlib.decompress(pack_shard_output(out)))
        bad = zlib.compress(pickle.dumps(
            (WIRE_VERSION + 1,) + tuple(frame[1:])))
        with pytest.raises(WireFormatError, match="version"):
            unpack_shard_output(bad, config, world)

    def test_garbage_rejected(self, wire_world):
        config, world = wire_world
        with pytest.raises(WireFormatError):
            unpack_shard_output(b"not a wire frame", config, world)
