"""Tests for repro.experiments.runner over a miniature world.

One small experiment run is shared by the whole module (and by the
tables/figures tests via the session fixture in tests/experiments/conftest).
"""

import pytest

from repro.adnetwork.reporting import ANONYMOUS_PLACEMENT


class TestRunnerOutputs:
    def test_every_campaign_delivered_and_logged(self, small_result):
        for campaign_id in small_result.dataset.campaign_ids:
            assert small_result.delivered(campaign_id) > 0
            assert small_result.logged(campaign_id) > 0

    def test_logging_loss_within_error_model(self, small_result):
        delivered = small_result.stats["delivered"]
        logged = small_result.stats["logged"]
        # Publisher blocking (~15 %) + browser/network losses: expect
        # roughly 70-95 % of delivered impressions to be logged.
        assert 0.65 * delivered < logged < 0.95 * delivered

    def test_vendor_reports_exist_for_all_campaigns(self, small_result):
        for campaign_id in small_result.dataset.campaign_ids:
            report = small_result.dataset.require_report(campaign_id)
            assert report.total_impressions == small_result.delivered(campaign_id)

    def test_dataset_is_enriched_and_anonymised(self, small_result):
        for record in small_result.dataset.store:
            assert record.ip == ""
            assert record.ip_token
            assert record.is_datacenter is not None

    def test_impressions_within_campaign_flights(self, small_result):
        for campaign_id in small_result.dataset.campaign_ids:
            campaign = small_result.dataset.campaigns[campaign_id]
            for record in small_result.dataset.records(campaign_id):
                assert campaign.start_unix <= record.timestamp \
                    <= campaign.end_unix + 3600

    def test_geo_targeting_respected(self, small_result):
        # Russia campaign records come only from RU-resolved IPs (humans)
        # or RU-located data centers (bots).
        for record in small_result.dataset.records("Russia"):
            assert record.country in ("RU",)

    def test_vendor_misses_publishers_the_audit_saw(self, small_result):
        audit_pubs = small_result.dataset.audit_publishers()
        vendor_pubs = small_result.dataset.vendor_publishers()
        assert len(audit_pubs - vendor_pubs) > 0

    def test_anonymous_inventory_aggregated(self, small_result):
        rows = [row for report in
                small_result.dataset.vendor_reports.values()
                for row in report.placements]
        names = {row.placement for row in rows}
        anonymous = {name for name in names if name == ANONYMOUS_PLACEMENT}
        # Anonymous sellers exist in the world, so the aggregate row shows up.
        assert anonymous

    def test_some_bot_traffic_survives_prefilter(self, small_result):
        dc_records = [record for record in small_result.dataset.store
                      if record.is_datacenter]
        assert dc_records
        assert small_result.server.prefiltered_pageviews > 0

    def test_deterministic_given_seed(self, small_config):
        from repro.experiments.runner import ExperimentRunner

        again = ExperimentRunner(small_config).run()
        first_ids = [record.url for record in again.dataset.store][:50]
        # Compare against a second fresh run with the same seed.
        third = ExperimentRunner(small_config).run()
        assert first_ids == [record.url for record in third.dataset.store][:50]

    def test_stats_accounting(self, small_result):
        stats = small_result.stats
        assert stats["pageviews"] > stats["delivered"] > stats["logged"] > 0
        assert stats["script_blocked_publisher"] > 0


class TestConversions:
    def test_conversion_log_is_anonymised(self, small_result):
        for event in small_result.conversions:
            assert event.ip == ""
            assert event.ip_token

    def test_conversions_only_from_clicked_campaigns(self, small_result):
        from repro.audit import ConversionAudit

        audit = ConversionAudit(small_result.dataset,
                                small_result.conversions)
        for row in audit.table():
            assert row.conversions <= max(row.clicks, len(
                small_result.conversions))

    def test_click_and_conversion_stats_recorded(self, small_result):
        assert "clicks" in small_result.stats
        assert "conversions" in small_result.stats
        assert small_result.stats["conversions"] <= small_result.stats["clicks"]
