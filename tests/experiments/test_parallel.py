"""Tests for the sharded parallel runner and the dataset lifecycle.

The determinism contract under test: at the same seed the parallel
runner's merged result is byte-for-byte identical to the serial runner's
— same impression store serialisation, same rendered tables and figures —
for any worker count.
"""

import dataclasses

import pytest

from repro.collector.store import StoreSealedError
from repro.experiments import figures, tables
from repro.experiments.config import ExperimentConfig, paper_experiment
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import (
    ExperimentRunner,
    plan_shards,
    run_paper_experiment,
)
from tests.collector.test_store import make_record


class TestShardPlan:
    def test_plan_covers_every_period_country_slice(self, small_config):
        shards = plan_shards(small_config)
        combos = {(shard.period_name, shard.country, shard.slice_index)
                  for shard in shards}
        assert len(combos) == len(shards)
        expected = 0
        for period in small_config.periods:
            countries = set(period.countries) \
                | {country for country, _ in period.fleets}
            expected += len(countries) * small_config.shard_slices
        assert len(shards) == expected

    def test_plan_is_independent_of_worker_count(self, small_config):
        # The plan is a function of the config alone; nothing about jobs
        # enters it, so output cannot depend on parallelism.
        assert plan_shards(small_config) == plan_shards(small_config)

    def test_slice_indices_are_complete(self, small_config):
        shards = plan_shards(small_config)
        for period in small_config.periods:
            for country in period.countries:
                indices = sorted(shard.slice_index for shard in shards
                                 if shard.period_name == period.name
                                 and shard.country == country)
                assert indices == list(range(small_config.shard_slices))

    def test_shard_slices_is_validated(self):
        with pytest.raises(ValueError):
            ExperimentConfig(seed=1, scale=0.01, shard_slices=0)


class TestParallelEquivalence:
    @pytest.fixture(scope="class")
    def parallel_result(self, small_config):
        return ParallelExperimentRunner(small_config, jobs=2).run()

    def test_stores_byte_identical(self, small_result, parallel_result):
        assert parallel_result.dataset.store.dumps_jsonl() \
            == small_result.dataset.store.dumps_jsonl()

    def test_tables_byte_identical(self, small_result, parallel_result):
        for render in (tables.render_table1, tables.render_table2,
                       tables.render_table3, tables.render_table4):
            assert render(parallel_result) == render(small_result)

    def test_figures_byte_identical(self, small_result, parallel_result):
        for figure in (figures.figure1, figures.figure2, figures.figure3):
            assert figure(parallel_result).render() \
                == figure(small_result).render()

    def test_stats_and_reports_identical(self, small_result, parallel_result):
        assert parallel_result.stats == small_result.stats
        assert parallel_result.dataset.vendor_reports \
            == small_result.dataset.vendor_reports
        assert parallel_result.conversions == small_result.conversions

    def test_trace_exports_byte_identical(self, small_result,
                                          parallel_result):
        # The tracing contract: the merged flight recorder folds shard
        # traces in canonical plan order, so both export formats must come
        # out byte-for-byte identical regardless of worker count.
        from repro.obs.traceio import dumps_chrome_trace, dumps_trace_jsonl

        serial_traces = small_result.recorder.traces()
        parallel_traces = parallel_result.recorder.traces()
        assert len(serial_traces) > 0
        assert dumps_chrome_trace(parallel_traces) \
            == dumps_chrome_trace(serial_traces)
        assert dumps_trace_jsonl(parallel_traces) \
            == dumps_trace_jsonl(serial_traces)

    def test_every_store_record_has_a_trace(self, small_result):
        recorder = small_result.recorder
        for record in small_result.dataset.store:
            trace = recorder.find_by_record(record.record_id)
            assert trace is not None
            names = {span.name for span in trace.spans}
            assert {"impression", "auction.decide", "creative.serve",
                    "beacon.render", "transport.connect", "collector.ingest",
                    "enrich.geo"} <= names

    def test_sim_metrics_identical_field_for_field(self, small_result,
                                                   parallel_result):
        # The metrics contract: every sim-domain counter, gauge and
        # histogram of the merged snapshot is a pure function of
        # (config, seed) — the worker count must not leak into any of it.
        serial = small_result.metrics.sim_only()
        parallel = parallel_result.metrics.sim_only()
        assert serial.counters == parallel.counters
        assert serial.gauges == parallel.gauges
        assert serial.histograms == parallel.histograms
        assert serial == parallel
        assert serial.to_json() == parallel.to_json()

    def test_sim_metrics_are_populated_and_consistent(self, small_result):
        snapshot = small_result.metrics
        assert snapshot.counter_value("shard.pageviews") \
            == small_result.stats["pageviews"]
        assert snapshot.counter_value("adserver.deliveries") \
            == small_result.stats["delivered"]
        assert snapshot.counter_value("collector.records_committed") \
            == small_result.collector.records_committed
        assert snapshot.counter_value("auction.our_wins") \
            == small_result.stats["delivered"]

    def test_metrics_json_is_strict(self, small_result):
        import json

        text = small_result.metrics.to_json()
        assert "Infinity" not in text
        assert "NaN" not in text
        parsed = json.loads(text)
        assert set(parsed) == {"sim", "wall"}

    def test_sim_events_byte_identical(self, small_result, parallel_result):
        # The event-journal contract: the sim channel is merged in
        # canonical plan order like metrics and traces, so its NDJSON
        # export is byte-identical whatever the worker count.
        from repro.obs.events import dumps_events_jsonl

        serial = dumps_events_jsonl(small_result.events.sim_events())
        parallel = dumps_events_jsonl(parallel_result.events.sim_events())
        assert len(small_result.events.sim_events()) > 0
        assert parallel == serial

    def test_event_journal_covers_the_whole_plan(self, small_result,
                                                 small_config):
        shard_count = len(plan_shards(small_config))
        names = [event.name for event in small_result.events.sim_events()]
        assert names.count("shard.planned") == shard_count
        assert names.count("shard.started") == shard_count
        assert names.count("shard.merged") == shard_count
        assert names.count("coverage.reconciled") == 1
        # Telemetry was off, so no heartbeats rode the wall channel.
        assert small_result.events.wall_events() == ()

    def test_jobs_must_be_positive(self, small_config):
        with pytest.raises(ValueError):
            ParallelExperimentRunner(small_config, jobs=0)


class TestJobsSweepEquivalence:
    """The ``--jobs`` sweep contract at the ``small`` bench preset.

    ``shard_slices=5`` gives 25 shards — divisible by neither 2 nor 4 —
    so every worker count leaves a ragged final wave and completion
    order differs run to run; the exports must not care.
    """

    @pytest.fixture(scope="class")
    def sweep_config(self):
        from repro.experiments.bench import SCALE_PRESETS

        config = dataclasses.replace(
            paper_experiment(seed=2016, scale=SCALE_PRESETS["small"]),
            shard_slices=5)
        shard_count = len(plan_shards(config))
        assert shard_count % 2 != 0 and shard_count % 4 != 0
        return config

    @pytest.fixture(scope="class")
    def sweep_results(self, sweep_config):
        return {jobs: ParallelExperimentRunner(sweep_config, jobs=jobs).run()
                for jobs in (1, 2, 4)}

    def test_stores_byte_identical(self, sweep_results):
        serial = sweep_results[1].dataset.store.dumps_jsonl()
        for jobs in (2, 4):
            assert sweep_results[jobs].dataset.store.dumps_jsonl() == serial

    def test_metrics_byte_identical(self, sweep_results):
        serial = sweep_results[1].metrics.sim_only().to_json()
        for jobs in (2, 4):
            assert sweep_results[jobs].metrics.sim_only().to_json() == serial

    def test_trace_exports_byte_identical(self, sweep_results):
        from repro.obs.traceio import dumps_chrome_trace, dumps_trace_jsonl

        serial = sweep_results[1].recorder.traces()
        assert len(serial) > 0
        for jobs in (2, 4):
            traces = sweep_results[jobs].recorder.traces()
            assert dumps_chrome_trace(traces) == dumps_chrome_trace(serial)
            assert dumps_trace_jsonl(traces) == dumps_trace_jsonl(serial)

    def test_coverage_exports_byte_identical(self, sweep_results):
        from repro.audit.coverage import coverage_to_json

        serial = coverage_to_json(sweep_results[1].coverage)
        for jobs in (2, 4):
            assert coverage_to_json(sweep_results[jobs].coverage) == serial

    def test_stats_and_reports_identical(self, sweep_results):
        for jobs in (2, 4):
            assert sweep_results[jobs].stats == sweep_results[1].stats
            assert sweep_results[jobs].dataset.vendor_reports \
                == sweep_results[1].dataset.vendor_reports

    def test_sim_events_byte_identical(self, sweep_results):
        from repro.obs.events import dumps_events_jsonl, validate_events_jsonl

        serial = dumps_events_jsonl(sweep_results[1].events.sim_events())
        assert validate_events_jsonl(serial) \
            == len(sweep_results[1].events.sim_events())
        for jobs in (2, 4):
            assert dumps_events_jsonl(
                sweep_results[jobs].events.sim_events()) == serial


class TestRunTelemetry:
    """Opt-in heartbeats: the wall channel rides along without touching
    the sim channel or any deterministic export."""

    @pytest.fixture(scope="class")
    def telemetry_config(self):
        return paper_experiment(seed=2016, scale=0.01)

    def test_serial_path_emits_heartbeats(self, telemetry_config):
        from repro.obs.events import EventLog

        events = EventLog()
        result = ParallelExperimentRunner(
            telemetry_config, jobs=1, events=events,
            heartbeat_interval=0.0).run()
        beats = result.events.wall_events()
        shard_count = len(plan_shards(telemetry_config))
        assert len(beats) == shard_count + 1  # one per shard + final
        final = beats[-1]
        assert final.name == "runner.heartbeat"
        assert final.attr("shards_done") == shard_count
        assert final.attr("shards_total") == shard_count
        assert final.attr("eta_seconds") == 0.0

    def test_pooled_path_emits_heartbeats(self, telemetry_config):
        from repro.obs.events import EventLog

        events = EventLog()
        result = ParallelExperimentRunner(
            telemetry_config, jobs=2, events=events,
            heartbeat_interval=0.0).run()
        beats = result.events.wall_events()
        assert beats
        final = beats[-1]
        assert final.attr("shards_done") == len(plan_shards(telemetry_config))
        assert final.attr("eta_seconds") == 0.0

    def test_heartbeats_leave_sim_channel_untouched(self, telemetry_config):
        from repro.obs.events import EventLog, dumps_events_jsonl

        plain = ParallelExperimentRunner(telemetry_config, jobs=1).run()
        with_telemetry = ParallelExperimentRunner(
            telemetry_config, jobs=1, events=EventLog(),
            heartbeat_interval=0.0).run()
        assert dumps_events_jsonl(with_telemetry.events.sim_events()) \
            == dumps_events_jsonl(plain.events.sim_events())
        assert with_telemetry.dataset.store.dumps_jsonl() \
            == plain.dataset.store.dumps_jsonl()
        assert with_telemetry.metrics.sim_only().to_json() \
            == plain.metrics.sim_only().to_json()


class TestParallelMemo:
    def test_jobs_is_not_part_of_the_memo_key(self):
        # Regression: the memo used to key on (seed, scale, jobs), so
        # jobs=1 and jobs=2 stored duplicate byte-identical results and
        # missed each other's cache.  The result is a pure function of
        # (seed, scale); jobs only changes how fast it arrives.
        from repro.experiments.parallel import run_paper_experiment_parallel

        run_paper_experiment_parallel.cache_clear()
        try:
            first = run_paper_experiment_parallel(seed=99, scale=0.01,
                                                  jobs=1)
            second = run_paper_experiment_parallel(seed=99, scale=0.01,
                                                   jobs=2)
            assert second is first
        finally:
            run_paper_experiment_parallel.cache_clear()


class TestBrokenPoolAttemptThreading:
    def test_fallback_resumes_at_recorded_attempt(self, monkeypatch):
        # Regression: the BrokenProcessPool fallback used to restart
        # unsettled shards at attempt 0, discarding the attempts a
        # crashed-then-resubmitted shard had already accrued — re-running
        # fault-plan crashes it had already paid for.
        from concurrent.futures.process import BrokenProcessPool

        from repro.experiments import parallel as parallel_module
        from repro.faults.plan import FaultPlan

        plain = paper_experiment(seed=2016, scale=0.01)
        scope = plan_shards(plain)[0].scope
        config = dataclasses.replace(
            plain, faults=FaultPlan(name="crashy", crash_scopes=(scope,),
                                    crash_attempts=3))

        real_run_shard = parallel_module.run_shard
        attempts_seen = []

        def counting_run_shard(cfg, shard, world, attempt=0):
            if shard.scope == scope:
                attempts_seen.append(attempt)
            return real_run_shard(cfg, shard, world, attempt=attempt)

        class FakeFuture:
            def __init__(self, fn, args):
                try:
                    self._value, self._error = fn(*args), None
                except Exception as error:
                    self._value, self._error = None, error

            def result(self):
                if self._error is not None:
                    raise self._error
                return self._value

        class FakePool:
            """Runs attempt-0 submissions inline; a resubmission (any
            attempt > 0) kills the pool, stranding the crashed shard."""

            def __init__(self, *args, **kwargs):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc_info):
                return False

            def submit(self, fn, cfg, shard, attempt):
                if attempt > 0:
                    raise BrokenProcessPool("simulated worker death")
                return FakeFuture(fn, (cfg, shard, attempt))

        monkeypatch.setattr(parallel_module, "run_shard", counting_run_shard)
        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor", FakePool)
        monkeypatch.setattr(
            parallel_module, "wait",
            lambda pending, return_when=None: (set(pending), set()))

        result = ParallelExperimentRunner(config, jobs=2,
                                          shard_retries=3).run()

        # Attempt 0 crashed in the pool; the attempt-1 resubmission broke
        # the pool; the inline fallback resumed at the recorded attempt 1
        # and ran 1 (crash), 2 (crash), 3 (success) — never a second 0.
        assert attempts_seen == [0, 1, 2, 3]
        assert result.coverage.lost_shards == ()

        baseline = ParallelExperimentRunner(config, jobs=1,
                                            shard_retries=3).run()
        assert result.dataset.store.dumps_jsonl() \
            == baseline.dataset.store.dumps_jsonl()
        assert result.stats == baseline.stats


class TestDeterminism:
    def test_same_seed_runs_produce_identical_stores(self):
        # Guards the explicit-rng contract end to end: any component
        # falling back to the global ``random`` module would re-roll the
        # wire-level masking and diverge between these two runs.
        config = paper_experiment(seed=31, scale=0.01)
        first = ExperimentRunner(config).run()
        second = ExperimentRunner(config).run()
        assert first.dataset.store.dumps_jsonl() \
            == second.dataset.store.dumps_jsonl()
        assert first.stats == second.stats


class TestDatasetLifecycle:
    def test_memoised_result_cannot_be_contaminated(self):
        # Regression: run_paper_experiment memoises the result object, and
        # its store used to be mutable — one caller's insert corrupted
        # every later caller's (supposedly identical) dataset.
        first = run_paper_experiment(seed=77, scale=0.01)
        size = len(first.dataset.store)
        with pytest.raises(StoreSealedError):
            first.dataset.store.insert(make_record(
                record_id=first.dataset.store.next_record_id(),
                ip="", ip_token="f" * 16))
        second = run_paper_experiment(seed=77, scale=0.01)
        assert second is first
        assert len(second.dataset.store) == size

    def test_session_fixture_store_is_sealed(self, small_result):
        assert small_result.dataset.store.sealed
