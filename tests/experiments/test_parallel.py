"""Tests for the sharded parallel runner and the dataset lifecycle.

The determinism contract under test: at the same seed the parallel
runner's merged result is byte-for-byte identical to the serial runner's
— same impression store serialisation, same rendered tables and figures —
for any worker count.
"""

import pytest

from repro.collector.store import StoreSealedError
from repro.experiments import figures, tables
from repro.experiments.config import ExperimentConfig, paper_experiment
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import (
    ExperimentRunner,
    plan_shards,
    run_paper_experiment,
)
from tests.collector.test_store import make_record


class TestShardPlan:
    def test_plan_covers_every_period_country_slice(self, small_config):
        shards = plan_shards(small_config)
        combos = {(shard.period_name, shard.country, shard.slice_index)
                  for shard in shards}
        assert len(combos) == len(shards)
        expected = 0
        for period in small_config.periods:
            countries = set(period.countries) \
                | {country for country, _ in period.fleets}
            expected += len(countries) * small_config.shard_slices
        assert len(shards) == expected

    def test_plan_is_independent_of_worker_count(self, small_config):
        # The plan is a function of the config alone; nothing about jobs
        # enters it, so output cannot depend on parallelism.
        assert plan_shards(small_config) == plan_shards(small_config)

    def test_slice_indices_are_complete(self, small_config):
        shards = plan_shards(small_config)
        for period in small_config.periods:
            for country in period.countries:
                indices = sorted(shard.slice_index for shard in shards
                                 if shard.period_name == period.name
                                 and shard.country == country)
                assert indices == list(range(small_config.shard_slices))

    def test_shard_slices_is_validated(self):
        with pytest.raises(ValueError):
            ExperimentConfig(seed=1, scale=0.01, shard_slices=0)


class TestParallelEquivalence:
    @pytest.fixture(scope="class")
    def parallel_result(self, small_config):
        return ParallelExperimentRunner(small_config, jobs=2).run()

    def test_stores_byte_identical(self, small_result, parallel_result):
        assert parallel_result.dataset.store.dumps_jsonl() \
            == small_result.dataset.store.dumps_jsonl()

    def test_tables_byte_identical(self, small_result, parallel_result):
        for render in (tables.render_table1, tables.render_table2,
                       tables.render_table3, tables.render_table4):
            assert render(parallel_result) == render(small_result)

    def test_figures_byte_identical(self, small_result, parallel_result):
        for figure in (figures.figure1, figures.figure2, figures.figure3):
            assert figure(parallel_result).render() \
                == figure(small_result).render()

    def test_stats_and_reports_identical(self, small_result, parallel_result):
        assert parallel_result.stats == small_result.stats
        assert parallel_result.dataset.vendor_reports \
            == small_result.dataset.vendor_reports
        assert parallel_result.conversions == small_result.conversions

    def test_trace_exports_byte_identical(self, small_result,
                                          parallel_result):
        # The tracing contract: the merged flight recorder folds shard
        # traces in canonical plan order, so both export formats must come
        # out byte-for-byte identical regardless of worker count.
        from repro.obs.traceio import dumps_chrome_trace, dumps_trace_jsonl

        serial_traces = small_result.recorder.traces()
        parallel_traces = parallel_result.recorder.traces()
        assert len(serial_traces) > 0
        assert dumps_chrome_trace(parallel_traces) \
            == dumps_chrome_trace(serial_traces)
        assert dumps_trace_jsonl(parallel_traces) \
            == dumps_trace_jsonl(serial_traces)

    def test_every_store_record_has_a_trace(self, small_result):
        recorder = small_result.recorder
        for record in small_result.dataset.store:
            trace = recorder.find_by_record(record.record_id)
            assert trace is not None
            names = {span.name for span in trace.spans}
            assert {"impression", "auction.decide", "creative.serve",
                    "beacon.render", "transport.connect", "collector.ingest",
                    "enrich.geo"} <= names

    def test_sim_metrics_identical_field_for_field(self, small_result,
                                                   parallel_result):
        # The metrics contract: every sim-domain counter, gauge and
        # histogram of the merged snapshot is a pure function of
        # (config, seed) — the worker count must not leak into any of it.
        serial = small_result.metrics.sim_only()
        parallel = parallel_result.metrics.sim_only()
        assert serial.counters == parallel.counters
        assert serial.gauges == parallel.gauges
        assert serial.histograms == parallel.histograms
        assert serial == parallel
        assert serial.to_json() == parallel.to_json()

    def test_sim_metrics_are_populated_and_consistent(self, small_result):
        snapshot = small_result.metrics
        assert snapshot.counter_value("shard.pageviews") \
            == small_result.stats["pageviews"]
        assert snapshot.counter_value("adserver.deliveries") \
            == small_result.stats["delivered"]
        assert snapshot.counter_value("collector.records_committed") \
            == small_result.collector.records_committed
        assert snapshot.counter_value("auction.our_wins") \
            == small_result.stats["delivered"]

    def test_metrics_json_is_strict(self, small_result):
        import json

        text = small_result.metrics.to_json()
        assert "Infinity" not in text
        assert "NaN" not in text
        parsed = json.loads(text)
        assert set(parsed) == {"sim", "wall"}

    def test_jobs_must_be_positive(self, small_config):
        with pytest.raises(ValueError):
            ParallelExperimentRunner(small_config, jobs=0)


class TestDeterminism:
    def test_same_seed_runs_produce_identical_stores(self):
        # Guards the explicit-rng contract end to end: any component
        # falling back to the global ``random`` module would re-roll the
        # wire-level masking and diverge between these two runs.
        config = paper_experiment(seed=31, scale=0.01)
        first = ExperimentRunner(config).run()
        second = ExperimentRunner(config).run()
        assert first.dataset.store.dumps_jsonl() \
            == second.dataset.store.dumps_jsonl()
        assert first.stats == second.stats


class TestDatasetLifecycle:
    def test_memoised_result_cannot_be_contaminated(self):
        # Regression: run_paper_experiment memoises the result object, and
        # its store used to be mutable — one caller's insert corrupted
        # every later caller's (supposedly identical) dataset.
        first = run_paper_experiment(seed=77, scale=0.01)
        size = len(first.dataset.store)
        with pytest.raises(StoreSealedError):
            first.dataset.store.insert(make_record(
                record_id=first.dataset.store.next_record_id(),
                ip="", ip_token="f" * 16))
        second = run_paper_experiment(seed=77, scale=0.01)
        assert second is first
        assert len(second.dataset.store) == size

    def test_session_fixture_store_is_sealed(self, small_result):
        assert small_result.dataset.store.sealed
