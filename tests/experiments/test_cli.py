"""Tests for the ``python -m repro`` command line."""

import csv
import io
import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.scale == 0.05
        assert args.seed == 2016
        assert args.table is None
        assert args.figure is None

    def test_repeatable_table_and_figure(self):
        args = build_parser().parse_args(
            ["--table", "2", "--table", "4", "--figure", "1"])
        assert args.table == [2, 4]
        assert args.figure == [1]

    def test_rejects_unknown_table(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--table", "9"])


class TestMain:
    def test_prints_requested_artifacts(self, capsys, tmp_path):
        code = main(["--scale", "0.01", "--seed", "5",
                     "--table", "3", "--figure", "1",
                     "--dump-dataset", str(tmp_path / "ds.jsonl"),
                     "--json", str(tmp_path / "audit.json"),
                     "--csv", str(tmp_path / "audit.csv")])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Figure 1" in out

        dataset_lines = (tmp_path / "ds.jsonl").read_text().splitlines()
        assert dataset_lines
        json.loads(dataset_lines[0])

        audit = json.loads((tmp_path / "audit.json").read_text())
        assert len(audit["campaigns"]) == 8

        rows = list(csv.reader(io.StringIO(
            (tmp_path / "audit.csv").read_text())))
        assert len(rows) == 9   # header + 8 campaigns

    def test_default_output_is_full_audit(self, capsys):
        code = main(["--scale", "0.01", "--seed", "6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Brand safety" in out
        assert "Frequency capping" in out

    def test_trace_export_flags(self, capsys, tmp_path):
        trace_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        code = main(["--scale", "0.01", "--seed", "5", "--table", "3",
                     "--trace-json", str(trace_path),
                     "--trace-jsonl", str(jsonl_path)])
        assert code == 0
        err = capsys.readouterr().err
        assert "traces" in err

        text = trace_path.read_text()
        assert "Infinity" not in text
        assert "NaN" not in text
        document = json.loads(text)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert any(event["ph"] == "X" and event["name"] == "collector.ingest"
                   for event in events)

        from repro.obs.traceio import loads_trace_jsonl
        traces = loads_trace_jsonl(jsonl_path.read_text())
        assert traces
        assert all(trace.trace_id for trace in traces)

    def test_explain_renders_receipt(self, capsys):
        code = main(["explain", "17", "--scale", "0.01", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Impression receipt" in out
        assert "record #17" in out
        assert "collector.ingest" in out
        assert "audit.classify" in out
        assert "Audit verdicts" in out

    def test_explain_unknown_record_fails_cleanly(self, capsys):
        code = main(["explain", "999999", "--scale", "0.01", "--seed", "5"])
        assert code == 1
        err = capsys.readouterr().err
        assert "999999" in err

    def test_bench_probe_rejects_a_sweep(self, capsys):
        code = main(["bench", "--probe", "--scale", "0.004",
                     "--jobs", "1,2"])
        assert code == 2
        assert "single jobs value" in capsys.readouterr().err

    def test_bench_probe_emits_one_json_row(self, capsys):
        code = main(["bench", "--probe", "--scale", "0.004", "--seed", "5",
                     "--jobs", "2"])
        assert code == 0
        row = json.loads(capsys.readouterr().out)
        assert row["mode"] == "parallel"
        assert row["jobs"] == 2
        assert row["warm_wall_seconds"] > 0
        assert row["cold_start_seconds"] >= 0

    def test_bench_jobs_garbage_rejected(self, capsys):
        code = main(["bench", "--scale", "0.004", "--jobs", "zero"])
        assert code == 2
        assert "--jobs" in capsys.readouterr().err

    def test_metrics_flags(self, capsys, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        code = main(["--scale", "0.01", "--seed", "6", "--table", "3",
                     "--metrics", "--metrics-json", str(metrics_path)])
        assert code == 0
        err = capsys.readouterr().err
        assert "Sim-domain metrics" in err

        text = metrics_path.read_text()
        assert "Infinity" not in text
        assert "NaN" not in text
        parsed = json.loads(text)
        assert parsed["sim"]["counters"]["shard.pageviews"] > 0
        assert "collector.connection_seconds" in parsed["sim"]["histograms"]


class TestTelemetryFlags:
    def test_events_jsonl_writes_valid_ndjson(self, capsys, tmp_path):
        from repro.obs.events import validate_events_jsonl

        events_path = tmp_path / "events.jsonl"
        code = main(["--scale", "0.01", "--seed", "5", "--table", "3",
                     "--events-jsonl", str(events_path)])
        assert code == 0
        err = capsys.readouterr().err
        assert "events (NDJSON)" in err
        text = events_path.read_text()
        validate_events_jsonl(text)   # raises on any malformed line
        assert '"name": "shard.planned"' in text
        assert '"name": "coverage.reconciled"' in text
        assert '"name": "runner.heartbeat"' in text

    def test_progress_renders_on_stderr(self, capsys):
        code = main(["--scale", "0.01", "--seed", "5", "--table", "3",
                     "--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "shards" in err
        # Captured stderr is not a TTY, so the renderer appends plain
        # lines; the final one shows the full bar.
        assert "[####################]" in err

    def test_telemetry_off_keeps_flags_optional(self):
        args = build_parser().parse_args([])
        assert args.events_jsonl is None
        assert args.progress is False


class TestReportCommand:
    def test_report_writes_markdown_and_events(self, capsys, tmp_path):
        from repro.obs.events import validate_events_jsonl

        report_path = tmp_path / "report.md"
        events_path = tmp_path / "events.jsonl"
        code = main(["report", "--scale", "0.01", "--seed", "5",
                     "--faults", "flaky",
                     "--out", str(report_path),
                     "--events-jsonl", str(events_path)])
        assert code == 0
        text = report_path.read_text()
        assert text.startswith("# Repro run report")
        assert "## Coverage reconciliation" in text
        assert "## Event journal" in text
        assert "## Audit report" in text
        assert "| audit |" in text   # the audit stage joins the memory table
        validate_events_jsonl(events_path.read_text())

    def test_report_to_stdout(self, capsys):
        code = main(["report", "--scale", "0.01", "--seed", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# Repro run report" in out

    def test_report_rejects_bad_faults(self, capsys):
        code = main(["report", "--scale", "0.01", "--faults", "no-such"])
        assert code == 2
        assert "--faults" in capsys.readouterr().err


class TestDroppedTraceMessage:
    def test_names_capacity_and_drop_count(self):
        from repro.__main__ import _dropped_trace_message
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import DEFAULT_HEAD_TRACES, DEFAULT_TAIL_TRACES

        registry = MetricsRegistry()
        registry.counter("trace.dropped").inc(37)
        message = _dropped_trace_message(123, registry.snapshot())
        capacity = DEFAULT_HEAD_TRACES + DEFAULT_TAIL_TRACES
        assert f"trace dropped (recorder capacity {capacity}" in message
        assert "37 dropped" in message
        assert "record #123" in message


class TestBenchTracemallocFlag:
    def test_parses_and_defaults_off(self):
        from repro.__main__ import build_bench_parser

        assert build_bench_parser().parse_args([]).tracemalloc is False
        assert build_bench_parser().parse_args(
            ["--tracemalloc"]).tracemalloc is True
