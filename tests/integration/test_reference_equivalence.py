"""End-to-end reference-vs-optimized equivalence.

The optimization pass's contract: every simulation-domain artifact —
stats, tables, figures, the audit report and its exports, the
sim-domain metrics snapshot, and the trace exports — is byte-identical
whether the pipeline runs its optimized hot paths or the retained
reference implementations.  One miniature experiment runs in each mode;
every export is compared verbatim.

Wall-domain timers (``shard.wall_seconds``, decode wall time) are
measured time and legitimately differ, so the metrics comparison is on
the sim-domain restriction — exactly the determinism contract the
metrics layer documents.
"""

import pytest

from repro.audit import full_audit
from repro.audit.export import report_to_csv, report_to_json
from repro.experiments import figures, tables
from repro.experiments.config import paper_experiment
from repro.experiments.runner import ExperimentRunner
from repro.obs.metrics import SIM
from repro.obs.traceio import dumps_chrome_trace, dumps_trace_jsonl
from repro.util import hotpath

SEED, SCALE = 2016, 0.01


@pytest.fixture(scope="module")
def optimized_result():
    return ExperimentRunner(paper_experiment(seed=SEED, scale=SCALE)).run()


@pytest.fixture(scope="module")
def reference_result():
    with hotpath.reference_hotpaths():
        return ExperimentRunner(paper_experiment(seed=SEED, scale=SCALE)).run()


class TestReferenceEquivalence:
    def test_stats_identical(self, optimized_result, reference_result):
        assert optimized_result.stats == reference_result.stats

    @pytest.mark.parametrize("number", [1, 2, 3, 4])
    def test_tables_byte_identical(self, optimized_result, reference_result,
                                   number):
        render = getattr(tables, f"render_table{number}")
        assert render(optimized_result) == render(reference_result)

    @pytest.mark.parametrize("number", [1, 2, 3])
    def test_figures_byte_identical(self, optimized_result, reference_result,
                                    number):
        figure = getattr(figures, f"figure{number}")
        assert figure(optimized_result).render() == \
            figure(reference_result).render()

    def test_audit_report_byte_identical(self, optimized_result,
                                         reference_result):
        optimized = full_audit(optimized_result.dataset)
        reference = full_audit(reference_result.dataset)
        assert optimized.render() == reference.render()
        assert report_to_json(optimized) == report_to_json(reference)
        assert report_to_csv(optimized) == report_to_csv(reference)

    def test_sim_metrics_byte_identical(self, optimized_result,
                                        reference_result):
        assert optimized_result.metrics.restrict(SIM).to_json() == \
            reference_result.metrics.restrict(SIM).to_json()

    def test_trace_exports_byte_identical(self, optimized_result,
                                          reference_result):
        optimized_traces = optimized_result.recorder.traces()
        reference_traces = reference_result.recorder.traces()
        assert dumps_trace_jsonl(optimized_traces) == \
            dumps_trace_jsonl(reference_traces)
        assert dumps_chrome_trace(optimized_traces) == \
            dumps_chrome_trace(reference_traces)

    def test_collected_records_identical(self, optimized_result,
                                         reference_result):
        assert list(optimized_result.dataset.store) == \
            list(reference_result.dataset.store)
