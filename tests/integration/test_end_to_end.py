"""End-to-end integration: the paper's headline findings hold qualitatively
on the miniature world, and the full audit artifact assembles cleanly.
"""

import pytest

from repro.audit import full_audit
from repro.audit.brand_safety import BrandSafetyAudit
from repro.audit.context import ContextAudit
from repro.audit.fraud import FraudAudit
from repro.audit.frequency import FrequencyAudit
from repro.audit.viewability import ViewabilityAudit


@pytest.fixture(scope="module")
def report(small_result):
    return full_audit(small_result.dataset)


class TestHeadlineFindings:
    def test_finding_i_vendor_hides_publishers(self, small_result):
        """AdWords did not report a large share of delivering publishers."""
        venn = BrandSafetyAudit(small_result.dataset).venn(None)
        assert venn.unreported_by_vendor.pct > 25.0
        # And our own methodology misses some publishers too (§3.1).
        assert 2.0 < venn.unlogged_by_audit.pct < 35.0

    def test_finding_ii_contextual_claims_inflated(self, small_result):
        """The vendor claims more contextual delivery than page themes
        support, using its undisclosed behavioural criterion."""
        audit = ContextAudit(small_result.dataset)
        gaps = {}
        for campaign_id in small_result.dataset.campaign_ids:
            outcome = audit.assess(campaign_id)
            gaps[campaign_id] = (outcome.vendor_fraction.pct
                                 - outcome.audit_fraction.pct)
        # Most campaigns show the inflation (tiny campaigns are noisy at
        # this world scale), and the Football ones show it dramatically.
        assert sum(gap > 0 for gap in gaps.values()) >= 5
        assert gaps["Football-010"] > 15.0
        assert gaps["Football-030"] > 15.0

    def test_finding_iii_cpm_does_not_buy_popularity(self, small_result):
        """The 0.01-euro Russia campaign lands a larger share of its
        impressions on top-ranked publishers than the 0.30-euro one."""
        from repro.audit.popularity import PopularityAudit

        audit = PopularityAudit(small_result.dataset)
        cheap = audit.distribution("Russia").cumulative_to(100_000)
        expensive = audit.distribution("Football-030").cumulative_to(100_000)
        assert cheap > expensive

    def test_finding_iv_no_default_frequency_cap(self, small_result):
        """Users receive the same ad well beyond any sensible cap."""
        summary = FrequencyAudit(small_result.dataset).summary(None)
        assert summary.users_over_10 > 0
        assert summary.max_impressions_single_user > 20

    def test_finding_v_datacenter_traffic_served(self, small_result):
        """Football campaigns deliver a visible share of impressions to
        data-center IPs; the quiet campaigns stay lower."""
        audit = FraudAudit(small_result.dataset)
        football = audit.assess("Football-030").dc_impressions.pct
        general = audit.assess("General-010").dc_impressions.pct
        assert football > 2.0
        assert football > general

    def test_viewability_band_and_ordering(self, small_result):
        audit = ViewabilityAudit(small_result.dataset)
        values = {row.campaign_id: row.viewable_upper_bound.pct
                  for row in audit.table()}
        assert all(35.0 < value < 95.0 for value in values.values())
        football_avg = (values["Football-010"] + values["Football-030"]) / 2
        research_avg = (values["Research-010"] + values["Research-020"]) / 2
        assert football_avg > research_avg


class TestFullAuditArtifact:
    def test_report_assembles(self, report, small_result):
        assert len(report.campaigns) == 8
        assert report.aggregate_venn.union_total > 0

    def test_render_has_all_sections(self, report):
        text = report.render()
        for fragment in ("Brand safety", "Context", "Viewability",
                         "Data-center", "Frequency capping", "blacklist"):
            assert fragment in text

    def test_blacklist_contains_unsafe_domains(self, report, small_result):
        for domain in report.blacklist:
            info = small_result.dataset.publisher_info(domain)
            assert info is not None and info.unsafe


class TestDatasetPersistenceRoundtrip:
    def test_dump_load_preserves_audit_results(self, small_result, tmp_path):
        from repro.collector.store import ImpressionStore

        path = tmp_path / "dataset.jsonl"
        small_result.dataset.store.dump_jsonl(path)
        loaded = ImpressionStore.load_jsonl(path)
        assert len(loaded) == len(small_result.dataset.store)
        assert loaded.distinct_domains() == \
            small_result.dataset.store.distinct_domains()
