"""End-to-end determinism and recovery under fault injection.

The fault layer's contract, verified on a miniature experiment:

* ``--faults flaky`` runs to completion, the coverage ledger reconciles
  exactly, and serial vs. ``--jobs 2`` execution produce byte-identical
  datasets, coverage exports and sim-domain metrics;
* an injected shard crash that recovery retries absorb leaves every
  artifact byte-identical to a run without the crash;
* a shard that exhausts its retries is reported lost — identically in
  serial and pooled execution — instead of aborting the run.
"""

import dataclasses
import json

import pytest

from repro.audit.coverage import (
    coverage_to_json,
    render_coverage,
    validate_coverage_document,
)
from repro.experiments.config import paper_experiment
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import ExperimentRunner, plan_shards
from repro.faults.plan import FaultPlan
from repro.obs.metrics import SIM

SEED, SCALE = 2016, 0.01


def flaky_config():
    return paper_experiment(seed=SEED, scale=SCALE,
                            faults=FaultPlan.preset("flaky"))


@pytest.fixture(scope="module")
def flaky_serial():
    return ExperimentRunner(flaky_config()).run()


@pytest.fixture(scope="module")
def flaky_parallel():
    return ParallelExperimentRunner(flaky_config(), jobs=2).run()


class TestFlakyRun:
    def test_run_completes_and_reconciles(self, flaky_serial):
        coverage = flaky_serial.coverage
        totals = coverage.counts.totals()
        assert totals.delivered > 0
        assert totals.lost > 0          # the flaky preset does hurt
        assert coverage.counts.reconciles
        assert coverage.lost_shards == ()

    def test_coverage_export_validates(self, flaky_serial):
        document = json.loads(coverage_to_json(flaky_serial.coverage))
        assert validate_coverage_document(document) == []

    def test_rendered_coverage_reports_ok(self, flaky_serial):
        text = render_coverage(flaky_serial.coverage)
        assert "-> OK" in text
        assert "MISMATCH" not in text

    def test_serial_and_parallel_byte_identical(self, flaky_serial,
                                                flaky_parallel):
        assert list(flaky_serial.dataset.store) == \
            list(flaky_parallel.dataset.store)
        assert coverage_to_json(flaky_serial.coverage) == \
            coverage_to_json(flaky_parallel.coverage)
        assert render_coverage(flaky_serial.coverage) == \
            render_coverage(flaky_parallel.coverage)
        assert flaky_serial.metrics.restrict(SIM).to_json() == \
            flaky_parallel.metrics.restrict(SIM).to_json()
        assert flaky_serial.stats == flaky_parallel.stats


class TestCrashRecovery:
    @staticmethod
    def crashing_config(crash_attempts):
        config = paper_experiment(seed=SEED, scale=SCALE)
        scope = plan_shards(config)[0].scope
        return dataclasses.replace(
            config,
            faults=FaultPlan(name="crashy", crash_scopes=(scope,),
                             crash_attempts=crash_attempts)), scope

    def test_recovered_crash_is_invisible(self):
        baseline = ExperimentRunner(
            paper_experiment(seed=SEED, scale=SCALE)).run()
        config, _ = self.crashing_config(crash_attempts=1)
        recovered = ExperimentRunner(config).run()
        assert list(recovered.dataset.store) == list(baseline.dataset.store)
        assert coverage_to_json(recovered.coverage) == \
            coverage_to_json(baseline.coverage)
        assert recovered.coverage.lost_shards == ()
        # A fully absorbed crash leaves no trace at all — not even a
        # lost_shards stat (the key only appears when a shard is lost or
        # an active plan asks for the ledger).
        assert recovered.stats == baseline.stats
        assert "lost_shards" not in recovered.stats

    def test_exhausted_retries_lose_shard_consistently(self):
        config, scope = self.crashing_config(crash_attempts=99)
        serial = ExperimentRunner(config).run()
        parallel = ParallelExperimentRunner(config, jobs=2).run()
        assert serial.coverage.lost_shards == (scope,)
        assert serial.stats["lost_shards"] == 1
        assert "crash recovery exhausted" in \
            render_coverage(serial.coverage)
        assert list(serial.dataset.store) == list(parallel.dataset.store)
        assert coverage_to_json(serial.coverage) == \
            coverage_to_json(parallel.coverage)
        assert serial.stats == parallel.stats
