"""Tests for repro.geo.ipdb."""

import random

import pytest

from repro.geo.ipdb import GeoIpDatabase
from repro.geo.providers import ProviderKind, ProviderRegistry


@pytest.fixture
def world():
    registry = ProviderRegistry(random.Random(11))
    return registry, GeoIpDatabase(registry)


class TestGeoIpDatabase:
    def test_every_provider_block_resolves_to_owner(self, world):
        registry, db = world
        rng = random.Random(1)
        for provider in registry.providers:
            ip = provider.random_ip(rng)
            record = db.lookup(ip)
            assert record is not None
            assert record.provider == provider.name
            assert record.country == provider.country
            assert record.kind is provider.kind

    def test_unallocated_space_resolves_to_none(self, world):
        _, db = world
        assert db.lookup("1.1.1.1") is None
        assert db.country_of("1.1.1.1") is None
        assert db.provider_of("1.1.1.1") is None

    def test_country_of_access_ip(self, world):
        registry, db = world
        ip = registry.access_providers("RU")[0].random_ip(random.Random(2))
        assert db.country_of(ip) == "RU"

    def test_looks_hosted_flag(self, world):
        registry, db = world
        rng = random.Random(3)
        dc_ip = registry.datacenter_providers()[0].random_ip(rng)
        isp_ip = registry.access_providers("ES")[0].random_ip(rng)
        assert db.lookup(dc_ip).looks_hosted
        assert not db.lookup(isp_ip).looks_hosted

    def test_size_counts_prefixes(self, world):
        registry, db = world
        total_blocks = sum(len(provider.blocks)
                           for provider in registry.providers)
        assert len(db) == total_blocks

    def test_malformed_ip_raises(self, world):
        _, db = world
        with pytest.raises(ValueError):
            db.lookup("not-an-ip")
