"""Tests for repro.geo.providers."""

import random

import pytest

from repro.geo.providers import Provider, ProviderKind, ProviderRegistry
from repro.net.ipv4 import parse_cidr


@pytest.fixture
def registry():
    return ProviderRegistry(random.Random(7))


class TestRegistryGeneration:
    def test_creates_access_isps_per_country(self, registry):
        for country in ("ES", "RU", "US"):
            providers = registry.access_providers(country)
            assert len(providers) == 4
            assert all(p.country == country for p in providers)

    def test_last_access_provider_is_mobile(self, registry):
        providers = registry.access_providers("ES")
        assert providers[-1].kind is ProviderKind.MOBILE
        assert all(p.kind is ProviderKind.ISP for p in providers[:-1])

    def test_datacenter_population_size(self, registry):
        assert len(registry.datacenter_providers(include_vpn=True)) == 100

    def test_vpn_fraction_carved_from_datacenters(self, registry):
        vpns = [p for p in registry.providers if p.kind is ProviderKind.VPN]
        assert len(vpns) == 6
        assert all(not p.advertises_hosting for p in vpns)
        assert all(p.is_datacenter_space for p in vpns)

    def test_plain_datacenters_advertise_hosting(self, registry):
        for provider in registry.datacenter_providers(include_vpn=False):
            assert provider.advertises_hosting

    def test_no_overlapping_blocks(self, registry):
        blocks = [block for provider in registry.providers
                  for block in provider.blocks]
        # Sorted by network start, each block must end before the next begins.
        ordered = sorted(blocks, key=lambda b: b.network)
        for current, following in zip(ordered, ordered[1:]):
            assert current.last < following.first

    def test_unique_names(self, registry):
        names = [provider.name for provider in registry.providers]
        assert len(names) == len(set(names))

    def test_by_name_lookup(self, registry):
        provider = registry.providers[0]
        assert registry.by_name(provider.name) is provider
        with pytest.raises(KeyError):
            registry.by_name("No Such Net")

    def test_access_space_distinct_from_datacenter_space(self, registry):
        for provider in registry.access_providers("ES"):
            for block in provider.blocks:
                assert block.network < (128 << 24)
        for provider in registry.datacenter_providers():
            for block in provider.blocks:
                assert block.network >= (128 << 24)

    def test_describe_mentions_every_provider(self, registry):
        text = registry.describe()
        for provider in registry.providers:
            assert provider.name in text

    def test_rejects_zero_providers(self):
        with pytest.raises(ValueError):
            ProviderRegistry(random.Random(0), isps_per_country=0)

    def test_rejects_bad_vpn_fraction(self):
        with pytest.raises(ValueError):
            ProviderRegistry(random.Random(0), vpn_fraction=1.0)


class TestProvider:
    def test_random_ip_falls_in_own_space(self, registry):
        rng = random.Random(3)
        for provider in registry.providers[:10]:
            ip = provider.random_ip(rng)
            assert any(block.contains(ip) for block in provider.blocks)

    def test_is_datacenter_space_flags(self):
        isp = Provider(name="x", kind=ProviderKind.ISP, country="ES",
                       blocks=(parse_cidr("2.0.0.0/14"),))
        assert not isp.is_datacenter_space
