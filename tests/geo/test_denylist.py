"""Tests for repro.geo.denylist."""

import random

import pytest

from repro.geo.denylist import DenyList
from repro.geo.providers import ProviderRegistry


class TestDenyList:
    def test_empty_list_covers_nothing(self):
        assert not DenyList().covers("128.0.0.1")
        assert len(DenyList()) == 0

    def test_add_and_membership(self):
        deny = DenyList(["128.0.0.0/15"])
        assert deny.covers("128.1.255.255")
        assert "128.0.0.1" in deny
        assert not deny.covers("128.2.0.0")

    def test_address_count(self):
        deny = DenyList(["10.0.0.0/24", "10.0.1.0/24"])
        assert deny.address_count() == 512

    def test_from_registry_partial_coverage(self):
        registry = ProviderRegistry(random.Random(5))
        deny = DenyList.from_registry(registry, coverage=0.7)
        datacenters = registry.datacenter_providers(include_vpn=False)
        covered = datacenters[: int(round(len(datacenters) * 0.7))]
        uncovered = datacenters[int(round(len(datacenters) * 0.7)):]
        rng = random.Random(6)
        assert all(deny.covers(p.random_ip(rng)) for p in covered)
        assert all(not deny.covers(p.random_ip(rng)) for p in uncovered)

    def test_from_registry_excludes_vpn_space(self):
        registry = ProviderRegistry(random.Random(5))
        deny = DenyList.from_registry(registry, coverage=1.0)
        rng = random.Random(7)
        vpns = [p for p in registry.datacenter_providers(include_vpn=True)
                if not p.advertises_hosting]
        assert vpns
        assert all(not deny.covers(p.random_ip(rng)) for p in vpns)

    def test_from_registry_never_covers_access_space(self):
        registry = ProviderRegistry(random.Random(5))
        deny = DenyList.from_registry(registry, coverage=1.0)
        rng = random.Random(8)
        for country in ("ES", "RU", "US"):
            for provider in registry.access_providers(country):
                assert not deny.covers(provider.random_ip(rng))

    def test_rejects_bad_coverage(self):
        registry = ProviderRegistry(random.Random(5))
        with pytest.raises(ValueError):
            DenyList.from_registry(registry, coverage=1.5)
