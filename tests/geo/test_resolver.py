"""Tests for repro.geo.resolver — the 3-stage data-center cascade."""

import random

import pytest

from repro.geo.denylist import DenyList
from repro.geo.ipdb import GeoIpDatabase
from repro.geo.providers import ProviderRegistry
from repro.geo.resolver import DataCenterResolver, DcStage


@pytest.fixture
def world():
    registry = ProviderRegistry(random.Random(13))
    ipdb = GeoIpDatabase(registry)
    denylist = DenyList.from_registry(registry, coverage=0.7)
    return registry, ipdb, denylist


class TestCascade:
    def test_listed_datacenter_ip_caught_at_denylist_stage(self, world):
        registry, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist)
        covered = registry.datacenter_providers(include_vpn=False)[0]
        verdict = resolver.classify(covered.random_ip(random.Random(1)))
        assert verdict.is_datacenter
        assert verdict.stage is DcStage.DENYLIST
        assert verdict.provider == covered.name

    def test_unlisted_datacenter_caught_at_manual_stage(self, world):
        registry, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist)
        datacenters = registry.datacenter_providers(include_vpn=False)
        uncovered = datacenters[-1]  # coverage 0.7 leaves the tail out
        ip = uncovered.random_ip(random.Random(2))
        assert not denylist.covers(ip)
        verdict = resolver.classify(ip)
        assert verdict.is_datacenter
        assert verdict.stage is DcStage.MANUAL

    def test_residential_ip_cleared(self, world):
        registry, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist)
        ip = registry.access_providers("ES")[0].random_ip(random.Random(3))
        verdict = resolver.classify(ip)
        assert not verdict.is_datacenter
        assert verdict.stage is DcStage.CLEARED

    def test_vpn_space_cleared_as_industry_exception(self, world):
        registry, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist)
        vpn = [p for p in registry.datacenter_providers(include_vpn=True)
               if not p.advertises_hosting][0]
        verdict = resolver.classify(vpn.random_ip(random.Random(4)))
        assert not verdict.is_datacenter
        assert verdict.stage is DcStage.CLEARED

    def test_unallocated_ip_unresolved(self, world):
        _, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist)
        verdict = resolver.classify("1.2.3.4")
        assert not verdict.is_datacenter
        assert verdict.stage is DcStage.UNRESOLVED
        assert verdict.provider is None

    def test_stage_counters_accumulate(self, world):
        registry, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist)
        rng = random.Random(5)
        resolver.classify(registry.datacenter_providers(False)[0].random_ip(rng))
        resolver.classify(registry.access_providers("ES")[0].random_ip(rng))
        resolver.classify("1.2.3.4")
        assert resolver.stage_counts[DcStage.DENYLIST] == 1
        assert resolver.stage_counts[DcStage.CLEARED] == 1
        assert resolver.stage_counts[DcStage.UNRESOLVED] == 1

    def test_verdict_is_truthy_when_datacenter(self, world):
        registry, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist)
        dc = registry.datacenter_providers(False)[0]
        assert resolver.classify(dc.random_ip(random.Random(6)))
        assert resolver.is_datacenter(dc.random_ip(random.Random(7)))


class TestStageAblation:
    def test_disable_denylist_pushes_detection_to_manual(self, world):
        registry, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist, enable_denylist=False)
        covered = registry.datacenter_providers(False)[0]
        verdict = resolver.classify(covered.random_ip(random.Random(8)))
        assert verdict.is_datacenter
        assert verdict.stage is DcStage.MANUAL

    def test_disable_both_stages_misses_everything(self, world):
        registry, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist,
                                      enable_denylist=False,
                                      enable_manual=False)
        covered = registry.datacenter_providers(False)[0]
        verdict = resolver.classify(covered.random_ip(random.Random(9)))
        assert not verdict.is_datacenter

    def test_manual_only_still_catches_unlisted(self, world):
        registry, ipdb, denylist = world
        resolver = DataCenterResolver(ipdb, denylist, enable_denylist=False)
        uncovered = registry.datacenter_providers(False)[-1]
        assert resolver.classify(
            uncovered.random_ip(random.Random(10))).is_datacenter
