"""Tests for repro.web.bots."""

import random

import pytest

from repro.geo.providers import ProviderRegistry
from repro.web.bots import Bot, BotConfig, BotFleet


@pytest.fixture
def fleet(registry):
    return BotFleet(random.Random(31), registry, countries=("ES",),
                    config=BotConfig(bots_per_fleet=20, fleet_count=3))


class TestBotConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BotConfig(bots_per_fleet=0)
        with pytest.raises(ValueError):
            BotConfig(daily_pageviews_min=10, daily_pageviews_max=5)
        with pytest.raises(ValueError):
            BotConfig(dwell_min=0)
        with pytest.raises(ValueError):
            BotConfig(target_profile=())
        with pytest.raises(ValueError):
            BotConfig(aggressive_fraction=1.5)
        with pytest.raises(ValueError):
            BotConfig(aggressive_multiplier=0.5)
        with pytest.raises(ValueError):
            BotConfig(fleet_focus_size=-1)


class TestBotFleet:
    def test_fleet_size(self, fleet):
        assert len(fleet) == 60

    def test_all_bots_in_datacenter_space(self, fleet, registry):
        datacenter_blocks = [block
                             for provider in registry.datacenter_providers()
                             for block in provider.blocks]
        for bot in fleet.bots:
            assert any(block.contains(bot.ip) for block in datacenter_blocks)

    def test_bots_never_use_vpn_space(self, fleet, registry):
        vpn_blocks = [block for provider in registry.datacenter_providers()
                      if not provider.advertises_hosting
                      for block in provider.blocks]
        for bot in fleet.bots:
            assert not any(block.contains(bot.ip) for block in vpn_blocks)

    def test_bots_claim_requested_country(self, fleet):
        assert all(bot.claimed_country == "ES" for bot in fleet.bots)

    def test_bots_prefer_local_datacenters(self, registry):
        fleet = BotFleet(random.Random(37), registry, countries=("ES",),
                         config=BotConfig(bots_per_fleet=10, fleet_count=5))
        from repro.geo.ipdb import GeoIpDatabase
        db = GeoIpDatabase(registry)
        local = sum(db.country_of(bot.ip) == "ES" for bot in fleet.bots)
        # ES data centers exist in the registry, so fleets should sit there.
        assert local == len(fleet.bots)

    def test_fleet_shares_provider_but_ips_vary(self, fleet):
        assert len(fleet.unique_ips()) > len(fleet) * 0.8

    def test_bot_ids_unique(self, fleet):
        ids = [bot.bot_id for bot in fleet.bots]
        assert len(ids) == len(set(ids))

    def test_fleet_ids_group_bots(self, fleet):
        fleet_ids = {bot.fleet_id for bot in fleet.bots}
        assert len(fleet_ids) == 3

    def test_verticals_rotate_within_fleet(self, fleet):
        verticals = {bot.target_topics[0] for bot in fleet.bots}
        assert len(verticals) >= 2

    def test_targeting_filter(self, fleet):
        for bot in fleet.targeting("sports"):
            assert "sports" in bot.target_topics

    def test_aggressive_bots_run_hotter(self, registry):
        config = BotConfig(bots_per_fleet=200, fleet_count=1,
                           daily_pageviews_min=10, daily_pageviews_max=20,
                           aggressive_fraction=0.1, aggressive_multiplier=10.0)
        fleet = BotFleet(random.Random(41), registry, config=config)
        hot = [bot for bot in fleet.bots if bot.daily_pageviews > 20]
        assert hot
        assert all(bot.daily_pageviews >= 100 for bot in hot)

    def test_focus_size_propagates(self, registry):
        config = BotConfig(bots_per_fleet=3, fleet_count=1,
                           fleet_focus_size=7)
        fleet = BotFleet(random.Random(43), registry, config=config)
        assert all(bot.focus_size == 7 for bot in fleet.bots)

    def test_bot_validation(self):
        with pytest.raises(ValueError):
            Bot(bot_id=1, fleet_id=1, ip="128.0.0.1", user_agent="ua",
                claimed_country="ES", target_topics=("sports",),
                daily_pageviews=0, dwell_seconds=1.0)
