"""Tests for repro.web.population — the publisher universe."""

import math
import random

import pytest

from repro.web.population import PublisherUniverse, UniverseConfig


class TestUniverseConfig:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            UniverseConfig(publisher_count=0)
        with pytest.raises(ValueError):
            UniverseConfig(publisher_count=100, max_global_rank=50)

    def test_rejects_bad_fractions(self):
        with pytest.raises(ValueError):
            UniverseConfig(anonymous_fraction=1.2)

    def test_rejects_unnormalised_country_shares(self):
        with pytest.raises(ValueError):
            UniverseConfig(country_shares=(("ES", 0.5), ("US", 0.2)))


class TestGeneration:
    def test_size_and_unique_domains(self, universe):
        assert len(universe) == 600
        domains = [publisher.domain for publisher in universe.publishers]
        assert len(domains) == len(set(domains))

    def test_ranks_sorted_by_popularity_index(self, universe):
        ranks = [publisher.global_rank for publisher in universe.publishers]
        assert ranks == sorted(ranks)
        assert len(set(ranks)) == len(ranks)

    def test_ranks_span_orders_of_magnitude(self, universe):
        ranks = [publisher.global_rank for publisher in universe.publishers]
        assert min(ranks) < 1000
        assert max(ranks) > 1_000_000

    def test_every_publisher_has_topics_and_keywords(self, universe):
        for publisher in universe.publishers:
            assert publisher.topics
            assert publisher.keywords

    def test_topics_come_from_taxonomy(self, universe):
        tree = universe.lexicon.tree
        for publisher in universe.publishers:
            for topic in publisher.topics:
                assert topic in tree

    def test_unsafe_flag_matches_vertical(self, universe):
        tree = universe.lexicon.tree
        unsafe_nodes = set(tree.subtree("unsafe"))
        for publisher in universe.publishers:
            in_unsafe = all(topic in unsafe_nodes for topic in publisher.topics)
            assert publisher.unsafe == in_unsafe

    def test_popular_publishers_cost_more_on_average(self, universe):
        head = universe.publishers[:60]
        tail = universe.publishers[-60:]
        head_floor = sum(p.floor_cpm for p in head) / len(head)
        tail_floor = sum(p.floor_cpm for p in tail) / len(tail)
        assert head_floor > tail_floor * 2

    def test_premium_demand_declines_with_rank(self, universe):
        head = universe.publishers[:60]
        tail = universe.publishers[-60:]
        assert (sum(p.premium_demand for p in head)
                > sum(p.premium_demand for p in tail))

    def test_anonymous_and_blocking_fractions_plausible(self, universe):
        anonymous = sum(p.is_anonymous for p in universe.publishers) / len(universe)
        blocking = sum(p.blocks_scripts for p in universe.publishers) / len(universe)
        assert 0.04 < anonymous < 0.20
        assert 0.08 < blocking < 0.25

    def test_by_domain_lookup(self, universe):
        publisher = universe.publishers[0]
        assert universe.by_domain(publisher.domain) is publisher
        with pytest.raises(KeyError):
            universe.by_domain("missing.example")

    def test_deterministic_generation(self, lexicon):
        a = PublisherUniverse(random.Random(5),
                              UniverseConfig(publisher_count=50), lexicon)
        b = PublisherUniverse(random.Random(5),
                              UniverseConfig(publisher_count=50), lexicon)
        assert [p.domain for p in a.publishers] == [p.domain for p in b.publishers]


class TestSampling:
    def test_popularity_sampling_is_head_heavy(self, universe):
        rng = random.Random(17)
        head_domains = {p.domain for p in universe.publishers[:60]}
        hits = sum(universe.sample_pageview_publisher(rng).domain in head_domains
                   for _ in range(3000))
        assert hits / 3000 > 0.2   # 10% of publishers draw >20% of traffic

    def test_interest_bias_enriches_matching_topics(self, universe):
        rng = random.Random(23)
        interests = ("football",)
        biased = sum("football" in universe.sample_pageview_publisher(
            rng, interests=interests).topics for _ in range(2000))
        unbiased = sum("football" in universe.sample_pageview_publisher(
            rng).topics for _ in range(2000))
        assert biased > unbiased * 1.5

    def test_country_bias(self, universe):
        rng = random.Random(29)
        local = sum(universe.sample_pageview_publisher(
            rng, country="ES").country_focus in ("ES", "GLOBAL")
            for _ in range(2000))
        assert local / 2000 > 0.8

    def test_matching_publishers_topic_index(self, universe):
        for publisher in universe.matching_publishers("football"):
            assert "football" in publisher.topics
