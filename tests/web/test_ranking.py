"""Tests for repro.web.ranking."""

import pytest

from repro.web.publisher import Publisher
from repro.web.ranking import RankingService


def make_publisher(domain, rank):
    return Publisher(domain=domain, global_rank=rank, country_focus="ES",
                     topics=("news",), keywords=("news",))


@pytest.fixture
def service():
    return RankingService([
        make_publisher("top.es", 42),
        make_publisher("mid.es", 45_000),
        make_publisher("tail.es", 3_200_000),
    ])


class TestRankingService:
    def test_rank_lookup(self, service):
        assert service.rank_of("top.es") == 42
        assert service.rank_of("TAIL.es") == 3_200_000

    def test_unknown_domain_is_none(self, service):
        assert service.rank_of("unknown.org") is None

    def test_top_n_ordering(self, service):
        assert service.top(2) == ["top.es", "mid.es"]
        assert service.top(0) == []

    def test_top_rejects_negative(self, service):
        with pytest.raises(ValueError):
            service.top(-1)

    def test_duplicate_domain_rejected(self):
        with pytest.raises(ValueError):
            RankingService([make_publisher("a.es", 1),
                            make_publisher("a.es", 2)])

    def test_bucket_edges_reach_max_rank(self, service):
        edges = service.bucket_edges()
        assert edges[-1] >= service.max_rank
        assert edges[0] == 100

    def test_bucket_of_known_domains(self, service):
        edges = service.bucket_edges()
        assert service.bucket_of("top.es", edges) == 0
        assert service.bucket_of("mid.es", edges) == edges.index(100_000)
        assert service.bucket_of("unknown.org", edges) is None

    def test_bucket_label_rendering(self):
        edges = [100, 1000, 10_000, 100_000, 1_000_000, 10_000_000]
        assert RankingService.bucket_label(edges, 0) == "[1, 100]"
        assert RankingService.bucket_label(edges, 2) == "(1K, 10K]"
        assert RankingService.bucket_label(edges, 5) == "(1M, 10M]"

    def test_len(self, service):
        assert len(service) == 3
