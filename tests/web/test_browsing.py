"""Tests for repro.web.browsing."""

import random

import pytest

from repro.web.bots import BotConfig, BotFleet
from repro.web.browsing import BrowsingConfig, BrowsingSimulator, poisson

DAY = 86_400.0
START = 1_459_209_600.0  # 2016-03-29


@pytest.fixture
def simulator(universe, lexicon):
    return BrowsingSimulator(universe, lexicon.tree)


class TestPoisson:
    def test_zero_lambda(self):
        assert poisson(random.Random(0), 0.0) == 0

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            poisson(random.Random(0), -1.0)

    def test_small_lambda_mean(self):
        rng = random.Random(1)
        draws = [poisson(rng, 5.0) for _ in range(3000)]
        assert 4.7 < sum(draws) / len(draws) < 5.3

    def test_large_lambda_uses_normal_approximation(self):
        rng = random.Random(2)
        draws = [poisson(rng, 500.0) for _ in range(500)]
        mean = sum(draws) / len(draws)
        assert 480 < mean < 520
        assert all(draw >= 0 for draw in draws)


class TestBrowsingConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            BrowsingConfig(pages_per_session_mean=0)
        with pytest.raises(ValueError):
            BrowsingConfig(think_time_min=5, think_time_max=2)
        with pytest.raises(ValueError):
            BrowsingConfig(favorite_revisit_prob=1.5)
        with pytest.raises(ValueError):
            BrowsingConfig(human_dwell_median=0)
        with pytest.raises(ValueError):
            BrowsingConfig(bot_burst_pages=0)


class TestHumanStream:
    def test_stream_is_time_ordered(self, simulator, population):
        humans = population.in_country("ES")[:40]
        stream = simulator.stream(humans, [], START, START + DAY,
                                  random.Random(5))
        timestamps = [view.timestamp for view in stream]
        assert timestamps == sorted(timestamps)
        assert timestamps, "expected pageviews"

    def test_timestamps_within_window(self, simulator, population):
        humans = population.in_country("ES")[:30]
        for view in simulator.stream(humans, [], START, START + DAY,
                                     random.Random(6)):
            assert START <= view.timestamp <= START + DAY + 4 * 3600

    def test_pageview_fields_are_consistent(self, simulator, population):
        humans = population.in_country("ES")[:10]
        for view in simulator.stream(humans, [], START, START + DAY,
                                     random.Random(7)):
            assert view.publisher.domain in view.url
            assert not view.is_bot
            assert view.dwell_seconds > 0
            assert view.interests

    def test_volume_tracks_daily_budget(self, simulator, population):
        humans = population.in_country("ES")[:100]
        expected = sum(device.daily_pageviews for device in humans)
        count = sum(1 for _ in simulator.stream(humans, [], START,
                                                START + DAY, random.Random(8)))
        assert 0.6 * expected < count < 1.4 * expected

    def test_deterministic_given_seed(self, simulator, population):
        humans = population.in_country("ES")[:10]
        first = [(v.timestamp, v.url) for v in simulator.stream(
            humans, [], START, START + DAY, random.Random(9))]
        second = [(v.timestamp, v.url) for v in simulator.stream(
            humans, [], START, START + DAY, random.Random(9))]
        assert first == second

    def test_favorite_revisits_concentrate_browsing(self, universe, lexicon,
                                                    population):
        config = BrowsingConfig(favorite_revisit_prob=0.9, favorite_count=2)
        simulator = BrowsingSimulator(universe, lexicon.tree, config)
        heavy = max(population.devices, key=lambda d: d.daily_pageviews)
        views = list(simulator.stream([heavy], [], START, START + DAY,
                                      random.Random(10)))
        if len(views) >= 20:
            domains = [view.publisher.domain for view in views]
            top_share = max(domains.count(d) for d in set(domains)) / len(domains)
            assert top_share > 0.2

    def test_empty_window_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.stream([], [], START, START, random.Random(0))


class TestBotStream:
    @pytest.fixture
    def bots(self, registry):
        config = BotConfig(bots_per_fleet=10, fleet_count=1,
                           daily_pageviews_min=50, daily_pageviews_max=80,
                           target_profile=(("sports", 1.0),))
        return BotFleet(random.Random(47), registry, config=config).bots

    def test_bot_views_flagged_and_on_target(self, simulator, bots):
        views = list(simulator.stream([], bots, START, START + DAY,
                                      random.Random(11)))
        assert views
        sports_nodes = set(simulator.tree.subtree("sports"))
        for view in views:
            assert view.is_bot
            assert view.visitor_id < 0
            assert sports_nodes.intersection(view.publisher.topics)

    def test_bot_bursts_have_short_gaps(self, simulator, bots):
        views = list(simulator.stream([], [bots[0]], START, START + DAY,
                                      random.Random(12)))
        gaps = [b.timestamp - a.timestamp for a, b in zip(views, views[1:])]
        short = sum(1 for gap in gaps if gap < 30)
        assert short > len(gaps) * 0.4

    def test_fleet_focus_limits_distinct_publishers(self, universe, lexicon,
                                                    registry):
        config = BotConfig(bots_per_fleet=15, fleet_count=1,
                           daily_pageviews_min=60, daily_pageviews_max=90,
                           target_profile=(("sports", 1.0),),
                           fleet_focus_size=5)
        bots = BotFleet(random.Random(53), registry, config=config).bots
        simulator = BrowsingSimulator(universe, lexicon.tree)
        views = list(simulator.stream([], bots, START, START + DAY,
                                      random.Random(13)))
        domains = {view.publisher.domain for view in views}
        assert len(domains) <= 5

    def test_mixed_stream_merges_in_time_order(self, simulator, population,
                                               bots):
        humans = population.in_country("ES")[:20]
        timestamps = [view.timestamp for view in simulator.stream(
            humans, bots, START, START + DAY, random.Random(14))]
        assert timestamps == sorted(timestamps)
