"""Tests for repro.web.users."""

import random

import pytest

from repro.web.users import Device, PopulationConfig, UserPopulation


class TestPopulationConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PopulationConfig(users_per_country=0)
        with pytest.raises(ValueError):
            PopulationConfig(nat_fraction=2.0)
        with pytest.raises(ValueError):
            PopulationConfig(nat_group_size=1)
        with pytest.raises(ValueError):
            PopulationConfig(pareto_alpha=1.0)
        with pytest.raises(ValueError):
            PopulationConfig(interests_min=3, interests_max=2)


class TestDevice:
    def test_validation(self):
        with pytest.raises(ValueError):
            Device(user_id=1, country="ES", ip="2.0.0.1", user_agents=(),
                   interests=(), daily_pageviews=10.0, engagement=1.0)
        with pytest.raises(ValueError):
            Device(user_id=1, country="ES", ip="2.0.0.1", user_agents=("ua",),
                   interests=(), daily_pageviews=0.0, engagement=1.0)

    def test_pick_user_agent_prefers_primary(self):
        device = Device(user_id=1, country="ES", ip="2.0.0.1",
                        user_agents=("primary", "secondary"),
                        interests=(), daily_pageviews=10.0, engagement=1.0)
        rng = random.Random(0)
        picks = [device.pick_user_agent(rng) for _ in range(500)]
        assert picks.count("primary") > picks.count("secondary") * 2


class TestPopulation:
    def test_population_size_per_country(self, population):
        for country in ("ES", "RU", "US"):
            assert len(population.in_country(country)) == 150
        assert len(population) == 450

    def test_user_ids_unique(self, population):
        ids = [device.user_id for device in population.devices]
        assert len(ids) == len(set(ids))

    def test_ips_come_from_country_providers(self, population, registry):
        for country in ("ES", "RU", "US"):
            providers = registry.access_providers(country)
            blocks = [block for provider in providers
                      for block in provider.blocks]
            for device in population.in_country(country)[:25]:
                assert any(block.contains(device.ip) for block in blocks)

    def test_nat_devices_share_ips(self, population):
        nat_devices = [d for d in population.devices if d.behind_nat]
        assert nat_devices, "expected some NAT users"
        by_ip = {}
        for device in nat_devices:
            by_ip.setdefault(device.ip, []).append(device)
        assert any(len(group) >= 2 for group in by_ip.values())

    def test_unique_ips_fewer_than_devices(self, population):
        assert len(population.unique_ips()) < len(population)

    def test_activity_is_heavy_tailed(self, population):
        daily = sorted(d.daily_pageviews for d in population.devices)
        median = daily[len(daily) // 2]
        assert daily[-1] > median * 5

    def test_everyone_has_interests(self, population, lexicon):
        for device in population.devices:
            assert device.interests
            for interest in device.interests:
                assert interest in lexicon.tree

    def test_sports_interests_more_common_than_science(self, population, lexicon):
        tree = lexicon.tree
        sports_nodes = set(tree.subtree("sports"))
        science_nodes = set(tree.subtree("science"))
        sports_users = sum(
            1 for d in population.devices
            if sports_nodes.intersection(d.interests))
        science_users = sum(
            1 for d in population.devices
            if science_nodes.intersection(d.interests))
        assert sports_users > science_users * 2

    def test_missing_country_providers_rejected(self, registry, lexicon):
        with pytest.raises(ValueError):
            UserPopulation(random.Random(0), registry, lexicon.tree,
                           countries=("DE",))
