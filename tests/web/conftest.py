"""Shared fixtures for the web-ecosystem tests: a small deterministic world."""

import pytest

from repro.geo.providers import ProviderRegistry
from repro.taxonomy.lexicon import build_default_lexicon
from repro.util.rng import RngFactory
from repro.web.population import PublisherUniverse, UniverseConfig
from repro.web.users import PopulationConfig, UserPopulation


@pytest.fixture(scope="module")
def rngs():
    return RngFactory(seed=99)


@pytest.fixture(scope="module")
def lexicon():
    return build_default_lexicon()


@pytest.fixture(scope="module")
def universe(rngs, lexicon):
    return PublisherUniverse(rngs.stream("pubs"),
                             UniverseConfig(publisher_count=600),
                             lexicon=lexicon)


@pytest.fixture(scope="module")
def registry(rngs):
    return ProviderRegistry(rngs.stream("prov"))


@pytest.fixture(scope="module")
def population(rngs, registry, lexicon):
    return UserPopulation(rngs.stream("users"), registry, lexicon.tree,
                          config=PopulationConfig(users_per_country=150))
