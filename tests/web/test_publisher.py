"""Tests for repro.web.publisher."""

import pytest

from repro.web.publisher import Publisher, domain_of_url


def make_publisher(**overrides):
    defaults = dict(domain="futbol1.es", global_rank=500, country_focus="ES",
                    topics=("football",), keywords=("football", "soccer"))
    defaults.update(overrides)
    return Publisher(**defaults)


class TestPublisher:
    def test_valid_construction(self):
        publisher = make_publisher()
        assert publisher.domain == "futbol1.es"

    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError):
            make_publisher(domain="nodots")
        with pytest.raises(ValueError):
            make_publisher(domain="")

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError):
            make_publisher(global_rank=0)

    def test_rejects_empty_topics(self):
        with pytest.raises(ValueError):
            make_publisher(topics=())

    def test_rejects_bad_premium_demand(self):
        with pytest.raises(ValueError):
            make_publisher(premium_demand=1.5)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            make_publisher(ad_slots=0)

    def test_url_for_page_contains_domain_and_topic(self):
        url = make_publisher().url_for_page(7)
        assert url.startswith("http://futbol1.es/")
        assert "football" in url

    def test_url_for_page_rejects_negative(self):
        with pytest.raises(ValueError):
            make_publisher().url_for_page(-1)

    def test_matches_keyword_case_insensitive(self):
        publisher = make_publisher()
        assert publisher.matches_keyword("FOOTBALL")
        assert publisher.matches_keyword("  soccer ")
        assert not publisher.matches_keyword("tennis")


class TestDomainOfUrl:
    def test_extracts_domain_from_url(self):
        assert domain_of_url("http://futbol1.es/liga/article-3.html") == "futbol1.es"

    def test_strips_port(self):
        assert domain_of_url("http://example.com:8080/x") == "example.com"

    def test_accepts_bare_domain(self):
        assert domain_of_url("Example.COM") == "example.com"

    def test_https_scheme(self):
        assert domain_of_url("https://a.b.c/d") == "a.b.c"

    def test_roundtrip_with_publisher_urls(self):
        publisher = make_publisher()
        assert domain_of_url(publisher.url_for_page(42)) == publisher.domain

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            domain_of_url("")
        with pytest.raises(ValueError):
            domain_of_url("http:///path")
