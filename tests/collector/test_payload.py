"""Tests for repro.collector.payload — the beacon wire format."""

import pytest

from repro.beacon.events import (
    BeaconObservation,
    InteractionEvent,
    InteractionKind,
)
from repro.collector.payload import (
    HelloMessage,
    InteractionMessage,
    PayloadError,
    encode_hello,
    encode_interaction,
    parse_message,
)


def make_observation(**overrides):
    defaults = dict(
        campaign_id="Research-010",
        creative_id="Research-010-creative",
        page_url="http://diario1.es/news/article-9.html",
        user_agent="Mozilla/5.0 (X11; Linux x86_64)",
        interactions=(),
        exposure_seconds=4.0,
    )
    defaults.update(overrides)
    return BeaconObservation(**defaults)


class TestHelloRoundtrip:
    def test_basic_roundtrip(self):
        observation = make_observation()
        message = parse_message(encode_hello(observation))
        assert isinstance(message, HelloMessage)
        assert message.campaign_id == "Research-010"
        assert message.url == observation.page_url
        assert message.user_agent == observation.user_agent

    def test_delimiters_in_values_survive(self):
        observation = make_observation(
            page_url="http://evil.es/a|b=c/article.html",
            user_agent="UA|with=delims%stuff")
        message = parse_message(encode_hello(observation))
        assert message.url == "http://evil.es/a|b=c/article.html"
        assert message.user_agent == "UA|with=delims%stuff"

    def test_unicode_values_survive(self):
        observation = make_observation(user_agent="Môzillä/5.0 ñ €")
        message = parse_message(encode_hello(observation))
        assert message.user_agent == "Môzillä/5.0 ñ €"


class TestInteractionRoundtrip:
    def test_mouse_move(self):
        event = InteractionEvent(InteractionKind.MOUSE_MOVE, 3.217)
        message = parse_message(encode_interaction(event))
        assert isinstance(message, InteractionMessage)
        assert message.kind is InteractionKind.MOUSE_MOVE
        assert message.offset_seconds == pytest.approx(3.217)

    def test_click(self):
        event = InteractionEvent(InteractionKind.CLICK, 0.0)
        message = parse_message(encode_interaction(event))
        assert message.kind is InteractionKind.CLICK


class TestParseErrors:
    @pytest.mark.parametrize("raw", [
        "",
        "NOPE|v=1",
        "HELLO",                                  # missing fields
        "HELLO|v=2|cid=a|cr=b|url=u|ua=x",        # bad version
        "HELLO|v=1|cid=a|cr=b|ua=x",              # missing url
        "HELLO|v=1|cid=|cr=b|url=u|ua=x",         # empty campaign
        "HELLO|v=1|cid=a|cid=b|cr=c|url=u|ua=x",  # duplicate field
        "HELLO|v=1|garbage|cr=c|url=u|ua=x",      # field without '='
        "EVT|kind=mousemove",                     # missing timestamp
        "EVT|t=1.0",                              # missing kind
        "EVT|kind=teleport|t=1.0",                # unknown kind
        "EVT|kind=click|t=abc",                   # bad timestamp
        "EVT|kind=click|t=-1.0",                  # negative timestamp
    ])
    def test_malformed_messages_rejected(self, raw):
        with pytest.raises(PayloadError):
            parse_message(raw)


class TestSafeFramePixelFlag:
    def test_pv_roundtrip_true_false(self):
        for value in (True, False):
            observation = make_observation(pixels_in_view=value)
            message = parse_message(encode_hello(observation))
            assert message.pixels_in_view is value

    def test_pv_absent_when_unmeasurable(self):
        observation = make_observation()          # pixels_in_view=None
        wire = encode_hello(observation)
        assert "pv=" not in wire
        assert parse_message(wire).pixels_in_view is None

    def test_bad_pv_value_rejected(self):
        wire = encode_hello(make_observation()) + "|pv=2"
        with pytest.raises(PayloadError):
            parse_message(wire)
