"""Fast-path equivalence for the beacon payload codec.

The collector's hot path skips the urllib codec when a value contains no
reserved characters and decodes canonical ``EVT`` messages with a single
partition.  Every observable behaviour — encoded bytes, parsed values,
and error type/message — must be identical to the reference path.
"""

import pytest

from repro.beacon.events import (
    BeaconObservation,
    InteractionEvent,
    InteractionKind,
)
from repro.collector.payload import (
    PayloadError,
    _quote,
    _quote_reference,
    _unquote,
    _unquote_reference,
    encode_hello,
    encode_interaction,
    parse_message,
)
from repro.util import hotpath

TRICKY_VALUES = [
    "",
    "plain-value_1.2~ok",
    "has space",
    "pipe|and=equals",
    "percent%41already",
    "%",
    "%%",
    "100%",
    "a+b",
    "ünïcode-ño",
    "http://example.es/path?q=1&r=2",
    "\x1f\x00\n\t",
    "trailing%",
    "%2",
    "%GG",
]


class TestQuoteUnquoteEquivalence:
    @pytest.mark.parametrize("value", TRICKY_VALUES)
    def test_quote_matches_reference(self, value):
        assert _quote(value) == _quote_reference(value)

    @pytest.mark.parametrize("value", TRICKY_VALUES)
    def test_unquote_matches_reference(self, value):
        assert _unquote(value) == _unquote_reference(value)

    @pytest.mark.parametrize("value", TRICKY_VALUES)
    def test_roundtrip_through_fast_paths(self, value):
        assert _unquote(_quote(value)) == value

    def test_safe_value_is_returned_unchanged(self):
        value = "Research-010_creative.v2~x"
        assert _quote(value) is value
        assert _unquote(value) is value


class TestEncodeEquivalence:
    def test_hello_wire_identical_between_modes(self):
        observation = BeaconObservation(
            campaign_id="Football-010", creative_id="Football-010-creative",
            page_url="http://futbol9.es/page/3?ref=a&b=c",
            user_agent="Mozilla/5.0 (X11; Linux x86_64) Chrome/50",
            interactions=(), exposure_seconds=2.0, pixels_in_view=True)
        optimized = encode_hello(observation)
        with hotpath.reference_hotpaths():
            reference = encode_hello(observation)
        assert optimized == reference
        assert parse_message(optimized) == parse_message(reference)


class TestEvtFastPath:
    @pytest.mark.parametrize("raw", [
        "EVT|kind=click|t=6.004",
        "EVT|kind=mousemove|t=0.000",
        "EVT|kind=mousemove|t=86400.125",
    ])
    def test_canonical_messages_parse_identically(self, raw):
        optimized = parse_message(raw)
        with hotpath.reference_hotpaths():
            reference = parse_message(raw)
        assert optimized == reference

    @pytest.mark.parametrize("raw", [
        "EVT|kind=click",                       # missing timestamp
        "EVT|kind=click|t=",                    # empty timestamp
        "EVT|kind=|t=1.0",                      # empty kind
        "EVT|kind=teleport|t=1.0",              # unknown kind
        "EVT|kind=click|t=abc",                 # non-numeric timestamp
        "EVT|kind=click|t=-1.0",                # negative timestamp
        "EVT|kind=click|t=1.0|t=2.0",           # duplicate field
        "EVT|kind=click|kind=click|t=1.0",      # duplicate kind
        "EVT|kind=click|t=1.0|",                # trailing delimiter
        "EVT|kind=click|t=1.0|extra",           # malformed extra field
    ])
    def test_error_messages_identical_to_reference(self, raw):
        with pytest.raises(PayloadError) as optimized:
            parse_message(raw)
        with hotpath.reference_hotpaths():
            with pytest.raises(PayloadError) as reference:
                parse_message(raw)
        assert str(optimized.value) == str(reference.value)

    def test_roundtrip_with_fast_path(self):
        for kind in InteractionKind:
            message = parse_message(encode_interaction(
                InteractionEvent(kind, 3.2171)))
            assert message.kind is kind
            assert message.offset_seconds == pytest.approx(3.217, abs=5e-4)
