"""Tests for repro.collector.store — the impression database."""

import json

import pytest

from repro.collector.store import (
    ImpressionRecord,
    ImpressionStore,
    StoreSealedError,
)


def make_record(record_id=1, campaign="Research-010", domain="diario1.es",
                ip="2.0.0.1", ua="UA-1", timestamp=1000.0, exposure=3.0,
                **overrides):
    defaults = dict(
        record_id=record_id,
        campaign_id=campaign,
        creative_id=f"{campaign}-creative",
        url=f"http://{domain}/news/article-1.html",
        user_agent=ua,
        ip=ip,
        timestamp=timestamp,
        exposure_seconds=exposure,
    )
    defaults.update(overrides)
    return ImpressionRecord(**defaults)


class TestImpressionRecord:
    def test_domain_extraction(self):
        assert make_record().domain == "diario1.es"

    def test_user_key_combines_ip_and_ua(self):
        a = make_record(ip="1.1.1.1", ua="UA-1")
        b = make_record(ip="1.1.1.1", ua="UA-2")
        assert a.user_key != b.user_key

    def test_user_key_prefers_token_after_anonymisation(self):
        record = make_record(ip="", ip_token="abcd1234abcd1234")
        assert record.user_key.startswith("abcd1234abcd1234")

    def test_viewable_upper_bound(self):
        assert make_record(exposure=1.0).viewable_upper_bound
        assert not make_record(exposure=0.99).viewable_upper_bound

    @pytest.mark.parametrize("overrides", [
        {"record_id": 0},
        {"campaign_id": ""},
        {"url": ""},
        {"exposure_seconds": -1.0},
        {"mouse_moves": -1},
        {"ip": ""},                       # no ip and no token
    ])
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            make_record(**overrides)


class TestImpressionStore:
    def test_insert_enforces_sequential_ids(self):
        store = ImpressionStore()
        store.insert(make_record(record_id=store.next_record_id()))
        with pytest.raises(ValueError):
            store.insert(make_record(record_id=5))

    def test_len_and_iteration(self):
        store = ImpressionStore()
        for _ in range(3):
            store.insert(make_record(record_id=store.next_record_id()))
        assert len(store) == 3
        assert len(list(store)) == 3

    def test_campaigns_in_first_seen_order(self):
        store = ImpressionStore()
        for campaign in ("B", "A", "B", "C"):
            store.insert(make_record(record_id=store.next_record_id(),
                                     campaign=campaign))
        assert store.campaigns() == ["B", "A", "C"]

    def test_by_campaign(self):
        store = ImpressionStore()
        for campaign in ("A", "B", "A"):
            store.insert(make_record(record_id=store.next_record_id(),
                                     campaign=campaign))
        assert len(store.by_campaign("A")) == 2
        assert store.by_campaign("missing") == []

    def test_distinct_domains(self):
        store = ImpressionStore()
        for domain in ("a.es", "b.es", "a.es"):
            store.insert(make_record(record_id=store.next_record_id(),
                                     domain=domain))
        assert store.distinct_domains() == {"a.es", "b.es"}

    def test_by_user_grouping(self):
        store = ImpressionStore()
        for ip, ua in (("1.1.1.1", "X"), ("1.1.1.1", "X"), ("1.1.1.1", "Y")):
            store.insert(make_record(record_id=store.next_record_id(),
                                     ip=ip, ua=ua))
        grouped = store.by_user()
        assert sorted(len(records) for records in grouped.values()) == [1, 2]

    def test_where_predicate(self):
        store = ImpressionStore()
        store.insert(make_record(record_id=1, exposure=0.5))
        store.insert(make_record(record_id=2, exposure=5.0))
        viewable = store.where(lambda record: record.viewable_upper_bound)
        assert [record.record_id for record in viewable] == [2]

    def test_replace_at_updates_in_place(self):
        store = ImpressionStore()
        store.insert(make_record(record_id=1))
        store.replace_at(0, make_record(record_id=1, exposure=9.0))
        assert next(iter(store)).exposure_seconds == 9.0


class TestPersistence:
    def test_jsonl_roundtrip(self, tmp_path):
        store = ImpressionStore()
        store.insert(make_record(record_id=1, ip="", ip_token="t" * 16,
                                 is_datacenter=True, dc_stage="denylist",
                                 global_rank=42))
        store.insert(make_record(record_id=2, mouse_moves=3, clicks=1,
                                 truncated=True))
        path = tmp_path / "impressions.jsonl"
        assert store.dump_jsonl(path) == 2
        loaded = ImpressionStore.load_jsonl(path)
        assert len(loaded) == 2
        original = list(store)
        restored = list(loaded)
        assert original == restored

    def test_load_rejects_corrupt_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"not": "a record"}\n')
        with pytest.raises(ValueError):
            ImpressionStore.load_jsonl(path)

    def test_load_skips_blank_lines(self, tmp_path):
        store = ImpressionStore()
        store.insert(make_record(record_id=1))
        path = tmp_path / "ok.jsonl"
        store.dump_jsonl(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(ImpressionStore.load_jsonl(path)) == 1

    def test_filtered_dump_with_gapped_ids_reloads(self):
        # Regression: a dump made from a filtered store (ids 2, 5, 9 —
        # non-contiguous, first id > 1) used to be rejected on reload.
        store = ImpressionStore()
        for index in range(1, 10):
            store.insert(make_record(record_id=index,
                                     exposure=float(index)))
        text = "\n".join(
            line for line in store.dumps_jsonl().splitlines()
            if json.loads(line)["record_id"] in (2, 5, 9)) + "\n"
        loaded = ImpressionStore.loads_jsonl(text)
        assert [record.record_id for record in loaded] == [2, 5, 9]
        assert loaded.next_record_id() == 10

    def test_loaded_store_allocates_after_max_id(self):
        store = ImpressionStore()
        store.insert(make_record(record_id=1))
        store.insert(make_record(record_id=2))
        loaded = ImpressionStore.loads_jsonl(store.dumps_jsonl())
        loaded.insert(make_record(record_id=loaded.next_record_id()))
        assert [record.record_id for record in loaded] == [1, 2, 3]

    def test_load_rejects_non_increasing_ids(self):
        store = ImpressionStore()
        store.insert(make_record(record_id=1))
        store.insert(make_record(record_id=2))
        lines = store.dumps_jsonl().splitlines()
        decreasing = "\n".join([lines[1], lines[0]]) + "\n"
        with pytest.raises(ValueError, match="strictly increasing"):
            ImpressionStore.loads_jsonl(decreasing)

    def test_load_rejects_duplicate_ids_distinctly(self):
        # A repeated id is its own error class (satellite of the fault
        # layer: duplicate records are a dedup bug, not a sort bug) and
        # names the offending line and id.
        store = ImpressionStore()
        store.insert(make_record(record_id=1))
        line = store.dumps_jsonl()
        with pytest.raises(ValueError,
                           match=r"<string>:2: duplicate record id 1"):
            ImpressionStore.loads_jsonl(line + line)

    def test_string_and_path_roundtrips_agree(self, tmp_path):
        store = ImpressionStore()
        store.insert(make_record(record_id=1, mouse_moves=2))
        path = tmp_path / "impressions.jsonl"
        store.dump_jsonl(path)
        assert path.read_text(encoding="utf-8") == store.dumps_jsonl()


class TestMergeSupport:
    def test_extend_reindexed_renumbers_contiguously(self):
        left = ImpressionStore()
        left.insert(make_record(record_id=1, campaign="A"))
        right = ImpressionStore()
        right.insert(make_record(record_id=1, campaign="B"))
        right.insert(make_record(record_id=2, campaign="B"))
        merged = ImpressionStore()
        assert merged.extend_reindexed(left) == 1
        assert merged.extend_reindexed(right) == 2
        assert [record.record_id for record in merged] == [1, 2, 3]
        assert merged.campaigns() == ["A", "B"]

    def test_merged_dump_roundtrips(self):
        merged = ImpressionStore()
        for campaign in ("A", "B", "C"):
            source = ImpressionStore()
            source.insert(make_record(record_id=1, campaign=campaign))
            merged.extend_reindexed(source)
        loaded = ImpressionStore.loads_jsonl(merged.dumps_jsonl())
        assert list(loaded) == list(merged)


class TestSealing:
    def test_sealed_store_rejects_insert(self):
        store = ImpressionStore()
        store.insert(make_record(record_id=1))
        assert store.seal() is store
        assert store.sealed
        with pytest.raises(StoreSealedError):
            store.insert(make_record(record_id=2))

    def test_sealed_store_rejects_replace(self):
        store = ImpressionStore()
        store.insert(make_record(record_id=1))
        store.seal()
        with pytest.raises(StoreSealedError):
            store.replace_at(0, make_record(record_id=1, exposure=9.0))

    def test_sealed_store_still_queryable_and_dumpable(self):
        store = ImpressionStore()
        store.insert(make_record(record_id=1))
        store.seal()
        assert len(store) == 1
        assert store.campaigns() == ["Research-010"]
        assert store.dumps_jsonl()

    def test_loaded_copy_of_sealed_store_is_mutable(self):
        store = ImpressionStore()
        store.insert(make_record(record_id=1))
        store.seal()
        copy = ImpressionStore.loads_jsonl(store.dumps_jsonl())
        copy.insert(make_record(record_id=copy.next_record_id()))
        assert len(copy) == 2
