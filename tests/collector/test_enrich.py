"""Tests for repro.collector.enrich — metadata first, anonymise second."""

import random

import pytest

from repro.collector.enrich import Enricher
from repro.collector.store import ImpressionRecord, ImpressionStore
from repro.geo.denylist import DenyList
from repro.geo.ipdb import GeoIpDatabase
from repro.geo.providers import ProviderRegistry
from repro.geo.resolver import DataCenterResolver
from repro.web.publisher import Publisher
from repro.web.ranking import RankingService


@pytest.fixture
def world():
    registry = ProviderRegistry(random.Random(91))
    ipdb = GeoIpDatabase(registry)
    resolver = DataCenterResolver(ipdb, DenyList.from_registry(registry))
    publisher = Publisher(domain="diario5.es", global_rank=777,
                          country_focus="ES", topics=("news",),
                          keywords=("news",))
    ranking = RankingService([publisher])
    return registry, Enricher(ipdb, resolver, ranking, salt="test")


def insert_record(store, ip, domain="diario5.es"):
    store.insert(ImpressionRecord(
        record_id=store.next_record_id(),
        campaign_id="C",
        creative_id="C-creative",
        url=f"http://{domain}/news/article-1.html",
        user_agent="UA",
        ip=ip,
        timestamp=1000.0,
        exposure_seconds=2.0,
    ))


class TestEnricher:
    def test_enrichment_fills_metadata_then_anonymises(self, world):
        registry, enricher = world
        store = ImpressionStore()
        isp = registry.access_providers("ES")[0]
        insert_record(store, isp.blocks[0].nth(10))
        assert enricher.enrich_store(store) == 1
        record = next(iter(store))
        assert record.ip == ""                      # raw IP gone
        assert len(record.ip_token) == 16           # token present
        assert record.provider == isp.name
        assert record.country == "ES"
        assert record.is_datacenter is False
        assert record.global_rank == 777

    def test_datacenter_ip_flagged(self, world):
        registry, enricher = world
        store = ImpressionStore()
        dc = registry.datacenter_providers(include_vpn=False)[0]
        insert_record(store, dc.blocks[0].nth(3))
        enricher.enrich_store(store)
        record = next(iter(store))
        assert record.is_datacenter is True
        assert record.dc_stage in ("denylist", "manual")

    def test_unknown_domain_gets_no_rank(self, world):
        registry, enricher = world
        store = ImpressionStore()
        insert_record(store, registry.access_providers("ES")[0].blocks[0].nth(1),
                      domain="unknown-site.org")
        enricher.enrich_store(store)
        assert next(iter(store)).global_rank is None

    def test_idempotent(self, world):
        registry, enricher = world
        store = ImpressionStore()
        insert_record(store, registry.access_providers("ES")[0].blocks[0].nth(2))
        assert enricher.enrich_store(store) == 1
        assert enricher.enrich_store(store) == 0

    def test_same_ip_same_token_links_users(self, world):
        registry, enricher = world
        store = ImpressionStore()
        ip = registry.access_providers("ES")[0].blocks[0].nth(4)
        insert_record(store, ip)
        insert_record(store, ip)
        enricher.enrich_store(store)
        records = list(store)
        assert records[0].ip_token == records[1].ip_token

    def test_different_salt_unlinks_datasets(self, world):
        registry, _ = world
        ipdb = GeoIpDatabase(registry)
        resolver = DataCenterResolver(ipdb, DenyList.from_registry(registry))
        ranking = RankingService([])
        ip = registry.access_providers("ES")[0].blocks[0].nth(5)
        tokens = []
        for salt in ("a", "b"):
            store = ImpressionStore()
            insert_record(store, ip, domain="x.org")
            Enricher(ipdb, resolver, ranking, salt=salt).enrich_store(store)
            tokens.append(next(iter(store)).ip_token)
        assert tokens[0] != tokens[1]
