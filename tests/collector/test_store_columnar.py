"""Columnar-vs-reference store equivalence and the raw-column surfaces.

The columnar backing is only correct if it is *indistinguishable* from
the row-backed reference store everywhere the repo's determinism
contract looks: JSONL bytes, query results, counters, and the raw-column
transfer the shard merge rides on.  These tests pin that equivalence —
property-based over generated record populations (gapped ids, enriched
and raw records, empty stores) plus directed tests for the new mutation
paths (``enrich_at``, ``absorb_columns``) and their sealed-store guards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

import pytest

from repro.collector.store import (
    ImpressionRecord,
    StoreSealedError,
    _ColumnarStore,
    _RowStore,
)
from repro.obs.metrics import MetricsRegistry

BACKENDS = (_ColumnarStore, _RowStore)

domains = st.sampled_from(["news.example", "blog.example", "video.example"])
campaign_ids = st.sampled_from(["c-sports", "c-travel", "c-tech"])
user_agents = st.sampled_from(["UA-firefox", "UA-chrome", "UA-bot"])
ips = st.sampled_from(["10.0.0.1", "10.0.0.2", "192.0.2.7"])

raw_records = st.builds(
    dict,
    campaign_id=campaign_ids,
    creative_id=st.sampled_from(["cr-1", "cr-2"]),
    domain=domains,
    user_agent=user_agents,
    ip=ips,
    timestamp=st.floats(min_value=1_000.0, max_value=2_000.0,
                        allow_nan=False),
    exposure_seconds=st.floats(min_value=0.0, max_value=30.0,
                               allow_nan=False),
    mouse_moves=st.integers(min_value=0, max_value=50),
    clicks=st.integers(min_value=0, max_value=3),
    truncated=st.booleans(),
    pixels_in_view=st.sampled_from([None, True, False]),
)

enrichments = st.builds(
    dict,
    ip_token=st.sampled_from(["tok-aaaa", "tok-bbbb", "tok-cccc"]),
    provider=st.sampled_from(["ISP One", "Hosting Co", ""]),
    country=st.sampled_from(["ES", "DE", ""]),
    global_rank=st.sampled_from([None, 1, 500, 1_000_000]),
    is_datacenter=st.sampled_from([None, True, False]),
    dc_stage=st.sampled_from(["", "maxmind", "denylist"]),
)

populations = st.lists(
    st.tuples(raw_records, st.none() | enrichments),
    min_size=0, max_size=20)


def build_record(record_id, fields, enrichment):
    values = dict(fields)
    domain = values.pop("domain")
    values["url"] = f"https://{domain}/page-{record_id}"
    if enrichment is not None:
        values.update(enrichment)
        values["ip"] = ""
    return ImpressionRecord(record_id=record_id, **values)


def fill(store, population):
    for fields, enrichment in population:
        store.insert(build_record(store.next_record_id(), fields,
                                  enrichment))
    return store


class TestBackendEquivalence:
    @given(populations)
    @settings(max_examples=60, deadline=None)
    def test_dumps_jsonl_byte_identical(self, population):
        columnar = fill(_ColumnarStore(), population)
        reference = fill(_RowStore(), population)
        assert columnar.dumps_jsonl() == reference.dumps_jsonl()

    @given(populations)
    @settings(max_examples=40, deadline=None)
    def test_queries_agree(self, population):
        columnar = fill(_ColumnarStore(), population)
        reference = fill(_RowStore(), population)
        assert columnar.campaigns() == reference.campaigns()
        assert columnar.distinct_domains() == reference.distinct_domains()
        for campaign_id in reference.campaigns() + ["c-unknown"]:
            assert columnar.by_campaign(campaign_id) \
                == reference.by_campaign(campaign_id)
            assert columnar.count_for(campaign_id) \
                == reference.count_for(campaign_id)
            assert columnar.distinct_domains(campaign_id) \
                == reference.distinct_domains(campaign_id)
        assert columnar.by_user() == reference.by_user()
        # ... and identically once sealed (indexes replace the scans).
        columnar.seal()
        assert columnar.campaigns() == reference.campaigns()
        assert columnar.by_user() == reference.by_user()
        for campaign_id in reference.campaigns() + ["c-unknown"]:
            assert columnar.by_campaign(campaign_id) \
                == reference.by_campaign(campaign_id)
            assert columnar.distinct_domains(campaign_id) \
                == reference.distinct_domains(campaign_id)
            assert columnar.by_user(campaign_id) \
                == reference.by_user(campaign_id)

    @given(populations)
    @settings(max_examples=40, deadline=None)
    def test_select_agrees(self, population):
        fields = ("record_id", "campaign_id", "domain", "user_key",
                  "identity", "exposure_seconds", "truncated",
                  "pixels_in_view", "global_rank", "is_datacenter",
                  "clicks", "timestamp", "dc_stage")
        columnar = fill(_ColumnarStore(), population)
        reference = fill(_RowStore(), population)
        assert columnar.select(None, *fields) \
            == reference.select(None, *fields)
        for campaign_id in reference.campaigns():
            assert columnar.select(campaign_id, *fields) \
                == reference.select(campaign_id, *fields)

    @given(populations)
    @settings(max_examples=40, deadline=None)
    def test_column_payload_crosses_backends(self, population):
        # A payload exported by either backend absorbs into either
        # backend, and every combination serialises identically.
        dumps = []
        for exporter in BACKENDS:
            payload = fill(exporter(), population).export_columns()
            for absorber in BACKENDS:
                target = absorber()
                target.absorb_columns(payload)
                dumps.append(target.dumps_jsonl())
        assert len(set(dumps)) == 1

    @given(populations)
    @settings(max_examples=30, deadline=None)
    def test_jsonl_round_trip_with_gapped_ids(self, population):
        import json

        for backend in BACKENDS:
            store = fill(backend(), population)
            # Keep every third record: ids become non-contiguous.
            kept = [line for index, line
                    in enumerate(store.dumps_jsonl().splitlines())
                    if index % 3 == 0]
            text = "".join(line + "\n" for line in kept)
            loaded = backend.loads_jsonl(text)
            assert loaded.dumps_jsonl() == text
            assert [record.record_id for record in loaded] \
                == [json.loads(line)["record_id"] for line in kept]


class TestSelectValidation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_unknown_field_rejected(self, backend):
        store = backend()
        with pytest.raises(ValueError, match="unknown select field"):
            store.select(None, "no_such_column")


def make_record(record_id, campaign="c-sports", **overrides):
    values = dict(
        record_id=record_id, campaign_id=campaign, creative_id="cr-1",
        url=f"https://news.example/p{record_id}", user_agent="UA",
        ip="10.0.0.1", timestamp=1_000.0 + record_id,
        exposure_seconds=2.0)
    values.update(overrides)
    return ImpressionRecord(**values)


class TestSealedMutation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_write_paths_raise_once_sealed(self, backend):
        store = backend()
        store.insert(make_record(1))
        payload = store.export_columns()
        store.seal()
        with pytest.raises(StoreSealedError):
            store.insert(make_record(2))
        with pytest.raises(StoreSealedError):
            store.replace_at(0, make_record(1, clicks=1))
        with pytest.raises(StoreSealedError):
            store.extend_reindexed([make_record(2)])
        with pytest.raises(StoreSealedError):
            store.absorb_columns(payload)
        with pytest.raises(StoreSealedError):
            store.enrich_at(0, ip_token="tok", provider="", country="",
                            global_rank=None, is_datacenter=False,
                            dc_stage="")

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_enrich_at_writes_columns_in_place(self, backend):
        store = backend()
        store.insert(make_record(1))
        store.enrich_at(0, ip_token="tok-1234", provider="ISP",
                        country="ES", global_rank=42, is_datacenter=True,
                        dc_stage="maxmind")
        record = next(iter(store))
        assert record.ip == ""
        assert record.ip_token == "tok-1234"
        assert record.provider == "ISP"
        assert record.global_rank == 42
        assert record.is_datacenter is True
        assert record.dc_stage == "maxmind"


class _SpyTracer:
    """Captures (name, attrs) of every event the store emits."""

    now = 0.0

    def __init__(self):
        self.events = []

    def event(self, name, at, **attrs):
        self.events.append((name, attrs))


class TestCounterAccounting:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_loads_jsonl_counts_appends(self, backend):
        # Regression: loads_jsonl used to bypass the appends counter, so
        # a loaded store reported 0 appends no matter its size.
        source = backend()
        for record_id in (1, 2, 3):
            source.insert(make_record(record_id))
        loaded = backend.loads_jsonl(source.dumps_jsonl())
        assert loaded._appends.value == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_extend_reindexed_counts_batch(self, backend):
        tracer = _SpyTracer()
        store = backend(metrics=MetricsRegistry(), tracer=tracer)
        added = store.extend_reindexed(
            [make_record(7), make_record(9)])
        assert added == 2
        assert store._appends.value == 2
        assert [record.record_id for record in store] == [1, 2]
        # One summarising store.extend event, no per-record store.commit.
        names = [name for name, _ in tracer.events]
        assert names == ["store.extend"]
        _, attrs = tracer.events[0]
        assert attrs["records"] == 2
        assert attrs["first_record"] == 1
        assert attrs["last_record"] == 2

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_absorb_columns_emits_one_extend_event(self, backend):
        source = backend()
        source.insert(make_record(1))
        source.insert(make_record(2))
        tracer = _SpyTracer()
        store = backend(metrics=MetricsRegistry(), tracer=tracer)
        store.absorb_columns(source.export_columns())
        assert [name for name, _ in tracer.events] == ["store.extend"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_insert_still_emits_per_record_commit(self, backend):
        # The per-record store.commit stream feeds the trace exports on
        # the shard path; bulk accounting must not change it.
        tracer = _SpyTracer()
        store = backend(metrics=MetricsRegistry(), tracer=tracer)
        store.insert(make_record(1))
        assert [name for name, _ in tracer.events] == ["store.commit"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_absorb_columns_matches_extend_reindexed(self, backend):
        payload_source = backend()
        payload_source.insert(make_record(1, campaign="c-travel"))
        payload_source.insert(make_record(2, clicks=2))
        payload = payload_source.export_columns()

        absorbed = backend()
        absorbed.insert(make_record(1))
        assert absorbed.absorb_columns(payload) == 2

        extended = backend()
        extended.insert(make_record(1))
        extended.extend_reindexed(list(payload_source))

        assert absorbed.dumps_jsonl() == extended.dumps_jsonl()
        assert absorbed.next_record_id() == extended.next_record_id() == 4
        assert absorbed._appends.value == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_absorb_rejects_malformed_payloads(self, backend):
        store = backend()
        with pytest.raises(ValueError, match="malformed"):
            store.absorb_columns(("nope",))
        good = backend().export_columns()
        with pytest.raises(ValueError, match="version"):
            store.absorb_columns((99,) + good[1:])


class TestEmptyStore:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_round_trips(self, backend):
        store = backend()
        assert store.dumps_jsonl() == ""
        loaded = backend.loads_jsonl("")
        assert len(loaded) == 0
        assert loaded.next_record_id() == 1
        other = backend()
        assert other.absorb_columns(store.export_columns()) == 0
        assert other._appends.value == 0
