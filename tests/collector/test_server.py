"""Tests for repro.collector.server — protocol handling on the server side."""

import random

import pytest

from repro.collector.server import CollectorServer
from repro.collector.store import ImpressionStore
from repro.net.transport import Endpoint, NetworkConditions, SimulatedNetwork
from repro.net.websocket import (
    Frame,
    Opcode,
    encode_frame,
    make_client_key,
    make_handshake_request,
)
from repro.util.simclock import SimClock

CLIENT = Endpoint(ip="2.0.0.9", port=50000)


@pytest.fixture
def setup():
    clock = SimClock(1000.0)
    store = ImpressionStore()
    network = SimulatedNetwork(clock, random.Random(81),
                               NetworkConditions(connect_failure_rate=0.0,
                                                 mid_stream_failure_rate=0.0))
    collector = CollectorServer(store)
    collector.attach(network)
    return collector, store, network


def open_connection(collector, network):
    connection = network.connect(CLIENT, collector.endpoint, at_time=1000.0)
    now = connection.opened_at_server
    key = make_client_key(random.Random(5))
    connection.client_send(make_handshake_request("h", "/beacon", key), now)
    collector.process(connection)
    return connection, now


def send_text(collector, connection, text, now):
    frame = encode_frame(Frame(Opcode.TEXT, text.encode("utf-8"), masked=True),
                         rng=random.Random(9))
    connection.client_send(frame, now)
    collector.process(connection)


HELLO = ("HELLO|v=1|cid=Research-010|cr=Research-010-creative"
         "|url=http%3A%2F%2Fdiario1.es%2Fn%2Fa-1.html|ua=Mozilla%2F5.0")


class TestHandshake:
    def test_valid_handshake_gets_101(self, setup):
        collector, _, network = setup
        connection, _ = open_connection(collector, network)
        response = connection.drain_client_inbox()
        assert b"101 Switching Protocols" in response

    def test_garbage_handshake_counted(self, setup):
        collector, store, network = setup
        connection = network.connect(CLIENT, collector.endpoint, at_time=1000.0)
        now = connection.opened_at_server
        connection.client_send(b"POST /x HTTP/1.1\r\nHost: h\r\n\r\n", now)
        collector.process(connection)
        assert collector.handshake_failures == 1
        connection.close(now + 1)
        assert collector.finalize(connection) is None
        assert len(store) == 0

    def test_split_handshake_reassembled(self, setup):
        collector, _, network = setup
        connection = network.connect(CLIENT, collector.endpoint, at_time=1000.0)
        now = connection.opened_at_server
        key = make_client_key(random.Random(6))
        request = make_handshake_request("h", "/beacon", key)
        connection.client_send(request[:20], now)
        collector.process(connection)
        connection.client_send(request[20:], now)
        collector.process(connection)
        assert b"101" in connection.drain_client_inbox()


class TestFrameHandling:
    def test_hello_then_close_commits_record(self, setup):
        collector, store, network = setup
        connection, now = open_connection(collector, network)
        send_text(collector, connection, HELLO, now)
        close = encode_frame(Frame(Opcode.CLOSE, b"", masked=True),
                             rng=random.Random(10))
        connection.client_send(close, now + 5.0)
        connection.close(now + 5.0)
        record = collector.finalize(connection)
        assert record is not None
        assert record.campaign_id == "Research-010"
        assert record.domain == "diario1.es"
        assert record.exposure_seconds == pytest.approx(5.0)
        assert not record.truncated
        assert collector.records_committed == 1

    def test_interactions_accumulate(self, setup):
        collector, store, network = setup
        connection, now = open_connection(collector, network)
        send_text(collector, connection, HELLO, now)
        send_text(collector, connection, "EVT|kind=mousemove|t=1.0", now + 1)
        send_text(collector, connection, "EVT|kind=mousemove|t=2.0", now + 2)
        send_text(collector, connection, "EVT|kind=click|t=3.0", now + 3)
        connection.close(now + 4)
        record = collector.finalize(connection)
        assert record.mouse_moves == 2
        assert record.clicks == 1

    def test_unmasked_client_frame_fails_session(self, setup):
        collector, store, network = setup
        connection, now = open_connection(collector, network)
        frame = encode_frame(Frame(Opcode.TEXT, HELLO.encode(), masked=False))
        connection.client_send(frame, now)
        collector.process(connection)
        connection.close(now + 1)
        assert collector.finalize(connection) is None
        assert collector.malformed_messages == 1

    def test_malformed_payload_dropped_but_session_continues(self, setup):
        collector, store, network = setup
        connection, now = open_connection(collector, network)
        send_text(collector, connection, "BOGUS|x=1", now)
        send_text(collector, connection, HELLO, now + 1)
        connection.close(now + 2)
        record = collector.finalize(connection)
        assert record is not None
        assert collector.malformed_messages == 1

    def test_duplicate_hello_counted_as_malformed(self, setup):
        collector, _, network = setup
        connection, now = open_connection(collector, network)
        send_text(collector, connection, HELLO, now)
        send_text(collector, connection, HELLO, now + 1)
        connection.close(now + 2)
        record = collector.finalize(connection)
        assert record is not None
        assert collector.malformed_messages == 1

    def test_no_hello_connection_counted(self, setup):
        collector, store, network = setup
        connection, now = open_connection(collector, network)
        connection.close(now + 2)
        assert collector.finalize(connection) is None
        assert collector.connections_without_hello == 1

    def test_network_close_marks_truncated(self, setup):
        collector, _, network = setup
        connection, now = open_connection(collector, network)
        send_text(collector, connection, HELLO, now)
        connection.close(now + 2, initiator="network")  # no CLOSE frame
        record = collector.finalize(connection)
        assert record.truncated

    def test_oversized_claimed_frame_counted_as_malformed(self, setup):
        # A hostile client claiming a huge payload length must fail the
        # session immediately (counted as malformed), not make the server
        # buffer bytes until the claim is satisfied.
        collector, store, network = setup
        connection, now = open_connection(collector, network)
        header = bytes([0x81 | 0x00, 0x80 | 127]) \
            + (1 << 30).to_bytes(8, "big") + b"\x01\x02\x03\x04"
        connection.client_send(header, now)
        collector.process(connection)
        assert collector.malformed_messages == 1
        connection.close(now + 1)
        assert collector.finalize(connection) is None
        assert len(store) == 0

    def test_ping_frames_ignored(self, setup):
        collector, _, network = setup
        connection, now = open_connection(collector, network)
        send_text(collector, connection, HELLO, now)
        ping = encode_frame(Frame(Opcode.PING, b"hi", masked=True),
                            rng=random.Random(11))
        connection.client_send(ping, now + 1)
        collector.process(connection)
        connection.close(now + 2)
        assert collector.finalize(connection) is not None
        assert collector.malformed_messages == 0


class TestFinalize:
    def test_finalize_open_connection_rejected(self, setup):
        collector, _, network = setup
        connection, _ = open_connection(collector, network)
        with pytest.raises(ValueError):
            collector.finalize(connection)
        # Session is retained for a later, correct finalize.
        assert collector.session_count() == 1

    def test_finalize_unknown_connection_is_noop(self, setup):
        collector, _, network = setup
        connection, now = open_connection(collector, network)
        connection.close(now + 1)
        collector.finalize(connection)
        assert collector.finalize(connection) is None

    def test_record_ids_are_sequential(self, setup):
        collector, store, network = setup
        for index in range(3):
            connection, now = open_connection(collector, network)
            send_text(collector, connection, HELLO, now)
            connection.close(now + 1)
            collector.finalize(connection)
        assert [record.record_id for record in store] == [1, 2, 3]


class TestFragmentedMessages:
    def test_fragmented_hello_reassembled(self, setup):
        collector, store, network = setup
        connection, now = open_connection(collector, network)
        payload = HELLO.encode("utf-8")
        half = len(payload) // 2
        rng = random.Random(21)
        first = encode_frame(Frame(Opcode.TEXT, payload[:half], fin=False,
                                   masked=True), rng=rng)
        rest = encode_frame(Frame(Opcode.CONTINUATION, payload[half:],
                                  masked=True), rng=rng)
        connection.client_send(first, now)
        collector.process(connection)
        connection.client_send(rest, now + 0.5)
        collector.process(connection)
        connection.close(now + 2)
        record = collector.finalize(connection)
        assert record is not None
        assert record.campaign_id == "Research-010"

    def test_interleaved_new_message_fails_session(self, setup):
        collector, _, network = setup
        connection, now = open_connection(collector, network)
        rng = random.Random(22)
        fragment = encode_frame(Frame(Opcode.TEXT, b"partial", fin=False,
                                      masked=True), rng=rng)
        intruder = encode_frame(Frame(Opcode.TEXT, HELLO.encode(),
                                      masked=True), rng=rng)
        connection.client_send(fragment, now)
        connection.client_send(intruder, now + 1)
        collector.process(connection)
        connection.close(now + 2)
        assert collector.finalize(connection) is None
        assert collector.malformed_messages == 1


HELLO_NONCED = HELLO + "|n=00c0ffee00c0ffee"


@pytest.fixture
def fault_setup():
    # An active-but-quiet plan: retries enabled turns the fault-mode
    # collector behaviour on (nonce dedup, quarantine) without any
    # injection dice perturbing the test's own traffic.
    from repro.faults.inject import FaultInjector
    from repro.faults.plan import FaultPlan, RetryPolicy
    plan = FaultPlan(name="test", retry=RetryPolicy(max_attempts=2))
    clock = SimClock(1000.0)
    store = ImpressionStore()
    network = SimulatedNetwork(clock, random.Random(81),
                               NetworkConditions(connect_failure_rate=0.0,
                                                 mid_stream_failure_rate=0.0))
    collector = CollectorServer(store, injector=FaultInjector(plan))
    collector.attach(network)
    return collector, store, network


def deliver_once(collector, network, hello, close_frame=True):
    connection, now = open_connection(collector, network)
    send_text(collector, connection, hello, now)
    if close_frame:
        close = encode_frame(Frame(Opcode.CLOSE, b"", masked=True),
                             rng=random.Random(10))
        connection.client_send(close, now + 5.0)
    connection.close(now + 5.0)
    return collector.finalize(connection)


class TestIdempotentIngestion:
    def test_same_nonce_commits_once(self, fault_setup):
        collector, store, network = fault_setup
        first = deliver_once(collector, network, HELLO_NONCED)
        second = deliver_once(collector, network, HELLO_NONCED)
        assert first is not None
        assert second is None
        assert len(store) == 1
        assert collector.duplicates == 1
        assert collector.last_finalize.duplicate
        assert collector.last_finalize.reason == "duplicate"
        assert not collector.last_finalize.committed

    def test_distinct_nonces_both_commit(self, fault_setup):
        collector, store, network = fault_setup
        assert deliver_once(collector, network,
                            HELLO + "|n=aaaa") is not None
        assert deliver_once(collector, network,
                            HELLO + "|n=bbbb") is not None
        assert len(store) == 2
        assert collector.duplicates == 0

    def test_empty_nonce_never_dedups(self, fault_setup):
        # Legacy beacons without a nonce must keep committing freely.
        collector, store, network = fault_setup
        assert deliver_once(collector, network, HELLO) is not None
        assert deliver_once(collector, network, HELLO) is not None
        assert len(store) == 2
        assert collector.duplicates == 0

    def test_inactive_collector_ignores_nonces(self, setup):
        collector, store, network = setup
        assert deliver_once(collector, network, HELLO_NONCED) is not None
        assert deliver_once(collector, network, HELLO_NONCED) is not None
        assert len(store) == 2
        assert collector.duplicates == 0


class TestQuarantine:
    @staticmethod
    def send_corrupt_frame(collector, connection, now):
        frame = bytearray(encode_frame(
            Frame(Opcode.TEXT, b"junk", masked=True),
            rng=random.Random(13)))
        frame[0] |= 0x40  # reserved bit: decoder rejects the frame
        connection.client_send(bytes(frame), now)
        collector.process(connection)

    def test_corrupt_frame_quarantined_session_survives(self, fault_setup):
        collector, store, network = fault_setup
        connection, now = open_connection(collector, network)
        send_text(collector, connection, HELLO_NONCED, now)
        self.send_corrupt_frame(collector, connection, now + 1)
        # Later clean traffic on the same connection still counts.
        send_text(collector, connection, "EVT|kind=click|t=2.0", now + 2)
        connection.close(now + 3)
        record = collector.finalize(connection)
        assert record is not None
        assert record.clicks == 1
        assert collector.quarantined_frames == 1
        assert collector.malformed_messages == 1
        entries = collector.quarantine.entries()
        assert len(entries) == 1
        assert entries[0].connection_id == connection.connection_id
        assert entries[0].reason == "malformed"
        assert entries[0].domain == "diario1.es"
        assert entries[0].campaign_id == "Research-010"

    def test_quarantine_before_hello_has_no_attribution(self, fault_setup):
        collector, _, network = fault_setup
        connection, now = open_connection(collector, network)
        self.send_corrupt_frame(collector, connection, now)
        entries = collector.quarantine.entries()
        assert entries[0].domain == ""
        assert entries[0].campaign_id == ""
        connection.close(now + 1)
        assert collector.finalize(connection) is None
        assert collector.last_finalize.quarantined_frames == 1

    def test_inactive_collector_still_fails_session(self, setup):
        # The legacy error model is untouched without a fault plan: one
        # bad frame ends the session and the impression is lost.
        collector, store, network = setup
        connection, now = open_connection(collector, network)
        send_text(collector, connection, HELLO, now)
        self.send_corrupt_frame(collector, connection, now + 1)
        connection.close(now + 2)
        assert collector.finalize(connection) is None
        assert collector.quarantined_frames == 0
        assert len(store) == 0
