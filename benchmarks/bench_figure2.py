"""Bench F2 — regenerate Figure 2 (rank distribution vs CPM).

Paper reference: higher CPM does not buy more popular inventory — the
0.01 EUR Russia campaign concentrates ~89 % of impressions in the Alexa
top 50K while the 0.30 EUR campaign reaches only ~68 %.
"""

from repro.experiments import figures


def test_figure2_benchmark(benchmark, paper_result, bench_output):
    figure = benchmark(figures.figure2, paper_result)
    text = figure.render()
    bench_output("figure2.txt", text)
    print("\n" + text)

    assert len(figure.distributions) == 5
    by_id = {d.campaign_id: d for d in figure.distributions}
    cheap = by_id["Russia"]                  # 0.01 EUR
    expensive = by_id["Football-030"]        # 0.30 EUR, 30x the investment
    # The 30x-more-expensive campaign is NOT more concentrated in the
    # popular buckets — the paper's counter-intuitive headline.  The
    # publisher series carries the robust inversion at every world scale;
    # the impression series holds strictly at the paper-scale reference
    # run (0.976 vs 0.900 at top-100K, see EXPERIMENTS.md) and within a
    # small tolerance at reduced bench scales.
    assert cheap.cumulative_to(10_000, "publishers") > \
        expensive.cumulative_to(10_000, "publishers")
    assert cheap.cumulative_to(100_000) >= \
        expensive.cumulative_to(100_000) - 0.05
