"""Ablation A2 — context criterion: keyword-only vs keyword+LCH vs vendor.

Table 2's audit column depends on how "contextually meaningful" is
judged.  This ablation sweeps the criterion from the strictest (literal
keyword match only) through the paper's (keyword OR Leacock-Chodorow
similarity) to the vendor's own undisclosed standard.
"""

from repro.audit.context import ContextAudit, ContextCriterion
from repro.util.tables import render_table

CAMPAIGNS = ("Research-010", "Football-010", "Football-030", "General-010")


def _fractions(dataset, criterion):
    audit = ContextAudit(dataset, criterion)
    return {campaign_id: audit.assess(campaign_id).audit_fraction.pct
            for campaign_id in CAMPAIGNS}


def test_ablation_context_criterion(benchmark, paper_result, bench_output):
    dataset = paper_result.dataset
    keyword_only = ContextCriterion(use_semantic_match=False)
    paper_criterion = ContextCriterion()                     # keyword + LCH
    loose = ContextCriterion(max_path_edges=3)

    keyword_fractions = benchmark(_fractions, dataset, keyword_only)
    paper_fractions = _fractions(dataset, paper_criterion)
    loose_fractions = _fractions(dataset, loose)
    vendor_fractions = {
        campaign_id: dataset.require_report(campaign_id).contextual.pct
        for campaign_id in CAMPAIGNS}

    rows = []
    for campaign_id in CAMPAIGNS:
        rows.append([campaign_id,
                     f"{keyword_fractions[campaign_id]:.2f}",
                     f"{paper_fractions[campaign_id]:.2f}",
                     f"{loose_fractions[campaign_id]:.2f}",
                     f"{vendor_fractions[campaign_id]:.2f}"])
    text = render_table(
        ["Campaign", "keyword-only %", "keyword+LCH %", "LCH radius-3 %",
         "vendor-claimed %"],
        rows, title="Ablation A2: context criterion")
    bench_output("ablation_context.txt", text)
    print("\n" + text)

    for campaign_id in CAMPAIGNS:
        # Widening the criterion can only admit more impressions...
        assert keyword_fractions[campaign_id] <= \
            paper_fractions[campaign_id] + 1e-9
        assert paper_fractions[campaign_id] <= \
            loose_fractions[campaign_id] + 1e-9
    # ...but even the loose auditor criterion stays below the vendor's
    # claims for the Football campaigns.
    assert loose_fractions["Football-010"] < vendor_fractions["Football-010"]
