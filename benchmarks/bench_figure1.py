"""Bench F1 — regenerate Figure 1 (publisher Venn diagram).

Paper reference: across all campaigns AdWords did not report 57 % of the
publishers the beacon observed (up to 75 % for General-005), while the
beacon itself missed ~16.5 % of vendor-reported publishers.
"""

from repro.experiments import figures


def test_figure1_benchmark(benchmark, paper_result, bench_output):
    figure = benchmark(figures.figure1, paper_result)
    text = figure.render()
    bench_output("figure1.txt", text)
    print("\n" + text)

    # The vendor misses a large share of audit-observed publishers...
    assert figure.aggregate.unreported_by_vendor.pct > 30.0
    # ...General-005 is the worst case, as in the paper...
    assert figure.spotlight.unreported_by_vendor.pct > \
        figure.aggregate.unreported_by_vendor.pct
    # ...and the audit's own blind spot stays in the paper's ~16.5 % band.
    assert 5.0 < figure.aggregate.unlogged_by_audit.pct < 30.0
