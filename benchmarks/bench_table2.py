"""Bench T2 — regenerate Table 2 (contextually meaningful impressions).

Paper reference: the vendor-reported contextual fraction exceeds the
audited one in most campaigns (Football: 100 % claimed vs 64/47 %
audited); Research campaigns are tiny on both sides (~2.5-3.8 %).
"""

from repro.experiments import tables


def _pct(cell) -> float:
    return float(str(cell).split()[0])


def test_table2_benchmark(benchmark, paper_result, bench_output):
    headers, rows = benchmark(tables.table2, paper_result)
    text = tables.render_table2(paper_result)
    bench_output("table2.txt", text)
    print("\n" + text)

    by_id = {row[0]: row for row in rows}
    # Football campaigns: vendor claims near-total contextual delivery.
    for campaign in ("Football-010", "Football-030"):
        assert _pct(by_id[campaign][2]) > 85.0
        # The audit sees much less, but still a majority on-theme.
        assert 35.0 < _pct(by_id[campaign][1]) < _pct(by_id[campaign][2])
    # Research campaigns: single digits on both sides.
    for campaign in ("Research-010", "Research-020"):
        assert _pct(by_id[campaign][1]) < 12.0
        assert _pct(by_id[campaign][2]) < 25.0
    # Vendor >= audit in the large majority of campaigns.
    dominated = sum(_pct(row[2]) >= _pct(row[1]) for row in rows)
    assert dominated >= 6
