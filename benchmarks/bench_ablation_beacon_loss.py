"""Ablation A3 — beacon loss model: script blocking 0 % vs 15 % vs 30 %.

The paper reports its methodology missed 16.5 % of publishers (§4.2,
footnote 2).  This ablation sweeps the publisher-level script-blocking
rate and measures the audit's blind spot (vendor-reported publishers the
beacon never logged), re-running the miniature pipeline per setting.
"""

import dataclasses

from repro.audit.brand_safety import BrandSafetyAudit
from repro.experiments.config import paper_experiment
from repro.experiments.runner import ExperimentRunner
from repro.util.tables import render_table

ABLATION_SCALE = 0.02
RATES = (0.0, 0.15, 0.30)


def _run(rate: float):
    config = dataclasses.replace(paper_experiment(scale=ABLATION_SCALE),
                                 script_blocking_fraction=rate)
    result = ExperimentRunner(config).run()
    venn = BrandSafetyAudit(result.dataset).venn(None)
    return result, venn


def test_ablation_beacon_loss(benchmark, bench_output):
    results = {}
    for rate in RATES[1:]:
        results[rate] = _run(rate)
    # Benchmark the zero-loss run (same cost as any other single run).
    results[0.0] = benchmark.pedantic(_run, args=(0.0,), rounds=1,
                                      iterations=1)

    rows = []
    for rate in RATES:
        result, venn = results[rate]
        logged_share = result.stats["logged"] / result.stats["delivered"]
        rows.append([f"{rate:.0%}", f"{logged_share:.1%}",
                     str(venn.unlogged_by_audit)])
    text = render_table(
        ["Publisher script blocking", "Impressions logged",
         "Vendor publishers unlogged by audit"],
        rows, title="Ablation A3: beacon loss model")
    bench_output("ablation_beacon_loss.txt", text)
    print("\n" + text)

    shares = [results[rate][0].stats["logged"]
              / results[rate][0].stats["delivered"] for rate in RATES]
    # More blocking -> fewer logged impressions, monotonically.
    assert shares[0] > shares[1] > shares[2]
    # The audit blind spot grows with the blocking rate.
    blind = [results[rate][1].unlogged_by_audit.pct for rate in RATES]
    assert blind[2] > blind[0]
