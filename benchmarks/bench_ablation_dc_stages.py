"""Ablation A5 — data-center detection stages.

The paper's detection cascades through MaxMind, the Botlab deny list and
manual provider verification.  This ablation breaks Table 4's detections
down by the stage that caught them, showing what each list/step adds.
"""

from repro.audit.fraud import FraudAudit
from repro.util.tables import render_table

CAMPAIGNS = ("Research-020", "Football-010", "Football-030", "General-010")


def _stage_rows(dataset):
    audit = FraudAudit(dataset)
    rows = []
    for campaign_id in CAMPAIGNS:
        breakdown = audit.stage_breakdown(campaign_id)
        denylist = breakdown.get("denylist", 0)
        manual = breakdown.get("manual", 0)
        total = denylist + manual
        rows.append([campaign_id, denylist, manual, total])
    return rows


def test_ablation_dc_stages(benchmark, paper_result, bench_output):
    rows = benchmark(_stage_rows, paper_result.dataset)
    text = render_table(
        ["Campaign", "Caught by deny list", "Caught by manual verification",
         "Total DC impressions"],
        rows, title="Ablation A5: detection cascade stage contributions")
    bench_output("ablation_dc_stages.txt", text)
    print("\n" + text)

    totals = {row[0]: row[3] for row in rows}
    denylist = {row[0]: row[1] for row in rows}
    manual = {row[0]: row[2] for row in rows}
    # Football campaigns have detections, and the deny list alone would
    # miss a share that only the manual stage recovers (the deny list
    # covers ~70 % of data-center providers).
    assert totals["Football-010"] > 0
    assert sum(denylist.values()) > 0
    assert sum(manual.values()) > 0
    assert sum(manual.values()) < sum(denylist.values()) * 1.5
