"""Bench T1 — regenerate Table 1 (campaign descriptions).

Paper reference (Table 1): 8 campaigns, 160K impressions over ~7K
publishers; e.g. Research-020 logged 42 399 impressions on 1 777
publishers at 0.20 EUR CPM.
"""

from repro.experiments import tables


def test_table1_benchmark(benchmark, paper_result, bench_output):
    headers, rows = benchmark(tables.table1, paper_result)
    text = tables.render_table1(paper_result)
    bench_output("table1.txt", text)
    print("\n" + text)

    assert len(rows) == 8
    by_id = {row[0]: row for row in rows}
    # Every campaign delivered and was logged.
    assert all(row[1] > 0 and row[2] > 0 for row in rows)
    # Volume ordering from the paper holds: the 0.20 EUR Research campaign
    # dwarfs the 0.10 EUR one, and Research-020/General-010 are the giants.
    assert by_id["Research-020"][1] > 3 * by_id["Research-010"][1]
    assert by_id["General-010"][1] > by_id["General-005"][1]
    assert by_id["Russia"][1] > by_id["USA"][1]
