"""Ablation A1 — vendor placement policy: viewable-only vs all-delivered.

The paper argues the missing publishers of Figure 1 come from AdWords
reporting only *viewable* impressions in its placement report.  This
ablation regenerates the vendor reports under both policies and measures
how much of the publisher gap the disclosure policy explains (the rest is
anonymous inventory).
"""

from repro.adnetwork.reporting import VendorReporter
from repro.audit.brand_safety import VennCounts
from repro.util.tables import render_table


def _venn(result, reporter: VendorReporter) -> VennCounts:
    vendor: set[str] = set()
    for campaign_id in result.dataset.campaign_ids:
        report = reporter.report(campaign_id,
                                 result.server.impressions_for(campaign_id))
        vendor |= report.reported_publishers
    audit = result.dataset.audit_publishers()
    return VennCounts(audit_only=len(audit - vendor),
                      both=len(audit & vendor),
                      vendor_only=len(vendor - audit))


def test_ablation_reporting_policy(benchmark, paper_result, bench_output):
    viewable_only = benchmark(_venn, paper_result, VendorReporter())
    full_disclosure = _venn(paper_result,
                            VendorReporter(viewable_only_placements=False))

    rows = [
        ["viewable-only placements", viewable_only.audit_only,
         str(viewable_only.unreported_by_vendor)],
        ["all delivered placements", full_disclosure.audit_only,
         str(full_disclosure.unreported_by_vendor)],
    ]
    text = render_table(
        ["Vendor policy", "Publishers unreported", "Fraction unreported"],
        rows, title="Ablation A1: placement disclosure policy")
    bench_output("ablation_reporting.txt", text)
    print("\n" + text)

    # Disclosing every delivered placement closes most of the gap; what is
    # left is the anonymous-exchange inventory.
    assert full_disclosure.audit_only < viewable_only.audit_only * 0.6
    assert viewable_only.unreported_by_vendor.pct > 30.0
