"""Ablation A4 — frequency-cap enforcement at N in {1, 5, 10, infinity}.

The paper cites research that caps above 10 stop improving conversion and
asks the vendor for a sensible default.  This ablation quantifies what a
per-user cap would have suppressed in the collected dataset.
"""

from repro.audit.frequency import FrequencyAudit
from repro.util.tables import render_table

CAPS = (1, 5, 10)


def test_ablation_frequency_cap(benchmark, paper_result, bench_output):
    audit = FrequencyAudit(paper_result.dataset)
    total = len(paper_result.dataset.store)

    suppressed = {cap: audit.would_suppress(cap, None) for cap in CAPS[1:]}
    suppressed[1] = benchmark(audit.would_suppress, 1, None)

    rows = []
    for cap in CAPS:
        rows.append([cap, suppressed[cap],
                     f"{suppressed[cap] / total:.1%}"])
    rows.append(["none (vendor default)", 0, "0.0%"])
    text = render_table(
        ["Frequency cap", "Impressions suppressed", "Share of dataset"],
        rows, title="Ablation A4: what a default frequency cap would save")
    bench_output("ablation_freqcap.txt", text)
    print("\n" + text)

    # Tighter caps suppress more, and the cap-10 savings are material —
    # the waste the paper attributes to the missing default.
    assert suppressed[1] > suppressed[5] > suppressed[10] > 0
    assert suppressed[10] / total > 0.01
