"""Shared fixtures for the benchmark harness.

All table/figure benchmarks consume one memoised experiment run (the
expensive part); each benchmark then times the analysis that regenerates
its table or figure and writes the rendered rows to
``benchmarks/output/`` so runs can be diffed against the paper and
against each other.

``REPRO_BENCH_SCALE`` (default 0.08) sizes the world; set it to 1.0 to
regenerate the paper-scale numbers recorded in EXPERIMENTS.md.
``REPRO_JOBS`` (default 1) runs the shared experiment across that many
worker processes — the result is byte-identical, it just arrives faster.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.parallel import run_paper_experiment_parallel
from repro.experiments.runner import run_paper_experiment

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "2016"))
BENCH_JOBS = int(os.environ.get("REPRO_JOBS", "1"))

_OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def paper_result():
    """The shared experiment run every benchmark analyses.

    Also drops the run's metrics snapshot (strict JSON) next to the
    rendered tables, so a benchmark run records how much simulation work
    produced its numbers and how long the shards took on this host.
    """
    if BENCH_JOBS > 1:
        result = run_paper_experiment_parallel(seed=BENCH_SEED,
                                               scale=BENCH_SCALE,
                                               jobs=BENCH_JOBS)
    else:
        result = run_paper_experiment(seed=BENCH_SEED, scale=BENCH_SCALE)
    _OUTPUT_DIR.mkdir(exist_ok=True)
    (_OUTPUT_DIR / "metrics.json").write_text(
        result.metrics.to_json() + "\n", encoding="utf-8")
    return result


@pytest.fixture(scope="session")
def bench_output():
    """Writer for rendered tables/figures (benchmarks/output/*.txt)."""
    _OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = _OUTPUT_DIR / name
        path.write_text(text + "\n", encoding="utf-8")

    return write
