"""Bench T4 — regenerate Table 4 (data-center traffic statistics).

Paper reference: every campaign delivered impressions to data-center IPs;
the Football campaigns peak around 8.6-11 % of impressions and ~23 % of
publishers, while Russia/USA/General stay under ~1 %.
"""

from repro.experiments import tables


def _pct(cell) -> float:
    return float(str(cell).split()[0])


def test_table4_benchmark(benchmark, paper_result, bench_output):
    headers, rows = benchmark(tables.table4, paper_result)
    text = tables.render_table4(paper_result)
    bench_output("table4.txt", text)
    print("\n" + text)

    values = {row[0]: [_pct(row[1]), _pct(row[2]), _pct(row[3])]
              for row in rows}
    # Football campaigns are the most exposed, in the paper's ~5-20 % band.
    for campaign in ("Football-010", "Football-030"):
        assert 3.0 < values[campaign][1] < 25.0
    # The quiet campaigns stay far below the Football ones.
    for campaign in ("General-005", "General-010"):
        assert values[campaign][1] < values["Football-030"][1]
    # Publisher exposure exceeds impression share for Football (many
    # publishers see a little bot traffic each), as in the paper.
    assert values["Football-030"][2] > values["Football-030"][1]
