"""Bench F3 — regenerate Figure 3 (ad repetition per user).

Paper reference: no default frequency cap — 1 720 users saw one ad more
than 10 times and 176 more than 100 times, many with inter-arrival times
under a minute (extreme cases below 20 s).
"""

import os

from repro.experiments import figures

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))


def test_figure3_benchmark(benchmark, paper_result, bench_output):
    figure = benchmark(figures.figure3, paper_result)
    text = figure.render()
    bench_output("figure3.txt", text)
    print("\n" + text)

    # Scale-adjusted expectations: the paper found 1 720 users over 10
    # impressions at full scale; even a small world shows the unbounded
    # repetition clearly.
    assert figure.users_over_10 > 50 * BENCH_SCALE
    assert figure.users_over_10 > figure.users_over_100
    heavy = [gap for count, gap in figure.points if count > 10]
    assert heavy
    # Fast repetition exists: some heavy users see the ad again within
    # minutes on median.
    assert min(heavy) < 3600.0
