"""Bench T3 — regenerate Table 3 (viewability upper bound).

Paper reference: 52-85 % of impressions exposed >= 1 s, with the two
Football campaigns clearly on top (79.9 % / 82.8 %) and Research around
52-56 % — targeted context modulates viewability.
"""

from repro.experiments import tables


def _pct(cell) -> float:
    return float(str(cell).split()[0])


def test_table3_benchmark(benchmark, paper_result, bench_output):
    headers, rows = benchmark(tables.table3, paper_result)
    text = tables.render_table3(paper_result)
    bench_output("table3.txt", text)
    print("\n" + text)

    values = {row[0]: _pct(row[1]) for row in rows}
    # Everything inside the paper's (wide) band.
    assert all(40.0 < value < 95.0 for value in values.values())
    # Football on top of Research, as in the paper.
    football = (values["Football-010"] + values["Football-030"]) / 2
    research = (values["Research-010"] + values["Research-020"]) / 2
    assert football > research + 5.0
