"""Dataset enrichment — and then IP anonymisation.

The paper's footnote 1: the raw IP is used to extract meta-data (provider,
country, data-center status) and is *then* anonymised with hashing.  The
enricher performs exactly that pass over a collected store: it resolves
each record's IP against the GeoIP database, the deny list cascade and the
ranking service, then replaces the raw IP with a salted token.
"""

from __future__ import annotations

from dataclasses import replace

from repro.collector.store import ImpressionStore
from repro.geo.resolver import DataCenterResolver
from repro.geo.ipdb import GeoIpDatabase
from repro.obs.trace import FlightRecorder
from repro.util.hashing import anonymize_ip
from repro.web.ranking import RankingService


class Enricher:
    """Fills IP-derived columns and anonymises the dataset in place."""

    def __init__(self, ipdb: GeoIpDatabase, resolver: DataCenterResolver,
                 ranking: RankingService, salt: str = "adaudit",
                 recorder: FlightRecorder | None = None) -> None:
        self.ipdb = ipdb
        self.resolver = resolver
        self.ranking = ranking
        self.salt = salt
        # Enrichment runs after the shard merge, on the assembled store,
        # so it extends already-committed traces via recorder annotation
        # rather than through a live tracer.
        self.recorder = recorder

    def enrich_store(self, store: ImpressionStore) -> int:
        """Enrich + anonymise every not-yet-enriched record; returns count.

        Idempotent: records whose ``ip_token`` is already set are skipped
        (their raw IP is gone, so there is nothing left to resolve).
        """
        enriched = 0
        for index, record in enumerate(store):
            if record.ip_token:
                continue
            ip_record = self.ipdb.lookup(record.ip)
            verdict = self.resolver.classify(record.ip)
            rank = self.ranking.rank_of(record.domain)
            store.replace_at(index, replace(
                record,
                ip_token=anonymize_ip(record.ip, salt=self.salt),
                ip="",
                provider=ip_record.provider if ip_record else "",
                country=ip_record.country if ip_record else "",
                global_rank=rank,
                is_datacenter=verdict.is_datacenter,
                dc_stage=verdict.stage.value,
            ))
            if self.recorder is not None:
                self.recorder.annotate(
                    record.record_id, "enrich.geo", at=record.timestamp,
                    country=ip_record.country if ip_record else "",
                    provider=ip_record.provider if ip_record else "",
                    datacenter=verdict.is_datacenter,
                    stage=verdict.stage.value)
            enriched += 1
        return enriched
