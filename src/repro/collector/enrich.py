"""Dataset enrichment — and then IP anonymisation.

The paper's footnote 1: the raw IP is used to extract meta-data (provider,
country, data-center status) and is *then* anonymised with hashing.  The
enricher performs exactly that pass over a collected store: it resolves
each record's IP against the GeoIP database, the deny list cascade and the
ranking service, then replaces the raw IP with a salted token.
"""

from __future__ import annotations

from repro.collector.store import ImpressionStore
from repro.geo.ipdb import GeoIpDatabase, IpRecord
from repro.geo.resolver import DataCenterResolver, DcVerdict
from repro.obs.trace import FlightRecorder
from repro.util import hotpath
from repro.util.hashing import anonymize_ip
from repro.web.ranking import RankingService


class Enricher:
    """Fills IP-derived columns and anonymises the dataset in place."""

    def __init__(self, ipdb: GeoIpDatabase, resolver: DataCenterResolver,
                 ranking: RankingService, salt: str = "adaudit",
                 recorder: FlightRecorder | None = None) -> None:
        self.ipdb = ipdb
        self.resolver = resolver
        self.ranking = ranking
        self.salt = salt
        # Enrichment runs after the shard merge, on the assembled store,
        # so it extends already-committed traces via recorder annotation
        # rather than through a live tracer.
        self.recorder = recorder
        # ip → (geo record, cascade verdict, anonymised token).  The same
        # device produces many impressions, so each distinct address runs
        # the trie walk + deny-list cascade + salted hash exactly once per
        # enrichment pass.  Verdict replay keeps the resolver's
        # stage-count bookkeeping identical to the uncached cascade.
        self._ip_memo: dict[str, tuple["IpRecord | None", DcVerdict, str]] = {}

    def _resolve_ip(self, ip: str) -> tuple["IpRecord | None", DcVerdict, str]:
        if hotpath._REFERENCE:
            return (self.ipdb.lookup(ip), self.resolver.classify(ip),
                    anonymize_ip(ip, salt=self.salt))
        cached = self._ip_memo.get(ip)
        if cached is None:
            cached = (self.ipdb.lookup(ip), self.resolver.classify(ip),
                      anonymize_ip(ip, salt=self.salt))
            self._ip_memo[ip] = cached
        else:
            self.resolver.stage_counts[cached[1].stage] += 1
        return cached

    def enrich_store(self, store: ImpressionStore) -> int:
        """Enrich + anonymise every not-yet-enriched record; returns count.

        Idempotent: records whose ``ip_token`` is already set are skipped
        (their raw IP is gone, so there is nothing left to resolve).

        Streams over :meth:`ImpressionStore.pending_enrichment` and writes
        the enrichment columns in place via
        :meth:`ImpressionStore.enrich_at` — on the columnar backing this
        never materialises a record view, let alone a replacement frozen
        dataclass per record.
        """
        enriched = 0
        for index, record_id, ip, domain, timestamp in \
                store.pending_enrichment():
            ip_record, verdict, ip_token = self._resolve_ip(ip)
            rank = self.ranking.rank_of(domain)
            store.enrich_at(
                index,
                ip_token=ip_token,
                provider=ip_record.provider if ip_record else "",
                country=ip_record.country if ip_record else "",
                global_rank=rank,
                is_datacenter=verdict.is_datacenter,
                dc_stage=verdict.stage.value,
            )
            if self.recorder is not None:
                self.recorder.annotate(
                    record_id, "enrich.geo", at=timestamp,
                    country=ip_record.country if ip_record else "",
                    provider=ip_record.provider if ip_record else "",
                    datacenter=verdict.is_datacenter,
                    stage=verdict.stage.value)
            enriched += 1
        return enriched
