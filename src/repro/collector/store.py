"""Impression database.

The MySQL stand-in: an append-only store of logged impressions with the
query surface the audit needs (per-campaign slices, distinct publishers,
per-user groupings) and JSONL persistence so datasets survive between
collection and analysis runs.

Two interchangeable backings implement the store:

* :class:`_ColumnarStore` (the default) keeps every field in a typed
  column — ``array``-module numerics for timestamps/exposure/counts/ids,
  a per-store interned string table with ``array('I')`` index columns
  for the string fields, and presence/tri-state byte columns for the
  nullable enrichment fields.  ``ImpressionRecord`` becomes a lightweight
  view materialised on demand, and ``seal()`` builds per-column indexes
  so the audit queries stop rescanning the whole table.
* :class:`_RowStore` (under ``REPRO_REFERENCE_HOTPATH``) retains the
  original list-of-frozen-dataclasses layout and full-scan queries — the
  reference implementation the equivalence tests pin the columnar
  backend against, byte for byte.

The backend is chosen at construction time from
:mod:`repro.util.hotpath`; both expose the identical API, including the
raw-column transfer surface (:meth:`ImpressionStore.export_columns` /
:meth:`ImpressionStore.absorb_columns`) the shard merge rides on.
"""

from __future__ import annotations

import json
from array import array
from dataclasses import asdict, dataclass, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.util import hotpath
from repro.web.publisher import domain_of_url

#: Version tag of the raw-column payload produced by
#: :meth:`ImpressionStore.export_columns`; absorb refuses anything else.
STORE_COLUMNS_VERSION = 1

#: Tri-state byte encoding for Optional[bool] columns.
_TRI_NONE = 2


class StoreSealedError(RuntimeError):
    """Raised on any attempt to mutate a sealed :class:`ImpressionStore`."""


@dataclass(frozen=True)
class ImpressionRecord:
    """One logged ad impression, as the collector stores it.

    Identity/meta fields before enrichment hold the connection facts
    (raw IP, server timestamp); enrichment fills the IP-derived columns and
    *replaces the raw IP with its anonymised token* (``ip`` becomes empty,
    ``ip_token`` non-empty) — the ordering §3/footnote 1 of the paper
    prescribes.
    """

    record_id: int
    campaign_id: str
    creative_id: str
    url: str
    user_agent: str
    ip: str
    timestamp: float
    exposure_seconds: float
    mouse_moves: int = 0
    clicks: int = 0
    truncated: bool = False
    #: SafeFrame-measured pixel visibility; None when unmeasurable (S3.1).
    pixels_in_view: Optional[bool] = None
    # enrichment columns
    ip_token: str = ""
    provider: str = ""
    country: str = ""
    global_rank: Optional[int] = None
    is_datacenter: Optional[bool] = None
    dc_stage: str = ""

    def __post_init__(self) -> None:
        # Canonicalise the numeric/boolean fields to their declared JSON
        # types so a record round-tripped through the columnar backing
        # (which stores doubles/ints/bytes) serialises byte-identically
        # to one held as a row.
        object.__setattr__(self, "record_id", int(self.record_id))
        object.__setattr__(self, "timestamp", float(self.timestamp))
        object.__setattr__(self, "exposure_seconds",
                           float(self.exposure_seconds))
        object.__setattr__(self, "mouse_moves", int(self.mouse_moves))
        object.__setattr__(self, "clicks", int(self.clicks))
        object.__setattr__(self, "truncated", bool(self.truncated))
        if self.pixels_in_view is not None:
            object.__setattr__(self, "pixels_in_view",
                               bool(self.pixels_in_view))
        if self.global_rank is not None:
            object.__setattr__(self, "global_rank", int(self.global_rank))
        if self.is_datacenter is not None:
            object.__setattr__(self, "is_datacenter",
                               bool(self.is_datacenter))
        if self.record_id < 1:
            raise ValueError("record_id must be positive")
        if not self.campaign_id:
            raise ValueError("campaign_id must be non-empty")
        if not self.url:
            raise ValueError("url must be non-empty")
        if not self.ip and not self.ip_token:
            raise ValueError("record needs a raw IP or an anonymised token")
        if self.exposure_seconds < 0:
            raise ValueError("exposure_seconds must be non-negative")
        if self.mouse_moves < 0 or self.clicks < 0:
            raise ValueError("interaction counts must be non-negative")

    @property
    def domain(self) -> str:
        """Publisher domain extracted from the reported URL."""
        return domain_of_url(self.url)

    @property
    def user_key(self) -> str:
        """The audit's user identity: IP ⊕ User-Agent.

        Works both before and after anonymisation because the IP token is
        a stable function of the raw IP.
        """
        return f"{self.ip_token or self.ip}\x1f{self.user_agent}"

    @property
    def viewable_upper_bound(self) -> bool:
        """Exposed ≥ 1 s — the auditor's measurable viewability bound."""
        return self.exposure_seconds >= 1.0


#: Derived logical fields ``select()`` accepts besides the record fields.
_ROW_GETTERS: dict[str, Callable[[ImpressionRecord], object]] = {
    "domain": lambda record: record.domain,
    "user_key": lambda record: record.user_key,
    "identity": lambda record: record.ip_token or record.ip,
}

_RECORD_FIELDS = frozenset(ImpressionRecord.__dataclass_fields__)


def _row_getter(name: str) -> Callable[[ImpressionRecord], object]:
    getter = _ROW_GETTERS.get(name)
    if getter is not None:
        return getter
    if name not in _RECORD_FIELDS:
        raise ValueError(f"unknown select field {name!r}")
    return lambda record, _name=name: getattr(record, _name)


class _ColumnData:
    """The typed column set behind a columnar store.

    One instance owns the interned string table shared by every string
    column, the numeric ``array`` columns, and the presence/tri-state
    byte columns for the nullable fields.  It is also the unit that
    crosses process boundaries: :meth:`payload` flattens it to a plain
    picklable tuple and :meth:`from_payload` rebuilds it.
    """

    __slots__ = (
        "strings", "_string_index", "ids", "timestamp", "exposure",
        "mouse_moves", "clicks", "truncated", "pixels", "campaign",
        "creative", "url", "domain", "ua", "ip", "ip_token", "provider",
        "country", "dc_stage", "rank_present", "rank", "is_dc",
    )

    def __init__(self) -> None:
        self.strings: list[str] = []
        self._string_index: dict[str, int] = {}
        self.ids = array("q")
        self.timestamp = array("d")
        self.exposure = array("d")
        self.mouse_moves = array("I")
        self.clicks = array("I")
        self.truncated = bytearray()
        self.pixels = bytearray()        # 0/1 bool, 2 encodes None
        self.campaign = array("I")
        self.creative = array("I")
        self.url = array("I")
        self.domain = array("I")         # derived from url at append time
        self.ua = array("I")
        self.ip = array("I")
        self.ip_token = array("I")
        self.provider = array("I")
        self.country = array("I")
        self.dc_stage = array("I")
        self.rank_present = bytearray()  # 0 encodes global_rank None
        self.rank = array("q")
        self.is_dc = bytearray()         # 0/1 bool, 2 encodes None

    def __len__(self) -> int:
        return len(self.ids)

    def intern(self, text: str) -> int:
        index = self._string_index.get(text)
        if index is None:
            index = len(self.strings)
            self._string_index[text] = index
            self.strings.append(text)
        return index

    @staticmethod
    def _tri(value: Optional[bool]) -> int:
        return _TRI_NONE if value is None else int(value)

    def append_record(self, record: ImpressionRecord,
                      record_id: Optional[int] = None) -> None:
        self.ids.append(record.record_id if record_id is None else record_id)
        self.timestamp.append(record.timestamp)
        self.exposure.append(record.exposure_seconds)
        self.mouse_moves.append(record.mouse_moves)
        self.clicks.append(record.clicks)
        self.truncated.append(int(record.truncated))
        self.pixels.append(self._tri(record.pixels_in_view))
        self.campaign.append(self.intern(record.campaign_id))
        self.creative.append(self.intern(record.creative_id))
        self.url.append(self.intern(record.url))
        self.domain.append(self.intern(record.domain))
        self.ua.append(self.intern(record.user_agent))
        self.ip.append(self.intern(record.ip))
        self.ip_token.append(self.intern(record.ip_token))
        self.provider.append(self.intern(record.provider))
        self.country.append(self.intern(record.country))
        self.dc_stage.append(self.intern(record.dc_stage))
        self.rank_present.append(0 if record.global_rank is None else 1)
        self.rank.append(record.global_rank or 0)
        self.is_dc.append(self._tri(record.is_datacenter))

    def write_record(self, row: int, record: ImpressionRecord) -> None:
        self.ids[row] = record.record_id
        self.timestamp[row] = record.timestamp
        self.exposure[row] = record.exposure_seconds
        self.mouse_moves[row] = record.mouse_moves
        self.clicks[row] = record.clicks
        self.truncated[row] = int(record.truncated)
        self.pixels[row] = self._tri(record.pixels_in_view)
        self.campaign[row] = self.intern(record.campaign_id)
        self.creative[row] = self.intern(record.creative_id)
        self.url[row] = self.intern(record.url)
        self.domain[row] = self.intern(record.domain)
        self.ua[row] = self.intern(record.user_agent)
        self.ip[row] = self.intern(record.ip)
        self.ip_token[row] = self.intern(record.ip_token)
        self.provider[row] = self.intern(record.provider)
        self.country[row] = self.intern(record.country)
        self.dc_stage[row] = self.intern(record.dc_stage)
        self.rank_present[row] = 0 if record.global_rank is None else 1
        self.rank[row] = record.global_rank or 0
        self.is_dc[row] = self._tri(record.is_datacenter)

    def record(self, row: int,
               record_id: Optional[int] = None) -> ImpressionRecord:
        strings = self.strings
        pixels = self.pixels[row]
        is_dc = self.is_dc[row]
        return ImpressionRecord(
            record_id=self.ids[row] if record_id is None else record_id,
            campaign_id=strings[self.campaign[row]],
            creative_id=strings[self.creative[row]],
            url=strings[self.url[row]],
            user_agent=strings[self.ua[row]],
            ip=strings[self.ip[row]],
            timestamp=self.timestamp[row],
            exposure_seconds=self.exposure[row],
            mouse_moves=self.mouse_moves[row],
            clicks=self.clicks[row],
            truncated=bool(self.truncated[row]),
            pixels_in_view=None if pixels == _TRI_NONE else bool(pixels),
            ip_token=strings[self.ip_token[row]],
            provider=strings[self.provider[row]],
            country=strings[self.country[row]],
            global_rank=self.rank[row] if self.rank_present[row] else None,
            is_datacenter=None if is_dc == _TRI_NONE else bool(is_dc),
            dc_stage=strings[self.dc_stage[row]],
        )

    def row_dict(self, row: int) -> dict:
        """The record as the plain dict ``asdict`` would produce."""
        strings = self.strings
        pixels = self.pixels[row]
        is_dc = self.is_dc[row]
        return {
            "record_id": self.ids[row],
            "campaign_id": strings[self.campaign[row]],
            "creative_id": strings[self.creative[row]],
            "url": strings[self.url[row]],
            "user_agent": strings[self.ua[row]],
            "ip": strings[self.ip[row]],
            "timestamp": self.timestamp[row],
            "exposure_seconds": self.exposure[row],
            "mouse_moves": self.mouse_moves[row],
            "clicks": self.clicks[row],
            "truncated": bool(self.truncated[row]),
            "pixels_in_view": None if pixels == _TRI_NONE else bool(pixels),
            "ip_token": strings[self.ip_token[row]],
            "provider": strings[self.provider[row]],
            "country": strings[self.country[row]],
            "global_rank": self.rank[row] if self.rank_present[row] else None,
            "is_datacenter": None if is_dc == _TRI_NONE else bool(is_dc),
            "dc_stage": strings[self.dc_stage[row]],
        }

    def payload(self) -> tuple:
        """Flatten to the picklable raw-column transfer tuple."""
        return (
            STORE_COLUMNS_VERSION, len(self.ids), tuple(self.strings),
            array("q", self.ids), array("d", self.timestamp),
            array("d", self.exposure), array("I", self.mouse_moves),
            array("I", self.clicks), bytes(self.truncated),
            bytes(self.pixels), array("I", self.campaign),
            array("I", self.creative), array("I", self.url),
            array("I", self.domain), array("I", self.ua),
            array("I", self.ip), array("I", self.ip_token),
            array("I", self.provider), array("I", self.country),
            array("I", self.dc_stage), bytes(self.rank_present),
            array("q", self.rank), bytes(self.is_dc),
        )

    @classmethod
    def from_payload(cls, payload: tuple) -> "_ColumnData":
        (version, count, strings, ids, timestamp, exposure, mouse_moves,
         clicks, truncated, pixels, campaign, creative, url, domain, ua,
         ip, ip_token, provider, country, dc_stage, rank_present, rank,
         is_dc) = _validated_payload(payload)
        data = cls()
        data.strings = list(strings)
        data._string_index = {text: index
                              for index, text in enumerate(data.strings)}
        data.ids = array("q", ids)
        data.timestamp = array("d", timestamp)
        data.exposure = array("d", exposure)
        data.mouse_moves = array("I", mouse_moves)
        data.clicks = array("I", clicks)
        data.truncated = bytearray(truncated)
        data.pixels = bytearray(pixels)
        data.campaign = array("I", campaign)
        data.creative = array("I", creative)
        data.url = array("I", url)
        data.domain = array("I", domain)
        data.ua = array("I", ua)
        data.ip = array("I", ip)
        data.ip_token = array("I", ip_token)
        data.provider = array("I", provider)
        data.country = array("I", country)
        data.dc_stage = array("I", dc_stage)
        data.rank_present = bytearray(rank_present)
        data.rank = array("q", rank)
        data.is_dc = bytearray(is_dc)
        return data

    def absorb(self, payload: tuple, first_id: int) -> int:
        """Bulk-append *payload*'s rows, re-identified from *first_id*.

        String indexes are remapped through this table's interner; the
        numeric columns extend wholesale.  Returns the row count added —
        the raw-column equivalent of ``extend_reindexed`` without the
        unpack-to-records-repack round trip.
        """
        (version, count, strings, ids, timestamp, exposure, mouse_moves,
         clicks, truncated, pixels, campaign, creative, url, domain, ua,
         ip, ip_token, provider, country, dc_stage, rank_present, rank,
         is_dc) = _validated_payload(payload)
        remap = array("I", (self.intern(text) for text in strings))
        self.ids.extend(range(first_id, first_id + count))
        self.timestamp.extend(timestamp)
        self.exposure.extend(exposure)
        self.mouse_moves.extend(mouse_moves)
        self.clicks.extend(clicks)
        self.truncated.extend(truncated)
        self.pixels.extend(pixels)
        for column, incoming in (
                (self.campaign, campaign), (self.creative, creative),
                (self.url, url), (self.domain, domain), (self.ua, ua),
                (self.ip, ip), (self.ip_token, ip_token),
                (self.provider, provider), (self.country, country),
                (self.dc_stage, dc_stage)):
            column.extend(remap[index] for index in incoming)
        self.rank_present.extend(rank_present)
        self.rank.extend(rank)
        self.is_dc.extend(is_dc)
        return count


def _validated_payload(payload: tuple) -> tuple:
    if not isinstance(payload, tuple) or len(payload) != 23:
        raise ValueError("malformed store column payload")
    if payload[0] != STORE_COLUMNS_VERSION:
        raise ValueError(
            f"unsupported store column payload version {payload[0]!r} "
            f"(expected {STORE_COLUMNS_VERSION})")
    return payload


class ImpressionStore:
    """Append-only impression table with the audit's query surface.

    Instantiating this class yields the columnar backend, or the
    row-backed reference implementation under
    ``REPRO_REFERENCE_HOTPATH`` (:mod:`repro.util.hotpath`) — both
    behave identically; only layout and query cost differ.
    """

    def __new__(cls, *args, **kwargs):
        if cls is ImpressionStore:
            cls = _RowStore if hotpath._REFERENCE else _ColumnarStore
        return object.__new__(cls)

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: "Tracer | None" = None) -> None:
        self._next_id = 1
        self._sealed = False
        self.tracer = tracer if tracer is not None else NULL_TRACER
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._appends = metrics.counter(
            "store.appends", help="records appended to the impression store")
        self._replaces = metrics.counter(
            "store.replaces", help="in-place record overwrites (enrichment)")
        self._sealed_gauge = metrics.gauge(
            "store.sealed", help="1 once the store is frozen against writes")

    # ------------------------------------------------------------------ #
    # backend primitives (implemented by the two backings)
    # ------------------------------------------------------------------ #

    def _append(self, record: ImpressionRecord) -> None:
        raise NotImplementedError

    def _record_at(self, index: int) -> ImpressionRecord:
        raise NotImplementedError

    def _write_row(self, index: int, record: ImpressionRecord) -> None:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[ImpressionRecord]:
        return (self._record_at(index) for index in range(len(self)))

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    @property
    def sealed(self) -> bool:
        """True once the store has been frozen against mutation."""
        return self._sealed

    def seal(self) -> "ImpressionStore":
        """Freeze the store: any later insert/replace raises.

        The experiment runner seals its dataset after enrichment so that a
        memoised result shared between benchmarks cannot be contaminated by
        one caller mutating it.  The columnar backend builds its query
        indexes here.  Returns self for chaining.
        """
        self._sealed = True
        self._sealed_gauge.set(1)
        return self

    def _check_mutable(self) -> None:
        if self._sealed:
            raise StoreSealedError(
                "store is sealed; experiment datasets are immutable once "
                "enriched (copy the records into a fresh store to modify)")

    def next_record_id(self) -> int:
        """Allocate the id for the next inserted record."""
        return self._next_id

    # ------------------------------------------------------------------ #
    # writes
    # ------------------------------------------------------------------ #

    def insert(self, record: ImpressionRecord) -> None:
        """Append one record (ids must be allocated via next_record_id)."""
        self._check_mutable()
        if record.record_id != self._next_id:
            raise ValueError(
                f"expected record_id {self._next_id}, got {record.record_id}")
        self._append(record)
        self._next_id += 1
        self._appends.inc()
        self.tracer.event("store.commit", at=self.tracer.now,
                          record=record.record_id,
                          campaign=record.campaign_id)

    def replace_at(self, index: int, record: ImpressionRecord) -> None:
        """Overwrite a record in place (enrichment uses this)."""
        self._check_mutable()
        self._write_row(index, record)
        self._replaces.inc()

    def extend_reindexed(self, records: "Iterable[ImpressionRecord]") -> int:
        """Append copies of *records* under freshly allocated ids.

        The shard merge used this before the raw-column path
        (:meth:`absorb_columns`) existed; filtered-copy workflows still
        do.  Records are appended in iteration order; the appends counter
        advances once for the whole batch and a single summarising
        ``store.extend`` trace event stands in for the per-record
        ``store.commit`` stream.  Returns the number of records added.
        """
        self._check_mutable()
        first_id = self._next_id
        added = 0
        for record in records:
            if record.record_id != self._next_id:
                record = replace(record, record_id=self._next_id)
            self._append(record)
            self._next_id += 1
            added += 1
        self._note_bulk_append(added, first_id)
        return added

    def absorb_columns(self, payload: tuple) -> int:
        """Bulk-append a raw-column payload under freshly allocated ids.

        The shard merge path: per-shard stores export their columns once
        (:meth:`export_columns`) and the merged store folds them in
        directly — no unpack-to-records-repack round trip.  Same
        re-identification and bulk accounting as
        :meth:`extend_reindexed`.
        """
        self._check_mutable()
        first_id = self._next_id
        added = self._absorb_payload(payload, first_id)
        self._next_id += added
        self._note_bulk_append(added, first_id)
        return added

    def _note_bulk_append(self, added: int, first_id: int) -> None:
        if not added:
            return
        self._appends.inc(added)
        self.tracer.event("store.extend", at=self.tracer.now,
                          records=added, first_record=first_id,
                          last_record=first_id + added - 1)

    def export_columns(self) -> tuple:
        """The store's rows as a raw-column payload (picklable tuple)."""
        raise NotImplementedError

    def _absorb_payload(self, payload: tuple, first_id: int) -> int:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # enrichment surface
    # ------------------------------------------------------------------ #

    def pending_enrichment(self) -> Iterator[tuple]:
        """Yield ``(index, record_id, ip, domain, timestamp)`` for every
        record whose enrichment columns are still empty (``ip_token``
        unset), in row order — the streaming input of
        :meth:`repro.collector.enrich.Enricher.enrich_store`."""
        raise NotImplementedError

    def enrich_at(self, index: int, *, ip_token: str, provider: str,
                  country: str, global_rank: Optional[int],
                  is_datacenter: Optional[bool], dc_stage: str) -> None:
        """Write one record's enrichment columns in place (and clear the
        raw IP).  The columnar backend writes columns directly; the
        reference backend rebuilds the frozen record, as the original
        enrichment pass did."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def campaigns(self) -> list[str]:
        """Distinct campaign ids, in first-seen order."""
        raise NotImplementedError

    def by_campaign(self, campaign_id: str) -> list[ImpressionRecord]:
        """All records logged for one campaign."""
        raise NotImplementedError

    def count_for(self, campaign_id: str) -> int:
        """Number of records logged for one campaign."""
        raise NotImplementedError

    def where(self, predicate: Callable[[ImpressionRecord], bool]
              ) -> list[ImpressionRecord]:
        """Generic filtered scan."""
        return [record for record in self if predicate(record)]

    def distinct_domains(self, campaign_id: Optional[str] = None) -> set[str]:
        """Publisher domains observed (optionally for one campaign)."""
        raise NotImplementedError

    def by_user(self, campaign_id: Optional[str] = None
                ) -> dict[str, list[ImpressionRecord]]:
        """Records grouped by (IP, User-Agent) user key."""
        raise NotImplementedError

    def select(self, campaign_id: Optional[str], *fields: str) -> list[tuple]:
        """Project *fields* for every record (of one campaign, or all).

        Accepts any :class:`ImpressionRecord` field name plus the derived
        ``domain``, ``user_key`` and ``identity`` (``ip_token or ip``)
        columns; returns one tuple per record in row order.  The audits'
        bulk reads ride this so the columnar backend can answer them from
        its columns without materialising record views.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def _iter_jsonl_lines(self) -> Iterator[str]:
        raise NotImplementedError

    def dumps_jsonl(self) -> str:
        """Serialise every record as one JSON object per line."""
        return "".join(line + "\n" for line in self._iter_jsonl_lines())

    def dump_jsonl(self, path: str | Path) -> int:
        """Write every record as one JSON object per line; returns count.

        Streams line by line — the dump never builds the whole document
        in memory the way :meth:`dumps_jsonl` must.
        """
        with open(Path(path), "w", encoding="utf-8", newline="") as handle:
            for line in self._iter_jsonl_lines():
                handle.write(line + "\n")
        return len(self)

    def _load_lines(self, lines: Iterable[str], source: str) -> None:
        """Parse JSONL *lines* into this (empty) store.

        Shared by :meth:`loads_jsonl` and :meth:`load_jsonl`; the error
        messages name ``source:line_number`` identically for both.  The
        appends counter advances once for the whole batch, so a loaded
        store reports how many records it holds instead of zero.
        """
        last_id = 0
        added = 0
        for line_number, line in enumerate(lines, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                record = ImpressionRecord(**data)
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{source}:{line_number}: bad record: {exc}") from exc
            if record.record_id == last_id:
                raise ValueError(
                    f"{source}:{line_number}: duplicate record id "
                    f"{record.record_id}")
            if record.record_id < last_id:
                raise ValueError(
                    f"{source}:{line_number}: record ids must be strictly "
                    f"increasing ({record.record_id} after {last_id})")
            self._append(record)
            last_id = record.record_id
            added += 1
        self._next_id = last_id + 1
        if added:
            self._appends.inc(added)

    @classmethod
    def loads_jsonl(cls, text: str,
                    source: str = "<string>") -> "ImpressionStore":
        """Rebuild a store from :meth:`dumps_jsonl` output.

        Record ids are required to be strictly increasing, not contiguous:
        a dump produced by filtering or merging stores (record ids with
        gaps, first id > 1) reloads cleanly, and the store keeps allocating
        fresh ids from ``max_id + 1``.
        """
        store = cls()
        store._load_lines(text.splitlines(), source)
        return store

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "ImpressionStore":
        """Rebuild a store from :meth:`dump_jsonl` output (see loads_jsonl).

        Streams the file line by line instead of reading the whole dump
        into memory first; error messages are identical to
        :meth:`loads_jsonl` with the path as the source.
        """
        path = Path(path)
        store = cls()
        with open(path, encoding="utf-8") as handle:
            store._load_lines(handle, source=str(path))
        return store


class _RowStore(ImpressionStore):
    """Reference backing: a Python list of frozen record dataclasses.

    Every query is the original full scan; kept so the equivalence tests
    can pin the columnar backend byte for byte and ``python -m repro
    bench`` can measure the layout change on identical work.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: "Tracer | None" = None) -> None:
        super().__init__(metrics=metrics, tracer=tracer)
        self._records: list[ImpressionRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ImpressionRecord]:
        return iter(self._records)

    def _append(self, record: ImpressionRecord) -> None:
        self._records.append(record)

    def _record_at(self, index: int) -> ImpressionRecord:
        return self._records[index]

    def _write_row(self, index: int, record: ImpressionRecord) -> None:
        self._records[index] = record

    # -- raw-column transfer ------------------------------------------- #

    def export_columns(self) -> tuple:
        data = _ColumnData()
        for record in self._records:
            data.append_record(record)
        return data.payload()

    def _absorb_payload(self, payload: tuple, first_id: int) -> int:
        data = _ColumnData.from_payload(payload)
        for row in range(len(data)):
            self._records.append(data.record(row, record_id=first_id + row))
        return len(data)

    # -- enrichment ------------------------------------------------------ #

    def pending_enrichment(self) -> Iterator[tuple]:
        for index, record in enumerate(self._records):
            if record.ip_token:
                continue
            yield (index, record.record_id, record.ip, record.domain,
                   record.timestamp)

    def enrich_at(self, index: int, *, ip_token: str, provider: str,
                  country: str, global_rank: Optional[int],
                  is_datacenter: Optional[bool], dc_stage: str) -> None:
        self.replace_at(index, replace(
            self._records[index],
            ip_token=ip_token,
            ip="",
            provider=provider,
            country=country,
            global_rank=global_rank,
            is_datacenter=is_datacenter,
            dc_stage=dc_stage,
        ))

    # -- queries (reference full scans) ---------------------------------- #

    def campaigns(self) -> list[str]:
        seen: dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.campaign_id, None)
        return list(seen)

    def by_campaign(self, campaign_id: str) -> list[ImpressionRecord]:
        return [record for record in self._records
                if record.campaign_id == campaign_id]

    def count_for(self, campaign_id: str) -> int:
        return sum(1 for record in self._records
                   if record.campaign_id == campaign_id)

    def distinct_domains(self, campaign_id: Optional[str] = None) -> set[str]:
        records = self._records if campaign_id is None \
            else self.by_campaign(campaign_id)
        return {record.domain for record in records}

    def by_user(self, campaign_id: Optional[str] = None
                ) -> dict[str, list[ImpressionRecord]]:
        records = self._records if campaign_id is None \
            else self.by_campaign(campaign_id)
        grouped: dict[str, list[ImpressionRecord]] = {}
        for record in records:
            grouped.setdefault(record.user_key, []).append(record)
        return grouped

    def select(self, campaign_id: Optional[str], *fields: str) -> list[tuple]:
        getters = [_row_getter(name) for name in fields]
        records = self._records if campaign_id is None \
            else self.by_campaign(campaign_id)
        return [tuple(getter(record) for getter in getters)
                for record in records]

    # -- persistence ------------------------------------------------------ #

    def _iter_jsonl_lines(self) -> Iterator[str]:
        return (json.dumps(asdict(record), sort_keys=True)
                for record in self._records)


class _ColumnarStore(ImpressionStore):
    """Columnar backing: typed ``array`` columns plus a string table.

    Records materialise on demand as :class:`ImpressionRecord` views, so
    callers that want rows still get rows; the bulk surfaces (``select``,
    persistence, the raw-column transfer, enrichment) read and write the
    columns directly.  ``seal()`` builds the per-column indexes the audit
    queries are served from.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: "Tracer | None" = None) -> None:
        super().__init__(metrics=metrics, tracer=tracer)
        self._data = _ColumnData()
        # seal()-built indexes: campaign intern index -> row positions /
        # domain sets, plus the global user-key grouping.
        self._campaign_rows: dict[int, array] | None = None
        self._campaign_domains: dict[int, set[str]] | None = None
        self._all_domains: set[str] | None = None
        self._user_rows: dict[str, array] | None = None

    def __len__(self) -> int:
        return len(self._data)

    def _append(self, record: ImpressionRecord) -> None:
        self._data.append_record(record)

    def _record_at(self, index: int) -> ImpressionRecord:
        return self._data.record(index)

    def _write_row(self, index: int, record: ImpressionRecord) -> None:
        self._data.write_record(index, record)

    # -- raw-column transfer ------------------------------------------- #

    def export_columns(self) -> tuple:
        return self._data.payload()

    def _absorb_payload(self, payload: tuple, first_id: int) -> int:
        return self._data.absorb(payload, first_id)

    # -- enrichment ------------------------------------------------------ #

    def pending_enrichment(self) -> Iterator[tuple]:
        data = self._data
        strings = data.strings
        for row, token in enumerate(data.ip_token):
            if strings[token]:
                continue
            yield (row, data.ids[row], strings[data.ip[row]],
                   strings[data.domain[row]], data.timestamp[row])

    def enrich_at(self, index: int, *, ip_token: str, provider: str,
                  country: str, global_rank: Optional[int],
                  is_datacenter: Optional[bool], dc_stage: str) -> None:
        self._check_mutable()
        data = self._data
        data.ip_token[index] = data.intern(ip_token)
        data.ip[index] = data.intern("")
        data.provider[index] = data.intern(provider)
        data.country[index] = data.intern(country)
        data.dc_stage[index] = data.intern(dc_stage)
        data.rank_present[index] = 0 if global_rank is None else 1
        data.rank[index] = global_rank or 0
        data.is_dc[index] = data._tri(is_datacenter)
        self._replaces.inc()

    # -- seal-time indexes ------------------------------------------------ #

    def seal(self) -> "ImpressionStore":
        if not self._sealed:
            self._build_indexes()
        return super().seal()

    def _build_indexes(self) -> None:
        data = self._data
        strings = data.strings
        campaign_rows: dict[int, array] = {}
        campaign_domains: dict[int, set[str]] = {}
        all_domains: set[str] = set()
        user_rows: dict[str, array] = {}
        for row, campaign in enumerate(data.campaign):
            rows = campaign_rows.get(campaign)
            if rows is None:
                rows = campaign_rows[campaign] = array("I")
                campaign_domains[campaign] = set()
            rows.append(row)
            domain = strings[data.domain[row]]
            campaign_domains[campaign].add(domain)
            all_domains.add(domain)
            user_key = self._user_key_at(row)
            grouped = user_rows.get(user_key)
            if grouped is None:
                grouped = user_rows[user_key] = array("I")
            grouped.append(row)
        self._campaign_rows = campaign_rows
        self._campaign_domains = campaign_domains
        self._all_domains = all_domains
        self._user_rows = user_rows

    def _user_key_at(self, row: int) -> str:
        data = self._data
        strings = data.strings
        token = strings[data.ip_token[row]]
        first = token if token else strings[data.ip[row]]
        return f"{first}\x1f{strings[data.ua[row]]}"

    def _rows_for(self, campaign_id: str) -> "array | range":
        """Row positions of one campaign: index lookup once sealed, a
        single column scan before."""
        index = self._data._string_index.get(campaign_id)
        if index is None:
            return array("I")
        if self._campaign_rows is not None:
            return self._campaign_rows.get(index, array("I"))
        column = self._data.campaign
        return array("I", (row for row, value in enumerate(column)
                           if value == index))

    # -- queries ---------------------------------------------------------- #

    def campaigns(self) -> list[str]:
        strings = self._data.strings
        if self._campaign_rows is not None:
            return [strings[index] for index in self._campaign_rows]
        return [strings[index]
                for index in dict.fromkeys(self._data.campaign)]

    def by_campaign(self, campaign_id: str) -> list[ImpressionRecord]:
        return [self._data.record(row) for row in self._rows_for(campaign_id)]

    def count_for(self, campaign_id: str) -> int:
        return len(self._rows_for(campaign_id))

    def distinct_domains(self, campaign_id: Optional[str] = None) -> set[str]:
        if campaign_id is None:
            if self._all_domains is not None:
                return set(self._all_domains)
            strings = self._data.strings
            return {strings[index] for index in self._data.domain}
        if self._campaign_domains is not None:
            index = self._data._string_index.get(campaign_id)
            found = self._campaign_domains.get(index) \
                if index is not None else None
            return set(found) if found is not None else set()
        strings = self._data.strings
        domain = self._data.domain
        return {strings[domain[row]] for row in self._rows_for(campaign_id)}

    def by_user(self, campaign_id: Optional[str] = None
                ) -> dict[str, list[ImpressionRecord]]:
        record = self._data.record
        if campaign_id is None and self._user_rows is not None:
            return {user_key: [record(row) for row in rows]
                    for user_key, rows in self._user_rows.items()}
        rows = range(len(self._data)) if campaign_id is None \
            else self._rows_for(campaign_id)
        grouped: dict[str, list[ImpressionRecord]] = {}
        for row in rows:
            grouped.setdefault(self._user_key_at(row), []).append(record(row))
        return grouped

    def _column_getter(self, name: str) -> Callable[[int], object]:
        data = self._data
        strings = data.strings
        if name == "record_id":
            return data.ids.__getitem__
        if name in ("timestamp",):
            return data.timestamp.__getitem__
        if name == "exposure_seconds":
            return data.exposure.__getitem__
        if name == "mouse_moves":
            return data.mouse_moves.__getitem__
        if name == "clicks":
            return data.clicks.__getitem__
        if name == "truncated":
            return lambda row: bool(data.truncated[row])
        if name == "pixels_in_view":
            return lambda row: (None if data.pixels[row] == _TRI_NONE
                                else bool(data.pixels[row]))
        if name == "is_datacenter":
            return lambda row: (None if data.is_dc[row] == _TRI_NONE
                                else bool(data.is_dc[row]))
        if name == "global_rank":
            return lambda row: (data.rank[row] if data.rank_present[row]
                                else None)
        string_columns = {
            "campaign_id": data.campaign, "creative_id": data.creative,
            "url": data.url, "domain": data.domain,
            "user_agent": data.ua, "ip": data.ip, "ip_token": data.ip_token,
            "provider": data.provider, "country": data.country,
            "dc_stage": data.dc_stage,
        }
        column = string_columns.get(name)
        if column is not None:
            return lambda row: strings[column[row]]
        if name == "identity":
            return lambda row: (strings[data.ip_token[row]]
                                or strings[data.ip[row]])
        if name == "user_key":
            return self._user_key_at
        raise ValueError(f"unknown select field {name!r}")

    def select(self, campaign_id: Optional[str], *fields: str) -> list[tuple]:
        getters = [self._column_getter(name) for name in fields]
        rows = range(len(self._data)) if campaign_id is None \
            else self._rows_for(campaign_id)
        return [tuple(getter(row) for getter in getters) for row in rows]

    # -- persistence ------------------------------------------------------ #

    def _iter_jsonl_lines(self) -> Iterator[str]:
        row_dict = self._data.row_dict
        return (json.dumps(row_dict(row), sort_keys=True)
                for row in range(len(self._data)))
