"""Impression database.

The MySQL stand-in: an append-only store of logged impressions with the
query surface the audit needs (per-campaign slices, distinct publishers,
per-user groupings) and JSONL persistence so datasets survive between
collection and analysis runs.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.web.publisher import domain_of_url


class StoreSealedError(RuntimeError):
    """Raised on any attempt to mutate a sealed :class:`ImpressionStore`."""


@dataclass(frozen=True)
class ImpressionRecord:
    """One logged ad impression, as the collector stores it.

    Identity/meta fields before enrichment hold the connection facts
    (raw IP, server timestamp); enrichment fills the IP-derived columns and
    *replaces the raw IP with its anonymised token* (``ip`` becomes empty,
    ``ip_token`` non-empty) — the ordering §3/footnote 1 of the paper
    prescribes.
    """

    record_id: int
    campaign_id: str
    creative_id: str
    url: str
    user_agent: str
    ip: str
    timestamp: float
    exposure_seconds: float
    mouse_moves: int = 0
    clicks: int = 0
    truncated: bool = False
    #: SafeFrame-measured pixel visibility; None when unmeasurable (S3.1).
    pixels_in_view: Optional[bool] = None
    # enrichment columns
    ip_token: str = ""
    provider: str = ""
    country: str = ""
    global_rank: Optional[int] = None
    is_datacenter: Optional[bool] = None
    dc_stage: str = ""

    def __post_init__(self) -> None:
        if self.record_id < 1:
            raise ValueError("record_id must be positive")
        if not self.campaign_id:
            raise ValueError("campaign_id must be non-empty")
        if not self.url:
            raise ValueError("url must be non-empty")
        if not self.ip and not self.ip_token:
            raise ValueError("record needs a raw IP or an anonymised token")
        if self.exposure_seconds < 0:
            raise ValueError("exposure_seconds must be non-negative")
        if self.mouse_moves < 0 or self.clicks < 0:
            raise ValueError("interaction counts must be non-negative")

    @property
    def domain(self) -> str:
        """Publisher domain extracted from the reported URL."""
        return domain_of_url(self.url)

    @property
    def user_key(self) -> str:
        """The audit's user identity: IP ⊕ User-Agent.

        Works both before and after anonymisation because the IP token is
        a stable function of the raw IP.
        """
        return f"{self.ip_token or self.ip}\x1f{self.user_agent}"

    @property
    def viewable_upper_bound(self) -> bool:
        """Exposed ≥ 1 s — the auditor's measurable viewability bound."""
        return self.exposure_seconds >= 1.0


class ImpressionStore:
    """Append-only impression table with the audit's query surface."""

    def __init__(self, metrics: MetricsRegistry | None = None,
                 tracer: "Tracer | None" = None) -> None:
        self._records: list[ImpressionRecord] = []
        self._next_id = 1
        self._sealed = False
        self.tracer = tracer if tracer is not None else NULL_TRACER
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._appends = metrics.counter(
            "store.appends", help="records appended to the impression store")
        self._replaces = metrics.counter(
            "store.replaces", help="in-place record overwrites (enrichment)")
        self._sealed_gauge = metrics.gauge(
            "store.sealed", help="1 once the store is frozen against writes")

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ImpressionRecord]:
        return iter(self._records)

    @property
    def sealed(self) -> bool:
        """True once the store has been frozen against mutation."""
        return self._sealed

    def seal(self) -> "ImpressionStore":
        """Freeze the store: any later insert/replace raises.

        The experiment runner seals its dataset after enrichment so that a
        memoised result shared between benchmarks cannot be contaminated by
        one caller mutating it.  Returns self for chaining.
        """
        self._sealed = True
        self._sealed_gauge.set(1)
        return self

    def _check_mutable(self) -> None:
        if self._sealed:
            raise StoreSealedError(
                "store is sealed; experiment datasets are immutable once "
                "enriched (copy the records into a fresh store to modify)")

    def next_record_id(self) -> int:
        """Allocate the id for the next inserted record."""
        return self._next_id

    def insert(self, record: ImpressionRecord) -> None:
        """Append one record (ids must be allocated via next_record_id)."""
        self._check_mutable()
        if record.record_id != self._next_id:
            raise ValueError(
                f"expected record_id {self._next_id}, got {record.record_id}")
        self._records.append(record)
        self._next_id += 1
        self._appends.inc()
        self.tracer.event("store.commit", at=self.tracer.now,
                          record=record.record_id,
                          campaign=record.campaign_id)

    def replace_at(self, index: int, record: ImpressionRecord) -> None:
        """Overwrite a record in place (enrichment uses this)."""
        self._check_mutable()
        self._records[index] = record
        self._replaces.inc()

    def extend_reindexed(self, records: "Iterator[ImpressionRecord] | list[ImpressionRecord]") -> int:
        """Append copies of *records* under freshly allocated ids.

        The shard merge uses this: per-shard stores all number their
        records from 1, so absorbing them into one dataset requires
        re-identification.  Records are appended in iteration order;
        returns the number of records added.
        """
        added = 0
        for record in records:
            self.insert(replace(record, record_id=self._next_id))
            added += 1
        return added

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def campaigns(self) -> list[str]:
        """Distinct campaign ids, in first-seen order."""
        seen: dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.campaign_id, None)
        return list(seen)

    def by_campaign(self, campaign_id: str) -> list[ImpressionRecord]:
        """All records logged for one campaign."""
        return [record for record in self._records
                if record.campaign_id == campaign_id]

    def where(self, predicate: Callable[[ImpressionRecord], bool]
              ) -> list[ImpressionRecord]:
        """Generic filtered scan."""
        return [record for record in self._records if predicate(record)]

    def distinct_domains(self, campaign_id: Optional[str] = None) -> set[str]:
        """Publisher domains observed (optionally for one campaign)."""
        records = self._records if campaign_id is None \
            else self.by_campaign(campaign_id)
        return {record.domain for record in records}

    def by_user(self, campaign_id: Optional[str] = None
                ) -> dict[str, list[ImpressionRecord]]:
        """Records grouped by (IP, User-Agent) user key."""
        records = self._records if campaign_id is None \
            else self.by_campaign(campaign_id)
        grouped: dict[str, list[ImpressionRecord]] = {}
        for record in records:
            grouped.setdefault(record.user_key, []).append(record)
        return grouped

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def dumps_jsonl(self) -> str:
        """Serialise every record as one JSON object per line."""
        lines = [json.dumps(asdict(record), sort_keys=True)
                 for record in self._records]
        return "".join(line + "\n" for line in lines)

    def dump_jsonl(self, path: str | Path) -> int:
        """Write every record as one JSON object per line; returns count."""
        Path(path).write_text(self.dumps_jsonl(), encoding="utf-8")
        return len(self._records)

    @classmethod
    def loads_jsonl(cls, text: str,
                    source: str = "<string>") -> "ImpressionStore":
        """Rebuild a store from :meth:`dumps_jsonl` output.

        Record ids are required to be strictly increasing, not contiguous:
        a dump produced by filtering or merging stores (record ids with
        gaps, first id > 1) reloads cleanly, and the store keeps allocating
        fresh ids from ``max_id + 1``.
        """
        store = cls()
        last_id = 0
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
                record = ImpressionRecord(**data)
            except (json.JSONDecodeError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{source}:{line_number}: bad record: {exc}") from exc
            if record.record_id == last_id:
                raise ValueError(
                    f"{source}:{line_number}: duplicate record id "
                    f"{record.record_id}")
            if record.record_id < last_id:
                raise ValueError(
                    f"{source}:{line_number}: record ids must be strictly "
                    f"increasing ({record.record_id} after {last_id})")
            store._records.append(record)
            last_id = record.record_id
        store._next_id = last_id + 1
        return store

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "ImpressionStore":
        """Rebuild a store from :meth:`dump_jsonl` output (see loads_jsonl)."""
        path = Path(path)
        return cls.loads_jsonl(path.read_text(encoding="utf-8"),
                               source=str(path))
