"""Beacon wire format.

The paper transfers "the information ... in the form of a string" over the
WebSocket.  We pin that string down: pipe-delimited key=value pairs with
percent-encoding, one HELLO message per impression followed by zero or more
EVT messages for interactions.

    HELLO|v=1|cid=Research-010|cr=Research-010-creative|url=http%3A//...|ua=Mozilla...
    EVT|kind=mousemove|t=3.217
    EVT|kind=click|t=6.004

Both sides share this module: the beacon client encodes, the collector
parses (strictly — a malformed message is counted and dropped, never
guessed at).
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass

from repro.beacon.events import BeaconObservation, InteractionEvent, InteractionKind
from repro.util import hotpath

_VERSION = "1"

#: Characters ``urllib.parse.quote(value, safe="")`` passes through
#: untouched.  A value made only of these needs no codec work at all —
#: which covers every campaign id, creative id and most URLs the beacon
#: actually sends — so both directions fast-path on this set.
_ALWAYS_SAFE = ("ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                "abcdefghijklmnopqrstuvwxyz"
                "0123456789_.-~")


class PayloadError(Exception):
    """Malformed beacon message."""


@dataclass(frozen=True)
class HelloMessage:
    """The per-impression announcement.

    ``pixels_in_view`` is present only when the creative ran inside a
    SafeFrame-style iframe whose geometry the script could read.
    """

    campaign_id: str
    creative_id: str
    url: str
    user_agent: str
    pixels_in_view: "bool | None" = None
    #: Stable per-impression delivery nonce (``n=`` field).  Emitted only
    #: when fault injection/retries are active: it is the collector's
    #: idempotency key, letting retried or duplicated deliveries of the
    #: same impression dedup to one record.  Empty when absent.
    nonce: str = ""


@dataclass(frozen=True)
class InteractionMessage:
    """One pointer interaction report."""

    kind: InteractionKind
    offset_seconds: float


def _quote_reference(value: str) -> str:
    return urllib.parse.quote(value, safe="")


def _unquote_reference(value: str) -> str:
    return urllib.parse.unquote(value)


def _quote(value: str) -> str:
    if hotpath._REFERENCE:
        return _quote_reference(value)
    # str.strip with a chars argument removes characters from that set at
    # both ends; an empty result therefore proves every character is in
    # the always-safe set, in one C-level scan.
    if not value.strip(_ALWAYS_SAFE):
        return value
    return urllib.parse.quote(value, safe="")


def _unquote(value: str) -> str:
    # unquote only ever rewrites %XX escapes, so a value without a
    # percent sign round-trips unchanged.
    if hotpath._REFERENCE or "%" in value:
        return _unquote_reference(value)
    return value


def encode_hello(observation: BeaconObservation, nonce: str = "") -> str:
    """Serialise the impression announcement.

    *nonce* (the delivery idempotency key) is appended as ``n=`` only
    when non-empty, so fault-free runs put exactly the historical bytes
    on the wire.
    """
    parts = [
        "HELLO",
        f"v={_VERSION}",
        f"cid={_quote(observation.campaign_id)}",
        f"cr={_quote(observation.creative_id)}",
        f"url={_quote(observation.page_url)}",
        f"ua={_quote(observation.user_agent)}",
    ]
    if observation.pixels_in_view is not None:
        parts.append(f"pv={1 if observation.pixels_in_view else 0}")
    if nonce:
        parts.append(f"n={_quote(nonce)}")
    return "|".join(parts)


def encode_interaction(event: InteractionEvent) -> str:
    """Serialise one interaction event.

    The timestamp is quantised to the wire format's millisecond
    resolution: ``t`` is rendered with ``{offset:.3f}``, which rounds
    half-to-even, so ``parse_message(encode_interaction(e))`` recovers
    the offset to within 0.5 ms (exactly, for offsets already on a
    millisecond grid).  Sub-millisecond precision is deliberately not
    carried on the wire — the beacon's clock never resolves finer.
    """
    return f"EVT|kind={event.kind.value}|t={event.offset_seconds:.3f}"


def _fields(parts: list[str]) -> dict[str, str]:
    fields: dict[str, str] = {}
    for part in parts:
        key, separator, value = part.partition("=")
        if not separator or not key:
            raise PayloadError(f"malformed field: {part!r}")
        if key in fields:
            raise PayloadError(f"duplicate field: {key!r}")
        fields[key] = value
    return fields


def _parse_evt_fast(raw: str) -> "InteractionMessage | None":
    """Fast path for the canonical ``EVT|kind=K|t=T`` shape.

    EVT is the high-volume message (several per impression), so the
    common three-field form is decoded with one ``partition`` instead of
    a full split + field-dict build.  Returns None — falling back to the
    strict generic parser — whenever the message deviates from the
    canonical shape, so error semantics (duplicate fields, malformed
    pairs) are byte-identical to the reference path.
    """
    rest = raw[9:]  # past "EVT|kind="
    kind_value, separator, t_value = rest.partition("|t=")
    if not separator or "|" in kind_value or "|" in t_value:
        return None
    try:
        kind = InteractionKind(kind_value)
    except ValueError:
        raise PayloadError(
            f"unknown interaction kind: {kind_value!r}") from None
    try:
        offset = float(t_value)
    except ValueError:
        raise PayloadError(f"bad EVT timestamp: {t_value!r}") from None
    if offset < 0:
        raise PayloadError("negative EVT timestamp")
    return InteractionMessage(kind=kind, offset_seconds=offset)


def parse_message(raw: str) -> HelloMessage | InteractionMessage:
    """Parse one beacon message; raises :class:`PayloadError` when invalid.

    ``EVT`` timestamps are read back at the wire's millisecond
    quantisation (see :func:`encode_interaction`): the parsed
    ``offset_seconds`` is within 0.5 ms of the value the beacon encoded.
    """
    if not raw:
        raise PayloadError("empty message")
    if not hotpath._REFERENCE and raw.startswith("EVT|kind="):
        message = _parse_evt_fast(raw)
        if message is not None:
            return message
    parts = raw.split("|")
    tag = parts[0]
    if tag == "HELLO":
        fields = _fields(parts[1:])
        if fields.get("v") != _VERSION:
            raise PayloadError(f"unsupported payload version: {fields.get('v')!r}")
        try:
            campaign_id = _unquote(fields["cid"])
            creative_id = _unquote(fields["cr"])
            url = _unquote(fields["url"])
            user_agent = _unquote(fields["ua"])
        except KeyError as exc:
            raise PayloadError(f"HELLO missing field {exc}") from exc
        if not campaign_id or not url:
            raise PayloadError("HELLO with empty campaign or url")
        pixels_in_view = None
        if "pv" in fields:
            if fields["pv"] not in ("0", "1"):
                raise PayloadError(f"bad pv flag: {fields['pv']!r}")
            pixels_in_view = fields["pv"] == "1"
        nonce = _unquote(fields.get("n", ""))
        return HelloMessage(campaign_id=campaign_id, creative_id=creative_id,
                            url=url, user_agent=user_agent,
                            pixels_in_view=pixels_in_view, nonce=nonce)
    if tag == "EVT":
        fields = _fields(parts[1:])
        try:
            kind = InteractionKind(fields["kind"])
        except KeyError:
            raise PayloadError("EVT missing kind") from None
        except ValueError:
            raise PayloadError(f"unknown interaction kind: {fields['kind']!r}") from None
        try:
            offset = float(fields["t"])
        except KeyError:
            raise PayloadError("EVT missing timestamp") from None
        except ValueError:
            raise PayloadError(f"bad EVT timestamp: {fields['t']!r}") from None
        if offset < 0:
            raise PayloadError("negative EVT timestamp")
        return InteractionMessage(kind=kind, offset_seconds=offset)
    raise PayloadError(f"unknown message tag: {tag!r}")
