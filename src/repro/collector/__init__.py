"""Central collection server and impression database.

The server side of the paper's pipeline: WebSocket endpoint that accepts
beacon connections, parses the reported strings, timestamps impressions at
connection establishment, measures exposure as connection duration, and
stores everything in a queryable impression database which is then
enriched with IP meta-data (provider, country, rank) before the raw IP is
anonymised.
"""

from repro.collector.payload import (
    PayloadError,
    HelloMessage,
    InteractionMessage,
    encode_hello,
    encode_interaction,
    parse_message,
)
from repro.collector.store import (
    ImpressionRecord,
    ImpressionStore,
    StoreSealedError,
)
from repro.collector.server import CollectorServer
from repro.collector.enrich import Enricher

__all__ = [
    "PayloadError",
    "HelloMessage",
    "InteractionMessage",
    "encode_hello",
    "encode_interaction",
    "parse_message",
    "ImpressionRecord",
    "ImpressionStore",
    "StoreSealedError",
    "CollectorServer",
    "Enricher",
]
