"""The central collection server.

The Node.js server of the paper, in Python: accepts WebSocket connections
from beacons, performs the upgrade handshake, decodes masked frames,
parses the reported strings, and — on connection teardown — commits one
impression record per connection:

* the **timestamp** is the server's local time at connection
  establishment,
* the **exposure time** is the server-measured connection duration,
* the **IP address** is the connection's remote endpoint.

Connections that never produce a valid HELLO (handshake garbage, malformed
payloads, network deaths before the first frame) are counted and dropped —
the §3.1 error model in action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.collector.payload import (
    HelloMessage,
    InteractionMessage,
    PayloadError,
    parse_message,
)
from repro.collector.store import ImpressionRecord, ImpressionStore
from repro.faults.inject import NULL_INJECTOR, FaultInjector
from repro.faults.quarantine import QuarantineEntry, QuarantineLog
from repro.net.transport import Connection, Endpoint, SimulatedNetwork
from repro.net.websocket import (
    Frame,
    FrameDecoder,
    MessageAssembler,
    Opcode,
    WebSocketError,
    make_handshake_response,
    parse_handshake_request,
)
from repro.obs.events import NULL_EVENTS, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.timing import wall_timer
from repro.obs.trace import NULL_TRACER, Tracer

#: Fixed edges for the (sim-domain) connection-duration histogram —
#: sub-second beacon failures through multi-minute exposures.
CONNECTION_SECONDS_EDGES = (0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0)


@dataclass
class _Session:
    """Per-connection server state."""

    connection: Connection
    decoder: FrameDecoder
    handshake_done: bool = False
    handshake_buffer: bytearray = field(default_factory=bytearray)
    assembler: MessageAssembler = field(default_factory=MessageAssembler)
    hello: Optional[HelloMessage] = None
    mouse_moves: int = 0
    clicks: int = 0
    got_close_frame: bool = False
    failed: bool = False
    finalized: bool = False
    #: Delivery nonce from the HELLO (idempotency key; "" when absent).
    nonce: str = ""
    #: Malformed frames quarantined on this connection (fault mode only).
    quarantined_frames: int = 0


@dataclass
class FinalizeOutcome:
    """What :meth:`CollectorServer.finalize` decided for one connection.

    The beacon client reads ``last_finalize`` to learn whether its
    delivery actually committed (vs. was dedup-rejected or lost), which
    is what the coverage report's reconciliation is built from.
    """

    committed: bool = False
    duplicate: bool = False
    record_id: Optional[int] = None
    quarantined_frames: int = 0
    reason: str = ""


class CollectorServer:
    """Accepts beacon connections and writes the impression database.

    Error/commit counts are backed by a :class:`MetricsRegistry` (the
    shard's, when one is passed in) so the collector contributes to the
    run's mergeable :class:`~repro.obs.metrics.MetricsSnapshot`; the
    legacy integer attributes remain readable *and* assignable — the
    experiment merge sums them across shards.
    """

    DEFAULT_ENDPOINT = Endpoint(ip="198.51.100.10", port=443)

    def __init__(self, store: ImpressionStore,
                 endpoint: Endpoint | None = None,
                 metrics: MetricsRegistry | None = None,
                 tracer: Tracer | None = None,
                 injector: FaultInjector | None = None,
                 events: EventLog | None = None) -> None:
        self.store = store
        self.endpoint = endpoint or self.DEFAULT_ENDPOINT
        self._sessions: dict[int, _Session] = {}
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = injector if injector is not None else NULL_INJECTOR
        self.events = events if events is not None else NULL_EVENTS
        self.quarantine = QuarantineLog()
        self.last_finalize = FinalizeOutcome()
        self._seen_nonces: dict[str, int] = {}
        # Fault-mode instruments are registered only when a plan is
        # active: a fault-free run's metrics snapshot must be
        # byte-identical to a build without the fault layer.
        self._duplicates_counter = None
        self._quarantined_counter = None
        if self.faults.active:
            self._duplicates_counter = self.metrics.counter(
                "collector.duplicates",
                help="deliveries dedup-rejected by the beacon nonce")
            self._quarantined_counter = self.metrics.counter(
                "collector.quarantined_frames",
                help="malformed frames quarantined instead of killing "
                     "the connection")
        self._handshake_failures = self.metrics.counter(
            "collector.handshake_failures",
            help="connections dropped during the upgrade handshake")
        self._malformed_messages = self.metrics.counter(
            "collector.malformed_messages",
            help="frames/payloads rejected after the handshake")
        self._connections_without_hello = self.metrics.counter(
            "collector.connections_without_hello",
            help="closed connections that never produced a valid HELLO")
        self._records_committed = self.metrics.counter(
            "collector.records_committed",
            help="impression records written to the store")
        self._connections_accepted = self.metrics.counter(
            "collector.connections_accepted",
            help="transport connections accepted")
        self._connection_seconds = self.metrics.histogram(
            "collector.connection_seconds", CONNECTION_SECONDS_EDGES,
            help="server-measured durations of committed connections")
        self._decode_timer = wall_timer(
            self.metrics, "collector.decode_wall_seconds",
            help="host time spent decoding frames per process() call")

    # -- registry-backed legacy counters ------------------------------- #

    @property
    def handshake_failures(self) -> int:
        return int(self._handshake_failures.value)

    @handshake_failures.setter
    def handshake_failures(self, value: int) -> None:
        self._handshake_failures.value = value

    @property
    def malformed_messages(self) -> int:
        return int(self._malformed_messages.value)

    @malformed_messages.setter
    def malformed_messages(self, value: int) -> None:
        self._malformed_messages.value = value

    @property
    def connections_without_hello(self) -> int:
        return int(self._connections_without_hello.value)

    @connections_without_hello.setter
    def connections_without_hello(self, value: int) -> None:
        self._connections_without_hello.value = value

    @property
    def records_committed(self) -> int:
        return int(self._records_committed.value)

    @records_committed.setter
    def records_committed(self, value: int) -> None:
        self._records_committed.value = value

    @property
    def duplicates(self) -> int:
        """Deliveries rejected by nonce dedup (0 when faults inactive)."""
        if self._duplicates_counter is None:
            return 0
        return int(self._duplicates_counter.value)

    @property
    def quarantined_frames(self) -> int:
        """Frames quarantined across all sessions (0 when faults inactive)."""
        if self._quarantined_counter is None:
            return 0
        return int(self._quarantined_counter.value)

    def attach(self, network: SimulatedNetwork) -> None:
        """Register as the listening server on *network*."""
        network.on_accept(self._accept)

    def _accept(self, connection: Connection) -> None:
        self._connections_accepted.inc()
        self._sessions[connection.connection_id] = _Session(
            connection=connection,
            decoder=FrameDecoder(require_masked=True, metrics=self.metrics,
                                 tracer=self.tracer,
                                 connection_id=connection.connection_id))

    def session_count(self) -> int:
        """Connections currently tracked (not yet finalized)."""
        return len(self._sessions)

    # ------------------------------------------------------------------ #

    def process(self, connection: Connection) -> None:
        """Consume whatever bytes the connection has pending.

        Driven by the simulation whenever the client flushes — the
        event-loop callback of the real Node.js server.
        """
        session = self._sessions.get(connection.connection_id)
        if session is None or session.failed:
            return
        data = connection.drain_server_inbox()
        if not data:
            return
        if not session.handshake_done:
            data = self._handle_handshake(session, data)
            if session.failed or data is None:
                return
        try:
            with self._decode_timer.measure():
                for frame in session.decoder.feed(data):
                    self._handle_frame(session, frame)
        except WebSocketError as error:
            self._malformed_messages.inc()
            if self.faults.active:
                # Quarantine instead of killing the connection loop: the
                # decoder's garbage is dropped, the incident logged, and
                # the session keeps consuming later (clean) frames.
                self._quarantine_frame(session, error)
            else:
                session.failed = True

    def _quarantine_frame(self, session: _Session,
                          error: WebSocketError) -> None:
        from repro.web.publisher import domain_of_url

        decoder = session.decoder
        dropped = decoder.reset()
        session.quarantined_frames += 1
        self._quarantined_counter.inc()
        hello = session.hello
        offset = decoder.last_error_offset
        entry = QuarantineEntry(
            connection_id=session.connection.connection_id,
            byte_offset=0 if offset is None else offset,
            reason=decoder.last_error_reason or "malformed",
            domain=domain_of_url(hello.url) if hello is not None else "",
            campaign_id=hello.campaign_id if hello is not None else "")
        self.quarantine.record(entry)
        self.tracer.event("collector.quarantine", at=self.tracer.now,
                          connection=entry.connection_id,
                          offset=entry.byte_offset,
                          reason=entry.reason,
                          dropped_bytes=dropped,
                          detail=str(error))
        self.events.emit("frame.quarantined", at=self.tracer.now,
                         connection=entry.connection_id,
                         offset=entry.byte_offset, reason=entry.reason)

    def _handle_handshake(self, session: _Session,
                          data: bytes) -> Optional[bytes]:
        """Returns post-handshake leftover bytes, or None if still waiting."""
        session.handshake_buffer.extend(data)
        marker = session.handshake_buffer.find(b"\r\n\r\n")
        if marker < 0:
            return None
        raw = bytes(session.handshake_buffer[: marker + 4])
        leftover = bytes(session.handshake_buffer[marker + 4:])
        session.handshake_buffer.clear()
        try:
            headers = parse_handshake_request(raw)
        except WebSocketError:
            self._handshake_failures.inc()
            session.failed = True
            return None
        session.handshake_done = True
        if session.connection.is_open:
            response = make_handshake_response(headers["sec-websocket-key"])
            session.connection.server_send(
                response, session.connection.opened_at_server)
        return leftover

    def _handle_frame(self, session: _Session, frame: Frame) -> None:
        if frame.opcode is Opcode.CLOSE:
            session.got_close_frame = True
            return
        if frame.opcode in (Opcode.PING, Opcode.PONG):
            return
        # Data frames may arrive fragmented (RFC 6455 §5.4); reassemble
        # before interpreting the payload.
        try:
            assembled = session.assembler.push(frame)
        except WebSocketError:
            self._malformed_messages.inc()
            session.failed = True
            return
        if assembled is None:
            return
        opcode, payload = assembled
        if opcode is not Opcode.TEXT:
            self._malformed_messages.inc()
            return
        try:
            message = parse_message(payload.decode("utf-8"))
        except (UnicodeDecodeError, PayloadError):
            self._malformed_messages.inc()
            return
        if isinstance(message, HelloMessage):
            if session.hello is None:
                session.hello = message
                session.nonce = message.nonce
            else:
                self._malformed_messages.inc()
        elif isinstance(message, InteractionMessage):
            if message.kind.value == "mousemove":
                session.mouse_moves += 1
            else:
                session.clicks += 1

    # ------------------------------------------------------------------ #

    def finalize(self, connection: Connection) -> Optional[ImpressionRecord]:
        """Commit the connection's impression once it is closed.

        Must be called after the transport close; consumes any last bytes
        first (the client's CLOSE frame usually races the teardown).
        """
        self.process(connection)
        session = self._sessions.pop(connection.connection_id, None)
        if session is None:
            return None
        if connection.is_open:
            # A finalize on an open connection is a server-side programming
            # error; re-track the session rather than lose data silently.
            self._sessions[connection.connection_id] = session
            raise ValueError("cannot finalize an open connection")
        if session.failed or session.hello is None:
            self._connections_without_hello.inc()
            reason = "failed" if session.failed else "no_hello"
            self.last_finalize = FinalizeOutcome(
                quarantined_frames=session.quarantined_frames, reason=reason)
            self.tracer.span(
                "collector.ingest",
                start=connection.opened_at_server,
                end=connection.closed_at_server,
                committed=False,
                reason=reason,
                close_initiator=connection.close_initiator)
            return None
        hello = session.hello
        # Idempotent ingestion: the HELLO's delivery nonce is the
        # dedup key.  A retried (or fault-duplicated) delivery of an
        # impression that already committed — possibly as a truncated
        # record from the aborted first attempt — is rejected here
        # instead of inflating the audit counts.
        if self.faults.active and session.nonce:
            earlier = self._seen_nonces.get(session.nonce)
            if earlier is not None:
                self._duplicates_counter.inc()
                self.last_finalize = FinalizeOutcome(
                    duplicate=True,
                    quarantined_frames=session.quarantined_frames,
                    reason="duplicate")
                self.tracer.span(
                    "collector.ingest",
                    start=connection.opened_at_server,
                    end=connection.closed_at_server,
                    committed=False, reason="duplicate",
                    duplicate_of=earlier,
                    close_initiator=connection.close_initiator)
                return None
        record = ImpressionRecord(
            record_id=self.store.next_record_id(),
            campaign_id=hello.campaign_id,
            creative_id=hello.creative_id,
            url=hello.url,
            user_agent=hello.user_agent,
            ip=connection.client.ip,
            timestamp=connection.opened_at_server,
            exposure_seconds=max(0.0, connection.duration),
            mouse_moves=session.mouse_moves,
            clicks=session.clicks,
            truncated=not session.got_close_frame,
            pixels_in_view=hello.pixels_in_view,
        )
        self.store.insert(record)
        self._records_committed.inc()
        self._connection_seconds.observe(record.exposure_seconds)
        if self.faults.active and session.nonce:
            self._seen_nonces[session.nonce] = record.record_id
        self.last_finalize = FinalizeOutcome(
            committed=True, record_id=record.record_id,
            quarantined_frames=session.quarantined_frames)
        self.tracer.set_record(record.record_id)
        self.tracer.span(
            "collector.ingest",
            start=connection.opened_at_server,
            end=connection.closed_at_server,
            committed=True, record=record.record_id,
            exposure_seconds=record.exposure_seconds,
            truncated=record.truncated,
            close_initiator=connection.close_initiator)
        return record
