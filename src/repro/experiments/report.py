"""``python -m repro report`` — a self-contained markdown run report.

One document that answers "what did this run do, what did it cost, and
can I trust it" without re-running anything: experiment parameters,
headline delivery statistics, per-campaign vendor numbers, the coverage
reconciliation ledger, simulation counters, per-stage wall timings and
memory watermarks, and a summary of the structured event journal.  The
audit report (when supplied) is embedded verbatim.

Everything in the document derives from one
:class:`~repro.experiments.runner.ExperimentResult`, so the report
inherits the repo's determinism contract: at the same (config, seed) the
sim-derived sections are identical however many workers produced them;
wall-clock sections (timings, memory) are labelled as machine-dependent.
"""

from __future__ import annotations

from repro.audit.coverage import ExperimentCoverage
from repro.experiments.runner import ExperimentResult
from repro.obs.events import Event
from repro.obs.memwatch import memory_watermarks
from repro.obs.metrics import SIM, WALL, MetricsSnapshot


def _md_table(headers: list[str], rows: list[list[object]]) -> str:
    """A GitHub-flavored markdown table (all cells stringified)."""
    cells = [[str(cell) for cell in row] for row in rows]
    head = "| " + " | ".join(headers) + " |"
    rule = "| " + " | ".join("---" for _ in headers) + " |"
    body = ["| " + " | ".join(row) + " |" for row in cells]
    return "\n".join([head, rule, *body])


def _mib(value: float) -> str:
    return f"{value / (1 << 20):.1f} MiB"


def _parameters_section(result: ExperimentResult) -> str:
    config = result.config
    rows = [
        ["seed", config.seed],
        ["scale", config.scale],
        ["shard_slices", config.shard_slices],
        ["campaigns", len(config.campaigns)],
        ["flight periods", len(config.periods)],
        ["fault plan", config.faults.name],
    ]
    return "## Parameters\n\n" + _md_table(["parameter", "value"], rows)


def _stats_section(result: ExperimentResult) -> str:
    rows = [[name, value] for name, value in sorted(result.stats.items())]
    return "## Headline statistics\n\n" + _md_table(["statistic", "value"],
                                                    rows)


def _campaigns_section(result: ExperimentResult) -> str:
    rows = []
    for campaign_id in sorted(result.dataset.vendor_reports):
        report = result.dataset.vendor_reports[campaign_id]
        rows.append([campaign_id, report.total_impressions,
                     f"{report.charged_eur:.2f}",
                     f"{report.refunded_eur:.2f}"])
    return ("## Vendor-reported delivery\n\n"
            + _md_table(["campaign", "impressions", "charged (EUR)",
                         "refunded (EUR)"], rows))


def _coverage_section(coverage: ExperimentCoverage) -> str:
    totals = coverage.counts.totals()
    rows = [
        ["delivered", totals.delivered],
        ["observed", totals.observed],
        ["unique", totals.unique],
        ["duplicates", totals.duplicates],
        ["quarantined", totals.quarantined],
        ["lost", totals.lost],
        ["reconciles", "yes" if totals.reconciles else "NO"],
    ]
    lines = ["## Coverage reconciliation", "",
             _md_table(["ledger row", "value"], rows)]
    if coverage.lost_shards:
        lines += ["", "Lost shards (crash recovery exhausted): "
                  + ", ".join(f"`{scope}`"
                              for scope in coverage.lost_shards)]
    if coverage.quarantine_dropped:
        lines += ["", f"Quarantine ledger dropped "
                  f"{coverage.quarantine_dropped} overflow entries."]
    return "\n".join(lines)


def _counters_section(metrics: MetricsSnapshot) -> str:
    counters = metrics.sim_only().counters
    if not counters:
        return ("## Simulation counters\n\n"
                "No sim-domain counters registered.")
    rows = [[name, int(value) if value == int(value) else value]
            for name, _, value in counters]
    return ("## Simulation counters\n\n"
            + _md_table(["counter", "value"], rows))


def _timings_section(metrics: MetricsSnapshot) -> str:
    histograms = metrics.restrict(WALL).histograms
    if not histograms:
        return ("## Stage wall timings\n\n"
                "No wall-domain timings recorded.")
    rows = []
    for histogram in histograms:
        mean = histogram.sum / histogram.total if histogram.total else 0.0
        rows.append([histogram.name, histogram.total,
                     f"{histogram.sum:.3f}", f"{mean:.4f}"])
    return ("## Stage wall timings\n\n"
            "Wall-clock: machine-dependent, excluded from the "
            "determinism contract.\n\n"
            + _md_table(["stage", "count", "sum (s)", "mean (s)"], rows))


def _memory_section(metrics: MetricsSnapshot,
                    extra_memory: dict | None = None) -> str:
    watermarks = memory_watermarks(metrics)
    for stage, fields in (extra_memory or {}).items():
        watermarks.setdefault(stage, {}).update(fields)
    if not watermarks:
        return ("## Memory watermarks\n\n"
                "No memory watermarks recorded.")
    rows = []
    for stage in sorted(watermarks):
        fields = watermarks[stage]
        tracemalloc_peak = fields.get("tracemalloc_peak_bytes", 0.0)
        rows.append([
            stage,
            int(fields.get("spans", 0)),
            _mib(fields.get("rss_peak_bytes", 0.0)),
            _mib(fields.get("rss_delta_bytes", 0.0)),
            _mib(tracemalloc_peak) if tracemalloc_peak else "off",
        ])
    return ("## Memory watermarks\n\n"
            "Wall-clock domain: machine-dependent, excluded from the "
            "determinism contract.\n\n"
            + _md_table(["stage", "spans", "peak RSS", "RSS delta",
                         "tracemalloc peak"], rows))


def _events_section(events: list[Event], dropped: int) -> str:
    if not events and not dropped:
        return ("## Event journal\n\n"
                "No events recorded (telemetry was off).")
    summary: dict[tuple[str, str], int] = {}
    for event in events:
        key = (event.domain, event.name)
        summary[key] = summary.get(key, 0) + 1
    rows = [[domain, name, count]
            for (domain, name), count in sorted(summary.items())]
    sim_count = sum(1 for event in events if event.domain == SIM)
    wall_count = len(events) - sim_count
    lines = ["## Event journal", "",
             f"{len(events)} events ({sim_count} sim, {wall_count} wall)"
             + (f"; {dropped} dropped at shard capacity" if dropped
                else "") + ".", "",
             _md_table(["domain", "event", "count"], rows), "",
             "The sim channel is deterministic in (config, seed) and "
             "byte-identical for any worker count; the wall channel "
             "(heartbeats) is machine-dependent and excluded from "
             "equivalence."]
    return "\n".join(lines)


def render_run_report(result: ExperimentResult, audit: str | None = None,
                      extra_memory: dict | None = None) -> str:
    """The full markdown run report for one experiment result.

    *audit* (optional) is an already-rendered audit report to embed;
    *extra_memory* merges additional ``{stage: {field: value}}``
    watermarks (e.g. an audit stage sampled outside the runner) into the
    memory section.
    """
    sections = [
        "# Repro run report",
        "Independent auditing of online display advertising campaigns — "
        "simulated reproduction run.",
        _parameters_section(result),
        _stats_section(result),
        _campaigns_section(result),
        _coverage_section(result.coverage),
        _counters_section(result.metrics),
        _timings_section(result.metrics),
        _memory_section(result.metrics, extra_memory),
        _events_section(result.events.events(), result.events.dropped),
    ]
    if audit is not None:
        sections.append("## Audit report\n\n```\n" + audit.rstrip("\n")
                        + "\n```")
    return "\n\n".join(sections) + "\n"
