"""Experiment harness: the paper's evaluation, end to end.

``experiments.config`` declares the 8 campaigns of Table 1 and the world
they ran in; ``experiments.runner`` executes the full pipeline (world →
browsing → ad serving → beacon → collector → enrichment → vendor reports)
and hands back an :class:`~repro.audit.dataset.AuditDataset`;
``experiments.tables`` / ``experiments.figures`` regenerate every table
and figure of §4.
"""

from repro.experiments.config import (
    ExperimentConfig,
    CampaignPlan,
    PeriodPlan,
    paper_experiment,
)
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentResult,
    ShardOutput,
    ShardSpec,
    World,
    build_world,
    merge_shard_outputs,
    plan_shards,
    run_paper_experiment,
    run_shard,
)
from repro.experiments.parallel import (
    ParallelExperimentRunner,
    run_paper_experiment_parallel,
)
from repro.experiments import bench, tables, figures

__all__ = [
    "bench",
    "ExperimentConfig",
    "CampaignPlan",
    "PeriodPlan",
    "paper_experiment",
    "ExperimentRunner",
    "ExperimentResult",
    "ShardOutput",
    "ShardSpec",
    "World",
    "build_world",
    "merge_shard_outputs",
    "plan_shards",
    "run_shard",
    "ParallelExperimentRunner",
    "run_paper_experiment_parallel",
    "run_paper_experiment",
    "tables",
    "figures",
]
