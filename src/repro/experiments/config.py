"""Configuration of the paper's evaluation (Table 1) and its world.

Eight campaigns over three flight periods in early 2016.  Budgets are
calibrated so the simulated delivery volumes land near the paper's
impression counts at ``scale = 1.0``; the ``scale`` knob shrinks the whole
world proportionally for tests and quick benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.adnetwork.campaign import CampaignSpec
from repro.faults.plan import FaultPlan
from repro.web.bots import BotConfig

#: Bot operators monetising sports/entertainment inventory (the fleets that
#: hit the Football campaigns in Table 4).
SPORTS_BOT_PROFILE: tuple[tuple[str, float], ...] = (
    ("sports", 0.70), ("entertainment", 0.20), ("news", 0.10))

#: Indiscriminate scraper/crawler traffic present in every period.
CRAWLER_BOT_PROFILE: tuple[tuple[str, float], ...] = (
    ("news", 0.18), ("sports", 0.12), ("entertainment", 0.15),
    ("technology", 0.15), ("lifestyle", 0.14), ("commerce", 0.14),
    ("science", 0.12))


@dataclass(frozen=True)
class CampaignPlan:
    """One Table 1 row: the campaign spec plus its calibration target."""

    spec: CampaignSpec
    target_impressions: int

    def __post_init__(self) -> None:
        if self.target_impressions < 1:
            raise ValueError("target_impressions must be positive")


@dataclass(frozen=True)
class PeriodPlan:
    """One simulated flight period: window, active countries, bot fleets."""

    name: str
    start_unix: float
    end_unix: float
    countries: tuple[str, ...]
    #: (country, BotConfig) fleets active during this period.
    fleets: tuple[tuple[str, BotConfig], ...] = ()

    def __post_init__(self) -> None:
        if self.end_unix <= self.start_unix:
            raise ValueError("period must have positive duration")
        if not self.countries:
            raise ValueError("period needs at least one active country")


@dataclass(frozen=True)
class ExperimentConfig:
    """Full experiment: world sizing, campaigns, periods."""

    seed: int = 2016
    scale: float = 1.0
    publisher_count: int = 9_000
    users_per_country: int = 6_000
    #: Share of publishers whose iframes sandbox third-party scripts -
    #: the main contributor to the audit's own publisher blind spot
    #: (ablation A3 sweeps this).
    script_blocking_fraction: float = 0.15
    campaigns: tuple[CampaignPlan, ...] = ()
    periods: tuple[PeriodPlan, ...] = ()
    #: Fixed number of population sub-shards per (period, country).  Part
    #: of the experiment's identity, NOT a parallelism knob: the shard plan
    #: (and therefore every RNG stream) depends on it, so results are a
    #: function of (seed, scale, shard_slices) and independent of how many
    #: worker processes execute the shards.
    shard_slices: int = 4
    #: Deterministic fault plan (see :mod:`repro.faults`).  Part of the
    #: experiment's identity like the seed: the default inactive plan
    #: leaves every RNG stream, wire byte and output untouched, while an
    #: active plan drives injection from dedicated ``faults/{scope}``
    #: streams so the same (seed, plan) reproduces the same faults
    #: serially or in parallel.
    faults: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 4.0:
            raise ValueError("scale must be within (0, 4]")
        if self.shard_slices < 1:
            raise ValueError("shard_slices must be at least 1")
        if self.publisher_count < 50:
            raise ValueError("publisher_count too small to be meaningful")
        if not 0.0 <= self.script_blocking_fraction <= 1.0:
            raise ValueError("script_blocking_fraction must be within [0, 1]")
        ids = [plan.spec.campaign_id for plan in self.campaigns]
        if len(ids) != len(set(ids)):
            raise ValueError("duplicate campaign ids in experiment")

    @property
    def scaled_users_per_country(self) -> int:
        return max(50, int(round(self.users_per_country * self.scale)))

    @property
    def scaled_publisher_count(self) -> int:
        return max(200, int(round(self.publisher_count * min(1.0, 0.25 + 0.75 * self.scale))))

    def campaign(self, campaign_id: str) -> CampaignPlan:
        """Look a campaign plan up by id."""
        for plan in self.campaigns:
            if plan.spec.campaign_id == campaign_id:
                return plan
        raise KeyError(f"unknown campaign: {campaign_id!r}")


def _fleet(profile: tuple[tuple[str, float], ...], fleets: int,
           bots_full_scale: int, daily_min: float, daily_max: float,
           scale: float, dwell_min: float = 1.2, dwell_max: float = 8.0,
           aggressive_fraction: float = 0.0,
           aggressive_multiplier: float = 1.0,
           fleet_focus_size: int = 0) -> BotConfig:
    """Fleet sized for *scale* while preserving total bot pageview volume.

    Bot *counts* round to integers, so at small scales the per-bot daily
    rates are inflated to keep (bots × rate) — and therefore every bot
    traffic *fraction* — scale-invariant.
    """
    bots = max(1, int(round(bots_full_scale * scale)))
    volume_factor = bots_full_scale * scale / bots
    return BotConfig(bots_per_fleet=bots, fleet_count=fleets,
                     daily_pageviews_min=daily_min * volume_factor,
                     daily_pageviews_max=daily_max * volume_factor,
                     dwell_min=dwell_min, dwell_max=dwell_max,
                     target_profile=profile,
                     aggressive_fraction=aggressive_fraction,
                     aggressive_multiplier=aggressive_multiplier,
                     fleet_focus_size=fleet_focus_size)


def paper_experiment(seed: int = 2016, scale: float = 1.0,
                     faults: FaultPlan | None = None) -> ExperimentConfig:
    """The 8-campaign study of Table 1, sized by *scale*.

    Budgets below are calibrated (at scale 1.0, seed 2016) so delivered
    volumes land in the neighbourhood of the paper's impression counts;
    they scale linearly with the world.  *faults* (default: the inactive
    plan) injects deterministic measurement faults without perturbing the
    fault-free streams.
    """
    flight = CampaignSpec.flight

    def plan(campaign_id: str, keywords: tuple[str, ...], cpm: float,
             countries: tuple[str, ...], window: tuple[float, float],
             daily_budget: float, target: int) -> CampaignPlan:
        start, end = window
        return CampaignPlan(
            spec=CampaignSpec(
                campaign_id=campaign_id,
                keywords=keywords,
                cpm_eur=cpm,
                target_countries=countries,
                start_unix=start,
                end_unix=end,
                daily_budget_eur=daily_budget * scale,
            ),
            target_impressions=max(1, int(round(target * scale))),
        )

    general_keywords = ("Universities", "Research", "Telematics")
    campaigns = (
        plan("Research-010", ("Research",), 0.10, ("ES",),
             flight(2016, 3, 29, 3, 31), 0.135, 5_117),
        plan("Research-020", ("Research",), 0.20, ("ES",),
             flight(2016, 3, 29, 3, 31), 3.80, 42_399),
        plan("Football-010", ("Football",), 0.10, ("ES",),
             flight(2016, 4, 2, 4, 3), 2.40, 33_730),
        plan("Football-030", ("Football",), 0.30, ("ES",),
             flight(2016, 4, 2, 4, 3), 1.25, 24_461),
        plan("Russia", ("Research",), 0.01, ("RU",),
             flight(2016, 3, 29, 3, 31), 0.0118, 4_096),
        plan("USA", ("Research",), 0.01, ("US",),
             flight(2016, 3, 29, 3, 31), 0.0033, 1_178),
        plan("General-005", general_keywords, 0.05, ("ES",),
             flight(2016, 2, 15, 2, 23), 0.050, 8_810),
        plan("General-010", general_keywords, 0.10, ("ES",),
             flight(2016, 2, 18, 2, 23), 1.25, 42_357),
    )

    february = PeriodPlan(
        name="february",
        start_unix=flight(2016, 2, 15, 2, 23)[0],
        end_unix=flight(2016, 2, 15, 2, 23)[1],
        countries=("ES",),
        fleets=(
            ("ES", _fleet(CRAWLER_BOT_PROFILE, fleets=1, bots_full_scale=4,
                          daily_min=25.0, daily_max=45.0, scale=scale,
                          fleet_focus_size=12)),
        ),
    )
    march = PeriodPlan(
        name="march",
        start_unix=flight(2016, 3, 29, 3, 31)[0],
        end_unix=flight(2016, 3, 29, 3, 31)[1],
        countries=("ES", "RU", "US"),
        fleets=(
            ("ES", _fleet(CRAWLER_BOT_PROFILE, fleets=2, bots_full_scale=45,
                          daily_min=14.0, daily_max=40.0, scale=scale,
                          fleet_focus_size=12)),
            ("RU", _fleet(CRAWLER_BOT_PROFILE, fleets=1, bots_full_scale=3,
                          daily_min=15.0, daily_max=35.0, scale=scale,
                          fleet_focus_size=10)),
            ("US", _fleet(CRAWLER_BOT_PROFILE, fleets=1, bots_full_scale=2,
                          daily_min=10.0, daily_max=25.0, scale=scale,
                          fleet_focus_size=8)),
        ),
    )
    april = PeriodPlan(
        name="april",
        start_unix=flight(2016, 4, 2, 4, 3)[0],
        end_unix=flight(2016, 4, 2, 4, 3)[1],
        countries=("ES",),
        fleets=(
            ("ES", _fleet(SPORTS_BOT_PROFILE, fleets=4, bots_full_scale=100,
                          daily_min=8.0, daily_max=22.0, scale=scale,
                          dwell_min=2.0, dwell_max=12.0,
                          aggressive_fraction=0.02,
                          aggressive_multiplier=20.0,
                          fleet_focus_size=100)),
            ("ES", _fleet(CRAWLER_BOT_PROFILE, fleets=1, bots_full_scale=10,
                          daily_min=20.0, daily_max=60.0, scale=scale,
                          fleet_focus_size=12)),
        ),
    )

    return ExperimentConfig(
        seed=seed,
        scale=scale,
        campaigns=campaigns,
        periods=(february, march, april),
        faults=faults if faults is not None else FaultPlan(),
    )
