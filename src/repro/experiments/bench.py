"""``python -m repro bench`` — the repository's performance harness.

Measurement systems only scale to real ad-traffic volumes when their
per-impression path is cheap, so this repo treats throughput as a tested
artifact: the bench harness runs the paper's scenario at a chosen world
scale — once serial, once with ``--jobs N``, and (by default) once more
with every optimized hot path swapped for its retained reference
implementation — and writes the measurements to a schema-validated
``BENCH.json`` at the repository root.  That file is the performance
trajectory: future PRs regenerate it and compare against the committed
numbers.

Each scenario probe runs in its own subprocess so wall time and peak RSS
are clean per mode (no shared allocator high-water marks, no warmed
caches leaking between modes).  The reference probe flips
``REPRO_REFERENCE_HOTPATH`` semantics via ``--reference``, which drives
:mod:`repro.util.hotpath`.

Alongside the scenario probes the harness runs one microbenchmark pinned
by the acceptance bar that motivated this harness: RFC 6455 masking of a
64 KiB payload, optimized bulk-XOR vs. the reference per-byte loop.

``--profile N`` additionally runs the serial scenario in-process under
:mod:`cProfile` and dumps the top *N* functions by cumulative time.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import timeit
from pathlib import Path
from typing import Optional

from repro.experiments.config import paper_experiment
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.parallel import _world_for as _parallel_world_for
from repro.faults.plan import FaultPlan
from repro.obs.memwatch import (
    TRACEMALLOC_ENV,
    memory_watermarks,
    tracemalloc_enabled_from_env,
)
from repro.obs.metrics import WALL, MetricsSnapshot
from repro.util import hotpath

#: Document format identifier; bump when the layout changes shape.
#: v2: per-run ``cold_start_seconds``/``warm_wall_seconds`` split, a
#: ``--jobs`` sweep (``jobs`` is a list, multiple parallel runs, a
#: ``sweep`` section with end-to-end and warm speedups per worker count).
#: v3: per-run ``peak_rss_self_bytes``/``peak_rss_children_bytes`` split
#: (the collapsed max stays as ``peak_rss_bytes``), per-stage
#: ``memory_watermarks``, and a ``tracemalloc`` flag recording whether
#: Python-allocation peaks were sampled.
#: v4: the serial run carries a ``store_memory`` probe (tracemalloc-
#: measured bytes of the columnar impression store vs the row-backed
#: reference rebuilt from the same JSONL) and its headline scalar,
#: ``store_bytes_per_impression``.
BENCH_SCHEMA = "repro-bench/4"

#: Named world scales for the common invocations.  ``tiny`` is the CI
#: smoke size; ``large``/``huge`` reach the 10⁶–10⁷-pageview volumes the
#: paper's methodology targets.  Numbers are the ``--scale`` world factor.
SCALE_PRESETS: dict[str, float] = {
    "tiny": 0.01,
    "small": 0.02,
    "medium": 0.05,
    "large": 0.2,
    "huge": 2.0,
}

_RUN_MODES = ("serial", "parallel", "reference-serial")

_MASK_PAYLOAD_BYTES = 64 * 1024


class BenchSchemaError(ValueError):
    """A BENCH document failed structural validation."""


def resolve_scale(text: str) -> float:
    """Map a ``--scale`` argument (preset name or float) to a world scale."""
    if text in SCALE_PRESETS:
        return SCALE_PRESETS[text]
    try:
        scale = float(text)
    except ValueError:
        presets = ", ".join(sorted(SCALE_PRESETS))
        raise ValueError(
            f"--scale must be a float or one of: {presets}") from None
    return scale


# ---------------------------------------------------------------------- #
# scenario probes
# ---------------------------------------------------------------------- #


def _peak_rss_split() -> tuple[int, int]:
    """High-water resident set as a ``(self, children)`` pair, in bytes.

    Reported separately because the two answer different questions: SELF
    bounds the merge/enrich side of a parallel run, CHILDREN bounds one
    worker's shard footprint.  Collapsing them into one ``max()`` hid
    which side actually owned the watermark.
    """
    try:
        import resource
    except ImportError:  # non-POSIX host: report unknown as 0
        return 0, 0
    factor = 1 if sys.platform == "darwin" else 1024
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return int(own) * factor, int(children) * factor


def _peak_rss_bytes() -> int:
    """High-water resident set of this process and its children, in bytes."""
    return max(_peak_rss_split())


def _stage_wall_seconds(metrics: MetricsSnapshot) -> dict:
    """Per-stage wall timings: every wall-domain histogram, summarised."""
    stages = {}
    for histogram in metrics.restrict(WALL).histograms:
        mean = histogram.sum / histogram.total if histogram.total else 0.0
        stages[histogram.name] = {
            "count": histogram.total,
            "sum_seconds": histogram.sum,
            "mean_seconds": mean,
        }
    return stages


def measure_store_memory(store) -> dict:
    """Tracemalloc-measured bytes of the store, columnar vs reference.

    Serialises *store* to JSONL once, then rebuilds it under
    ``tracemalloc`` twice — once per backend, flipping the same
    reference-hotpath switch ``REPRO_TRACEMALLOC``-style stage sampling
    rides on — so both numbers measure identical records on the same
    interpreter.  The headline ratio is reference/columnar bytes per
    impression: how much the columnar layout saves.
    """
    import gc
    import tracemalloc

    from repro.collector.store import ImpressionStore

    text = store.dumps_jsonl()
    impressions = len(store)
    measured: dict[str, int] = {}
    for label, reference in (("columnar", False), ("reference", True)):
        with hotpath.reference_hotpaths(reference):
            gc.collect()
            tracemalloc.start()
            rebuilt = ImpressionStore.loads_jsonl(text)
            current, _ = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            del rebuilt
        measured[label] = current
    columnar_per = measured["columnar"] / impressions if impressions else 0.0
    reference_per = measured["reference"] / impressions if impressions else 0.0
    return {
        "impressions": impressions,
        "columnar_bytes": measured["columnar"],
        "reference_bytes": measured["reference"],
        "columnar_bytes_per_impression": columnar_per,
        "reference_bytes_per_impression": reference_per,
        "reference_ratio": (measured["reference"] / measured["columnar"]
                            if measured["columnar"] else 0.0),
    }


def run_probe(seed: int, scale: float, jobs: int = 1,
              reference: bool = False, faults: str = "none") -> dict:
    """Run one scenario measurement in this process and return its row.

    ``reference=True`` flips every optimized hot path to its retained
    reference implementation for the duration of the run — the
    pre-optimization baseline, measured on identical work.  *faults*
    names the fault plan to run under (``none`` measures the historical
    fault-free path), so the retry/recovery machinery's overhead is
    benchmarkable like any other stage.
    """
    if reference and jobs != 1:
        raise ValueError("the reference baseline is measured serial-only")
    plan = FaultPlan.resolve(faults)
    mode = "reference-serial" if reference \
        else ("serial" if jobs == 1 else "parallel")
    with hotpath.reference_hotpaths(reference):
        config = paper_experiment(seed=seed, scale=scale, faults=plan)
        # Cold start (world build) and warm shard work are reported as
        # separate fields: folding the one-off setup into the number used
        # for speedups understates real shard throughput.  Warming the
        # per-process cache here is exactly what the runner would do.
        started = time.perf_counter()
        _parallel_world_for(config)
        cold_start_seconds = time.perf_counter() - started
        started = time.perf_counter()
        result = ParallelExperimentRunner(config, jobs=jobs).run()
        warm_wall_seconds = time.perf_counter() - started
    wall_seconds = cold_start_seconds + warm_wall_seconds
    pageviews = result.stats["pageviews"]
    delivered = result.stats["delivered"]
    rss_self, rss_children = _peak_rss_split()
    row = {
        "mode": mode,
        "jobs": jobs,
        "reference": reference,
        "faults": plan.name,
        "wall_seconds": wall_seconds,
        "cold_start_seconds": cold_start_seconds,
        "warm_wall_seconds": warm_wall_seconds,
        "pageviews": pageviews,
        "delivered": delivered,
        "logged": result.stats["logged"],
        "pageviews_per_second": pageviews / warm_wall_seconds,
        "impressions_per_second": delivered / warm_wall_seconds,
        "peak_rss_bytes": max(rss_self, rss_children),
        "peak_rss_self_bytes": rss_self,
        "peak_rss_children_bytes": rss_children,
        "memory_watermarks": memory_watermarks(result.metrics),
        "tracemalloc": tracemalloc_enabled_from_env(),
        "stage_wall_seconds": _stage_wall_seconds(result.metrics),
    }
    if mode == "serial":
        # Measured after the timed section so the rebuild-under-
        # tracemalloc pass cannot pollute the wall numbers above.
        store_memory = measure_store_memory(result.dataset.store)
        row["store_memory"] = store_memory
        row["store_bytes_per_impression"] = \
            store_memory["columnar_bytes_per_impression"]
    return row


def _probe_in_subprocess(seed: int, scale: float, jobs: int,
                         reference: bool, faults: str = "none",
                         tracemalloc: bool = False) -> dict:
    """Run one probe in a fresh interpreter for clean wall/RSS numbers."""
    command = [sys.executable, "-m", "repro", "bench", "--probe",
               "--seed", str(seed), "--scale", repr(scale),
               "--jobs", str(jobs), "--faults", faults]
    if reference:
        command.append("--reference")
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = package_root + (os.pathsep + existing
                                        if existing else "")
    if tracemalloc:
        env[TRACEMALLOC_ENV] = "1"
    completed = subprocess.run(command, capture_output=True, text=True,
                               env=env)
    if completed.returncode != 0:
        raise RuntimeError(
            f"bench probe failed (exit {completed.returncode}):\n"
            f"{completed.stderr.strip()}")
    return json.loads(completed.stdout)


# ---------------------------------------------------------------------- #
# microbenchmarks
# ---------------------------------------------------------------------- #


def mask_microbenchmark(payload_bytes: int = _MASK_PAYLOAD_BYTES) -> dict:
    """Optimized vs. reference RFC 6455 masking throughput.

    Deterministic payload/key; best-of-3 timing per implementation, so a
    scheduler hiccup cannot manufacture (or hide) a regression.
    """
    from repro.net.websocket import _apply_mask, _apply_mask_reference

    payload = bytes(index & 0xFF for index in range(payload_bytes))
    mask = b"\x37\xfa\x21\x3d"
    assert _apply_mask(payload, mask) == _apply_mask_reference(payload, mask)

    optimized_number, reference_number = 200, 10
    optimized_seconds = min(timeit.repeat(
        lambda: _apply_mask(payload, mask),
        number=optimized_number, repeat=3)) / optimized_number
    reference_seconds = min(timeit.repeat(
        lambda: _apply_mask_reference(payload, mask),
        number=reference_number, repeat=3)) / reference_number
    mib = payload_bytes / (1024.0 * 1024.0)
    return {
        "payload_bytes": payload_bytes,
        "optimized_seconds_per_op": optimized_seconds,
        "reference_seconds_per_op": reference_seconds,
        "optimized_mib_per_second": mib / optimized_seconds,
        "reference_mib_per_second": mib / reference_seconds,
        "speedup": reference_seconds / optimized_seconds,
    }


# ---------------------------------------------------------------------- #
# the BENCH document
# ---------------------------------------------------------------------- #


def normalize_jobs(jobs) -> tuple[int, ...]:
    """Normalise a ``jobs`` argument (int or iterable) to a sorted,
    de-duplicated sweep tuple; always includes 1 (the serial anchor)."""
    values = (jobs,) if isinstance(jobs, int) else tuple(jobs)
    if not values:
        raise ValueError("jobs must name at least one worker count")
    for value in values:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise ValueError(f"jobs values must be integers >= 1: {value!r}")
    return tuple(sorted({1, *values}))


def run_bench(seed: int = 2016, scale: float = SCALE_PRESETS["small"],
              jobs=2, include_baseline: bool = True,
              subprocess_probes: bool = True, faults: str = "none",
              tracemalloc: bool = False, progress=None) -> dict:
    """Measure the scenario (serial, a ``--jobs`` sweep of parallel runs,
    optional reference baseline) plus the masking microbenchmark; returns
    the validated BENCH document.

    ``jobs`` is a worker count or an iterable of them — each value above
    1 gets its own parallel probe, and the ``sweep`` section reports the
    end-to-end and warm speedups against the serial run.
    ``subprocess_probes=False`` runs every probe in-process (faster, used
    by tests); the default isolates each probe in a fresh interpreter.
    ``faults`` names the fault plan every scenario probe runs under.
    ``tracemalloc=True`` additionally samples Python-allocation peaks per
    stage (slower; off by default so throughput numbers stay honest).
    """
    plan = FaultPlan.resolve(faults)
    jobs_values = normalize_jobs(jobs)

    def note(message: str) -> None:
        if progress is not None:
            progress(message)

    def probe(probe_jobs: int, reference: bool) -> dict:
        if subprocess_probes:
            return _probe_in_subprocess(seed, scale, probe_jobs, reference,
                                        faults=faults,
                                        tracemalloc=tracemalloc)
        if tracemalloc:
            saved = os.environ.get(TRACEMALLOC_ENV)
            os.environ[TRACEMALLOC_ENV] = "1"
            try:
                return run_probe(seed, scale, jobs=probe_jobs,
                                 reference=reference, faults=faults)
            finally:
                if saved is None:
                    os.environ.pop(TRACEMALLOC_ENV, None)
                else:
                    os.environ[TRACEMALLOC_ENV] = saved
        return run_probe(seed, scale, jobs=probe_jobs, reference=reference,
                         faults=faults)

    note(f"probing serial run (scale={scale}, faults={plan.name}) ...")
    serial = probe(1, False)
    runs = [serial]
    sweep = []
    for value in jobs_values:
        if value == 1:
            continue
        note(f"probing parallel run (--jobs {value}) ...")
        parallel = probe(value, False)
        runs.append(parallel)
        sweep.append({
            "jobs": value,
            "end_to_end_speedup": (serial["wall_seconds"]
                                   / parallel["wall_seconds"]),
            "warm_speedup": (serial["warm_wall_seconds"]
                             / parallel["warm_wall_seconds"]),
        })

    document = {
        "schema": BENCH_SCHEMA,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "platform": sys.platform,
        "seed": seed,
        "scale": scale,
        "jobs": list(jobs_values),
        "faults": plan.name,
        "shard_slices": paper_experiment(seed=seed, scale=scale).shard_slices,
        "runs": runs,
    }
    if sweep:
        document["sweep"] = sweep
    if include_baseline:
        note("probing reference baseline (pre-optimization hot paths) ...")
        baseline = probe(1, True)
        runs.append(baseline)
        document["comparison"] = {
            "end_to_end_speedup": (baseline["wall_seconds"]
                                   / serial["wall_seconds"]),
            "impressions_per_second_gain": (
                serial["impressions_per_second"]
                / baseline["impressions_per_second"]),
        }
    note("running masking microbenchmark ...")
    document["micro"] = {"mask_xor_64kib": mask_microbenchmark()}
    validate_bench_document(document)
    return document


def dumps_bench(document: dict) -> str:
    """Strict-JSON serialisation of a BENCH document (validates first)."""
    validate_bench_document(document)
    return json.dumps(document, indent=2, sort_keys=True,
                      allow_nan=False) + "\n"


def write_bench(document: dict, path: "str | Path") -> Path:
    """Validate and write *document*; returns the path written."""
    path = Path(path)
    path.write_text(dumps_bench(document), encoding="utf-8")
    return path


# ---------------------------------------------------------------------- #
# schema validation
# ---------------------------------------------------------------------- #


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise BenchSchemaError(message)


def _check_number(value, name: str, minimum: Optional[float] = None,
                  strict: bool = False) -> None:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{name} must be a number, got {value!r}")
    if minimum is not None:
        if strict:
            _require(value > minimum, f"{name} must be > {minimum}: {value!r}")
        else:
            _require(value >= minimum,
                     f"{name} must be >= {minimum}: {value!r}")


def _check_int(value, name: str, minimum: int = 0) -> None:
    _require(isinstance(value, int) and not isinstance(value, bool),
             f"{name} must be an integer, got {value!r}")
    _require(value >= minimum, f"{name} must be >= {minimum}: {value!r}")


def _check_run(run: dict, name: str) -> None:
    _require(isinstance(run, dict), f"{name} must be an object")
    _require(run.get("mode") in _RUN_MODES,
             f"{name}.mode must be one of {_RUN_MODES}: {run.get('mode')!r}")
    _check_int(run.get("jobs"), f"{name}.jobs", minimum=1)
    _require(isinstance(run.get("reference"), bool),
             f"{name}.reference must be a boolean")
    if "faults" in run:
        # Optional for compatibility with documents that predate fault
        # plans; when present it must name the plan the probe ran under.
        _require(isinstance(run["faults"], str) and run["faults"],
                 f"{name}.faults must be a non-empty string")
    _check_number(run.get("wall_seconds"), f"{name}.wall_seconds",
                  minimum=0.0, strict=True)
    _check_number(run.get("cold_start_seconds"),
                  f"{name}.cold_start_seconds", minimum=0.0)
    _check_number(run.get("warm_wall_seconds"),
                  f"{name}.warm_wall_seconds", minimum=0.0, strict=True)
    for field in ("pageviews", "delivered", "logged", "peak_rss_bytes",
                  "peak_rss_self_bytes", "peak_rss_children_bytes"):
        _check_int(run.get(field), f"{name}.{field}")
    for field in ("pageviews_per_second", "impressions_per_second"):
        _check_number(run.get(field), f"{name}.{field}", minimum=0.0)
    _require(isinstance(run.get("tracemalloc"), bool),
             f"{name}.tracemalloc must be a boolean")
    watermarks = run.get("memory_watermarks")
    _require(isinstance(watermarks, dict),
             f"{name}.memory_watermarks must be an object")
    for stage, fields in watermarks.items():
        _require(isinstance(stage, str) and stage,
                 f"{name}.memory_watermarks keys must be non-empty strings")
        _require(isinstance(fields, dict),
                 f"{name}.memory_watermarks[{stage!r}] must be an object")
        for field, value in fields.items():
            _check_number(value,
                          f"{name}.memory_watermarks[{stage!r}].{field}")
    if run.get("mode") == "serial":
        # v4: the serial run owns the store-layout memory probe.
        store_memory = run.get("store_memory")
        _require(isinstance(store_memory, dict),
                 f"{name}.store_memory must be an object")
        _check_int(store_memory.get("impressions"),
                   f"{name}.store_memory.impressions")
        for field in ("columnar_bytes", "reference_bytes"):
            _check_int(store_memory.get(field),
                       f"{name}.store_memory.{field}")
        for field in ("columnar_bytes_per_impression",
                      "reference_bytes_per_impression", "reference_ratio"):
            _check_number(store_memory.get(field),
                          f"{name}.store_memory.{field}", minimum=0.0)
        _check_number(run.get("store_bytes_per_impression"),
                      f"{name}.store_bytes_per_impression", minimum=0.0)
    stages = run.get("stage_wall_seconds")
    _require(isinstance(stages, dict),
             f"{name}.stage_wall_seconds must be an object")
    for stage, summary in stages.items():
        _require(isinstance(stage, str) and stage,
                 f"{name}.stage_wall_seconds keys must be non-empty strings")
        _require(isinstance(summary, dict),
                 f"{name}.stage_wall_seconds[{stage!r}] must be an object")
        _check_int(summary.get("count"),
                   f"{name}.stage_wall_seconds[{stage!r}].count")
        for field in ("sum_seconds", "mean_seconds"):
            _check_number(summary.get(field),
                          f"{name}.stage_wall_seconds[{stage!r}].{field}",
                          minimum=0.0)


def validate_bench_document(document: dict) -> None:
    """Structural validation of a BENCH document; raises on any violation.

    Strict by design: the file is the cross-PR performance contract, so a
    malformed document should fail the writer (and the CI smoke job), not
    silently degrade the trajectory.
    """
    _require(isinstance(document, dict), "document must be an object")
    _require(document.get("schema") == BENCH_SCHEMA,
             f"schema must be {BENCH_SCHEMA!r}: {document.get('schema')!r}")
    _check_number(document.get("created_unix"), "created_unix", minimum=0.0)
    for field in ("python", "platform"):
        _require(isinstance(document.get(field), str) and document[field],
                 f"{field} must be a non-empty string")
    _check_int(document.get("seed"), "seed")
    _check_number(document.get("scale"), "scale", minimum=0.0, strict=True)
    jobs = document.get("jobs")
    _require(isinstance(jobs, list) and jobs,
             f"jobs must be a non-empty list of worker counts: {jobs!r}")
    for index, value in enumerate(jobs):
        _check_int(value, f"jobs[{index}]", minimum=1)
    _require(jobs == sorted(set(jobs)),
             f"jobs must be sorted and de-duplicated: {jobs!r}")
    if "faults" in document:
        _require(isinstance(document["faults"], str) and document["faults"],
                 "faults must be a non-empty string")
    _check_int(document.get("shard_slices"), "shard_slices", minimum=1)

    runs = document.get("runs")
    _require(isinstance(runs, list) and runs, "runs must be a non-empty list")
    for index, run in enumerate(runs):
        _check_run(run, f"runs[{index}]")
    modes = [run["mode"] for run in runs]
    _require(modes.count("serial") == 1,
             "runs must contain exactly one serial run")
    _require(modes.count("reference-serial") <= 1,
             "runs must contain at most one reference-serial run")
    parallel_jobs = [run["jobs"] for run in runs
                     if run["mode"] == "parallel"]
    _require(len(parallel_jobs) == len(set(parallel_jobs)),
             "parallel runs must have distinct jobs values")
    for value in parallel_jobs:
        _require(value >= 2, "parallel runs must use jobs >= 2")

    sweep = document.get("sweep")
    if sweep is not None:
        _require(isinstance(sweep, list) and sweep,
                 "sweep must be a non-empty list")
        for index, entry in enumerate(sweep):
            name = f"sweep[{index}]"
            _require(isinstance(entry, dict), f"{name} must be an object")
            _check_int(entry.get("jobs"), f"{name}.jobs", minimum=2)
            _require(entry["jobs"] in parallel_jobs,
                     f"{name}.jobs has no matching parallel run")
            for field in ("end_to_end_speedup", "warm_speedup"):
                _check_number(entry.get(field), f"{name}.{field}",
                              minimum=0.0, strict=True)

    comparison = document.get("comparison")
    if comparison is not None:
        _require(isinstance(comparison, dict), "comparison must be an object")
        _require("reference-serial" in modes,
                 "comparison requires a reference-serial run")
        for field in ("end_to_end_speedup", "impressions_per_second_gain"):
            _check_number(comparison.get(field), f"comparison.{field}",
                          minimum=0.0, strict=True)

    micro = document.get("micro")
    _require(isinstance(micro, dict) and "mask_xor_64kib" in micro,
             "micro.mask_xor_64kib is required")
    mask = micro["mask_xor_64kib"]
    _require(isinstance(mask, dict), "micro.mask_xor_64kib must be an object")
    _check_int(mask.get("payload_bytes"), "micro.mask_xor_64kib.payload_bytes",
               minimum=1)
    for field in ("optimized_seconds_per_op", "reference_seconds_per_op",
                  "optimized_mib_per_second", "reference_mib_per_second",
                  "speedup"):
        _check_number(mask.get(field), f"micro.mask_xor_64kib.{field}",
                      minimum=0.0, strict=True)


# ---------------------------------------------------------------------- #
# profiling
# ---------------------------------------------------------------------- #


def profile_scenario(seed: int, scale: float, top: int = 25) -> str:
    """cProfile the serial scenario in-process; returns the top-N report."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    ParallelExperimentRunner(paper_experiment(seed=seed, scale=scale),
                             jobs=1).run()
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()
