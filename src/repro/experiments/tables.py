"""Regeneration of the paper's tables (1–4) from an experiment result.

Each ``tableN`` function returns ``(headers, rows)`` with exactly the
columns the paper reports; ``render_tableN`` wraps it as aligned text.
"""

from __future__ import annotations

import datetime as _dt
import math

from repro.audit.context import ContextAudit
from repro.audit.conversion import ConversionAudit
from repro.audit.fraud import FraudAudit
from repro.audit.viewability import ViewabilityAudit
from repro.experiments.runner import ExperimentResult
from repro.util.tables import render_table

Headers = list[str]
Rows = list[list[object]]


def _date(unix_time: float) -> str:
    moment = _dt.datetime.fromtimestamp(unix_time, tz=_dt.timezone.utc)
    return moment.strftime("%d %B")


def table1(result: ExperimentResult) -> tuple[Headers, Rows]:
    """Table 1: description of the 8 campaigns as measured.

    Impression/publisher counts are what our methodology logged — the same
    accounting the paper's Table 1 uses.
    """
    headers = ["Campaign ID", "# Impressions", "# Publishers", "Start date",
               "End date", "CPM", "Targeted Keywords", "Targeted Location"]
    rows: Rows = []
    for campaign_id in result.dataset.campaign_ids:
        campaign = result.dataset.campaigns[campaign_id]
        records = result.dataset.records(campaign_id)
        publishers = {record.domain for record in records}
        rows.append([
            campaign_id,
            len(records),
            len(publishers),
            _date(campaign.start_unix),
            _date(campaign.end_unix - 86_400.0),   # inclusive end date
            f"{campaign.cpm_eur:.2f} EUR",
            ", ".join(campaign.keywords),
            "/".join(campaign.target_countries),
        ])
    return headers, rows


def table2(result: ExperimentResult) -> tuple[Headers, Rows]:
    """Table 2: contextually meaningful impressions, audit vs vendor."""
    audit = ContextAudit(result.dataset)
    headers = ["Campaign ID", "Auditing Methodology (% impressions)",
               "AdWords-like Report (% impressions)"]
    rows: Rows = []
    for campaign_id in result.dataset.campaign_ids:
        outcome = audit.assess(campaign_id)
        rows.append([campaign_id, str(outcome.audit_fraction),
                     str(outcome.vendor_fraction)])
    return headers, rows


def table3(result: ExperimentResult) -> tuple[Headers, Rows]:
    """Table 3: fraction of impressions exposed >= 1 s."""
    audit = ViewabilityAudit(result.dataset)
    headers = ["Campaign ID", "View >= 1s"]
    rows: Rows = [[outcome.campaign_id, str(outcome.viewable_upper_bound)]
                  for outcome in audit.table()]
    return headers, rows


def table4(result: ExperimentResult) -> tuple[Headers, Rows]:
    """Table 4: data-center traffic statistics per campaign."""
    audit = FraudAudit(result.dataset)
    headers = ["Campaign ID", "% of Cloud Provider IPs",
               "% of Impressions delivered to Cloud IPs",
               "% of Publishers showing ads to Cloud IPs"]
    rows: Rows = [[stats.campaign_id, str(stats.dc_ips),
                   str(stats.dc_impressions), str(stats.dc_publishers)]
                  for stats in audit.table()]
    return headers, rows


def _eur_or_dash(value: float) -> str:
    """Format an EUR amount, rendering non-finite values as an em dash.

    A campaign with zero conversions has an infinite cost per conversion;
    printing ``inf EUR`` (or worse, ``nan``) in a report column helps
    nobody — the dash marks "no conversions to divide by".
    """
    if not math.isfinite(value):
        return "—"
    return f"{value:.4f} EUR"


def conversion_funnel(result: ExperimentResult) -> tuple[Headers, Rows]:
    """Per-campaign conversion funnel (the paper's future-work analysis)."""
    audit = ConversionAudit(result.dataset, result.conversions)
    headers = ["Campaign ID", "Impressions", "Clicks", "Conversions",
               "CTR", "Cost/Conversion", "DC Clicks"]
    rows: Rows = []
    for outcome in audit.table():
        rows.append([
            outcome.campaign_id,
            outcome.impressions,
            outcome.clicks,
            outcome.conversions,
            str(outcome.ctr),
            _eur_or_dash(outcome.cost_per_conversion_eur),
            outcome.dc_clicks,
        ])
    return headers, rows


def render_conversion_funnel(result: ExperimentResult) -> str:
    headers, rows = conversion_funnel(result)
    return render_table(headers, rows,
                        title="Conversion funnel (first-party join)")


def render_table1(result: ExperimentResult) -> str:
    headers, rows = table1(result)
    return render_table(headers, rows,
                        title="Table 1: campaigns under audit")


def render_table2(result: ExperimentResult) -> str:
    headers, rows = table2(result)
    return render_table(headers, rows,
                        title="Table 2: contextually meaningful impressions")


def render_table3(result: ExperimentResult) -> str:
    headers, rows = table3(result)
    return render_table(headers, rows,
                        title="Table 3: viewability upper bound")


def render_table4(result: ExperimentResult) -> str:
    headers, rows = table4(result)
    return render_table(headers, rows,
                        title="Table 4: data-center traffic")
