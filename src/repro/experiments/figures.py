"""Regeneration of the paper's figures (1–3) as data series.

Figures come out as the numeric series behind the plots — Venn counts,
per-bucket fractions, scatter points — printed as aligned text, so runs
are directly comparable with the paper and with each other.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.brand_safety import BrandSafetyAudit, VennCounts
from repro.audit.frequency import FrequencyAudit
from repro.audit.popularity import PopularityAudit, RankDistribution
from repro.experiments.runner import ExperimentResult
from repro.util.stats import median
from repro.web.ranking import RankingService
from repro.util.tables import render_table

#: The five CPM-diverse campaigns Figure 2 plots.
FIGURE2_CAMPAIGNS = ("Russia", "Research-010", "Research-020",
                     "Football-010", "Football-030")

#: The campaign Figure 1 singles out.
FIGURE1_SPOTLIGHT = "General-005"


@dataclass(frozen=True)
class Figure1:
    """Publisher Venn: all campaigns aggregated + the spotlight campaign."""

    aggregate: VennCounts
    spotlight_id: str
    spotlight: VennCounts

    def render(self) -> str:
        rows = [
            ["All campaigns", self.aggregate.audit_only, self.aggregate.both,
             self.aggregate.vendor_only,
             str(self.aggregate.unreported_by_vendor),
             str(self.aggregate.unlogged_by_audit)],
            [self.spotlight_id, self.spotlight.audit_only, self.spotlight.both,
             self.spotlight.vendor_only,
             str(self.spotlight.unreported_by_vendor),
             str(self.spotlight.unlogged_by_audit)],
        ]
        return render_table(
            ["Scope", "Audit only", "Both", "Vendor only",
             "Unreported by vendor", "Unlogged by audit"],
            rows, title="Figure 1: publisher Venn diagram")


def figure1(result: ExperimentResult,
            spotlight: str = FIGURE1_SPOTLIGHT) -> Figure1:
    """Figure 1's Venn counts."""
    audit = BrandSafetyAudit(result.dataset)
    return Figure1(
        aggregate=audit.venn(None),
        spotlight_id=spotlight,
        spotlight=audit.venn(spotlight),
    )


@dataclass(frozen=True)
class Figure2:
    """Rank-bucket distributions for the five CPM-diverse campaigns."""

    bucket_labels: tuple[str, ...]
    distributions: tuple[RankDistribution, ...]

    def render(self) -> str:
        sections = []
        for series_name, attribute in (("publishers", "publisher_fractions"),
                                       ("impressions", "impression_fractions")):
            headers = ["Alexa bucket"] + [
                f"{distribution.campaign_id}" for distribution in self.distributions]
            rows = []
            for index, label in enumerate(self.bucket_labels):
                row: list[object] = [label]
                for distribution in self.distributions:
                    row.append(f"{getattr(distribution, attribute)[index]:.3f}")
                rows.append(row)
            sections.append(render_table(
                headers, rows,
                title=f"Figure 2 ({series_name} fraction per rank bucket)",
                right_align=tuple(range(1, len(headers)))))
        return "\n\n".join(sections)


def figure2(result: ExperimentResult,
            campaign_ids: tuple[str, ...] = FIGURE2_CAMPAIGNS) -> Figure2:
    """Figure 2's distributions over Alexa-rank log buckets."""
    audit = PopularityAudit(result.dataset)
    distributions = tuple(audit.distribution(campaign_id)
                          for campaign_id in campaign_ids)
    edges = list(distributions[0].bucket_edges) if distributions else []
    labels = tuple(RankingService.bucket_label(edges, index)
                   for index in range(len(edges)))
    return Figure2(bucket_labels=labels, distributions=distributions)


@dataclass(frozen=True)
class Figure3:
    """The frequency scatter, summarised into impression-count bins."""

    points: tuple[tuple[int, float], ...]
    users_over_10: int
    users_over_100: int

    def render(self) -> str:
        # Log-spaced impression bins keep the rendering compact while
        # preserving the scatter's shape.
        bins = [(2, 4), (5, 10), (11, 30), (31, 100), (101, 300), (301, 10**9)]
        rows = []
        for low, high in bins:
            gaps = [gap for count, gap in self.points if low <= count <= high]
            label = f"{low}-{high if high < 10**9 else '...'}"
            if gaps:
                rows.append([label, len(gaps), f"{median(gaps):.0f}",
                             f"{min(gaps):.0f}"])
            else:
                rows.append([label, 0, "-", "-"])
        table = render_table(
            ["Impressions per user", "Users", "Median inter-arrival (s)",
             "Min inter-arrival (s)"],
            rows, title="Figure 3: ad repetition per user (all campaigns)",
            right_align=(1, 2, 3))
        return (f"{table}\n"
                f"Users with >10 impressions of one ad: {self.users_over_10}\n"
                f"Users with >100 impressions of one ad: {self.users_over_100}")


def figure3(result: ExperimentResult) -> Figure3:
    """Figure 3's scatter and headline counts."""
    audit = FrequencyAudit(result.dataset)
    summary = audit.summary(None)
    return Figure3(
        points=tuple(audit.scatter_series(None)),
        users_over_10=summary.users_over_10,
        users_over_100=summary.users_over_100,
    )
