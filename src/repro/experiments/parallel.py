"""Sharded parallel experiment runner.

Runs the shard plan of :mod:`repro.experiments.runner` across worker
processes.  The contract is strict determinism: at the same seed the
merged result is byte-for-byte identical to the serial runner's, whatever
``jobs`` is, because

* the shard plan is a pure function of the config (``shard_slices`` is a
  config field, never derived from the worker count),
* every shard draws only from RNG streams scoped to itself, and
* the merge consumes shard outputs in canonical plan order regardless of
  completion order.

The same contract covers observability: each ``ShardOutput`` carries the
shard's metrics snapshot *and* its flight-recorder trace set, and the
merge folds both in canonical order (rewriting trace impression/record
ids with the same cumulative offsets the store merge uses) — so
``--trace-json`` exports are byte-identical for any ``jobs`` value.

It also covers failure recovery: a shard that crashes (an injected
:class:`~repro.faults.plan.ShardCrashError`, or a worker process dying)
is re-executed up to ``shard_retries`` extra times — the attempt counter
feeds only the fault plan's crash decision, never an RNG stream, so a
recovered shard is byte-identical to one that never crashed.  A shard
that exhausts its retries is marked *lost* and the run degrades
gracefully: the merge proceeds without it and the coverage report names
the lost scope.  Serial (``jobs=1``) and pooled execution share the same
recovery policy, keeping their outputs identical even under crashes.
When a broken pool forces the inline fallback, each unsettled shard
resumes from the attempt it had already accrued — never from zero — so
the fault plan's per-attempt crash decisions stay consistent with the
pooled history.

Three things keep the pooled hot path cheap:

* **Warm workers.** The pool uses the explicit ``fork`` start method
  where the platform offers one, and the parent builds the world *before*
  creating the pool so children inherit the per-process cache
  copy-on-write.  On spawn-only platforms a pool initializer builds the
  world once per worker at startup instead of lazily on first task.
* **Compact wire format.** Workers return :func:`pack_shard_output`
  blobs (:mod:`repro.experiments.wire`) rather than whole pickled
  ``ShardOutput`` objects — an order of magnitude fewer bytes cross the
  process boundary per shard.
* **Merge-as-you-go.** Completed shards fold into a
  :class:`~repro.experiments.runner.ShardMerger` as soon as the canonical
  plan order allows, overlapping merge work with still-running shards
  instead of paying a post-hoc barrier.  Out-of-order completions wait in
  a buffer *as packed bytes* and are only unpacked at fold time.

Shards are submitted largest-first so the long poles start early (the
classic LPT heuristic) — a scheduling detail that cannot affect the
output.
"""

from __future__ import annotations

import multiprocessing
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.experiments.config import ExperimentConfig, paper_experiment
from repro.experiments.runner import (
    DEFAULT_SHARD_RETRIES,
    ExperimentResult,
    HeartbeatEmitter,
    ShardMerger,
    ShardOutput,
    ShardSpec,
    World,
    build_world,
    emit_plan_events,
    plan_shards,
    run_shard,
)
from repro.experiments.wire import pack_shard_output, unpack_shard_output
from repro.faults.plan import ShardCrashError
from repro.obs.events import EventLog
from repro.obs.memwatch import MemoryWatch

#: Per-process world cache.  ExperimentConfig is a frozen dataclass of
#: hashable parts, so the config itself is the key; a worker that serves
#: several shards of one experiment builds the world exactly once.
_WORLD_CACHE: dict[ExperimentConfig, World] = {}

#: Buffer marker for a shard that exhausted its retries in the pool.
_LOST = object()


def _world_for(config: ExperimentConfig) -> World:
    world = _WORLD_CACHE.get(config)
    if world is None:
        world = build_world(config)
        _WORLD_CACHE[config] = world
    return world


def _pool_context() -> multiprocessing.context.BaseContext:
    """The explicit ``fork`` context where the platform provides one.

    Forked workers inherit the parent's already-populated
    ``_WORLD_CACHE`` copy-on-write, so they start warm for free.  On
    spawn-only platforms the default context is used and
    :func:`_warm_worker` does the warm-up once per worker instead.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _warm_worker(config: ExperimentConfig) -> None:
    """Pool initializer: build the world once, at worker startup.

    Under fork this finds the inherited cache entry and is a no-op; under
    spawn it moves the world build out of the first task's latency.
    """
    _world_for(config)


def _run_shard_job(config: ExperimentConfig, shard: ShardSpec,
                   attempt: int = 0) -> ShardOutput:
    """Worker entry point: simulate one shard in this process."""
    return run_shard(config, shard, _world_for(config), attempt=attempt)


def _run_shard_job_packed(config: ExperimentConfig, shard: ShardSpec,
                          attempt: int = 0) -> bytes:
    """Worker entry point returning the compact wire encoding.

    Packing on the worker side keeps the bytes crossing the process
    boundary an order of magnitude smaller than a pickled
    :class:`ShardOutput`; the parent unpacks lazily at fold time.
    """
    return pack_shard_output(_run_shard_job(config, shard, attempt=attempt))


def _run_recovering(config: ExperimentConfig, shard: ShardSpec,
                    world: World, retries: int,
                    first_attempt: int = 0) -> ShardOutput | None:
    """Run one shard in-process with crash recovery; None when lost.

    ``first_attempt`` resumes a shard that already burned attempts
    elsewhere (a crashed-then-resubmitted shard stranded by a broken
    pool) without resetting the fault plan's attempt counter.
    """
    for attempt in range(first_attempt, retries + 1):
        try:
            return run_shard(config, shard, world, attempt=attempt)
        except ShardCrashError:
            continue
    return None


class ParallelExperimentRunner:
    """Executes one :class:`ExperimentConfig` across worker processes.

    ``jobs=1`` (the default) runs every shard in-process with no
    executor involved — the serial fallback.  Higher values bound the
    worker-process count (capped at the shard count).  ``shard_retries``
    bounds the crash-recovery re-executions granted to each shard before
    it is marked lost.
    """

    def __init__(self, config: ExperimentConfig, jobs: int = 1,
                 shard_retries: int = DEFAULT_SHARD_RETRIES,
                 events: EventLog | None = None,
                 heartbeat_interval: float | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if shard_retries < 0:
            raise ValueError("shard_retries must be non-negative")
        self.config = config
        self.jobs = jobs
        self.shard_retries = shard_retries
        self.events = events
        self.heartbeat_interval = heartbeat_interval

    def run(self) -> ExperimentResult:
        config = self.config
        shards = plan_shards(config)
        events = self.events if self.events is not None else EventLog()
        memwatch = MemoryWatch()
        emit_plan_events(events, shards)
        heartbeat = HeartbeatEmitter(self.events, self.heartbeat_interval,
                                     shards, jobs=self.jobs)
        # Built before the pool exists: forked workers inherit it.
        with memwatch.stage("world_build"):
            world = _world_for(config)
        merger = ShardMerger(config, world, events=events, memwatch=memwatch)
        if self.jobs <= 1 or len(shards) <= 1:
            done_weight = 0.0
            for done, shard in enumerate(shards):
                heartbeat.pulse(done, done_weight, running=1,
                                queued=len(shards) - done - 1)
                output = _run_recovering(config, shard, world,
                                         self.shard_retries)
                if output is None:
                    merger.fold_lost(shard.scope, at=shard.end_unix)
                else:
                    merger.fold(output)
                done_weight += shard.weight
            heartbeat.pulse(len(shards), done_weight, force=True)
        else:
            self._run_pooled(shards, world, merger, heartbeat)
        return merger.result()

    def _run_pooled(self, shards: list[ShardSpec], world: World,
                    merger: ShardMerger,
                    heartbeat: HeartbeatEmitter) -> None:
        """Fan shards out to a warm process pool, folding as they settle.

        Settled shards are buffered as packed bytes and folded into
        ``merger`` the moment canonical plan order allows — the merge
        overlaps with still-running shards instead of waiting for all of
        them.  Crashed shards are resubmitted with an incremented
        attempt; if the pool itself breaks, the unsettled shards finish
        inline, each resuming from its recorded attempt.
        """
        config = self.config
        workers = min(self.jobs, len(shards))
        submit_order = sorted(range(len(shards)),
                              key=lambda i: (-shards[i].weight, i))
        # index -> packed bytes | ShardOutput (inline fallback) | _LOST
        ready: dict[int, object] = {}
        attempts = [0] * len(shards)
        settled = [False] * len(shards)
        settled_count = 0
        settled_weight = 0.0
        next_fold = 0

        def settle(index: int, item: object) -> None:
            nonlocal settled_count, settled_weight
            ready[index] = item
            settled[index] = True
            settled_count += 1
            settled_weight += shards[index].weight

        def fold_ready() -> None:
            nonlocal next_fold
            while next_fold < len(shards) and next_fold in ready:
                item = ready.pop(next_fold)
                if item is _LOST:
                    merger.fold_lost(shards[next_fold].scope,
                                     at=shards[next_fold].end_unix)
                elif isinstance(item, bytes):
                    merger.fold(unpack_shard_output(item, config, world))
                else:
                    merger.fold(item)
                next_fold += 1

        try:
            with ProcessPoolExecutor(
                    max_workers=workers,
                    mp_context=_pool_context(),
                    initializer=_warm_worker,
                    initargs=(config,)) as pool:
                pending = {
                    pool.submit(_run_shard_job_packed, config, shards[index],
                                0): (index, 0)
                    for index in submit_order}
                while pending:
                    # The timeout keyword only appears when heartbeats are
                    # on: tests stub ``wait`` with a two-argument fake, and
                    # the plain path should match the historical call shape.
                    if heartbeat.enabled:
                        done, _ = wait(pending,
                                       timeout=heartbeat.interval,
                                       return_when=FIRST_COMPLETED)
                        running = min(len(pending), workers)
                        heartbeat.pulse(settled_count, settled_weight,
                                        running=running,
                                        queued=len(pending) - running,
                                        merge_buffer=len(ready))
                    else:
                        done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, attempt = pending.pop(future)
                        try:
                            settle(index, future.result())
                        except ShardCrashError:
                            if attempt < self.shard_retries:
                                attempts[index] = attempt + 1
                                retry = pool.submit(
                                    _run_shard_job_packed, config,
                                    shards[index], attempt + 1)
                                pending[retry] = (index, attempt + 1)
                            else:
                                settle(index, _LOST)
                    fold_ready()
        except BrokenProcessPool:
            # The pool died under us (a worker was killed hard).  Finish
            # the unsettled shards in-process — slower, never wrong.
            pass
        for index in range(len(shards)):
            if not settled[index]:
                output = _run_recovering(config, shards[index], world,
                                         self.shard_retries,
                                         first_attempt=attempts[index])
                settle(index, _LOST if output is None else output)
        fold_ready()
        heartbeat.pulse(settled_count, settled_weight, force=True)


#: Memo for :func:`run_paper_experiment_parallel`, keyed on
#: ``(seed, scale)`` only — ``jobs`` changes how fast the result arrives,
#: never its bytes, so different worker counts share one cache entry.
_RESULT_MEMO: OrderedDict[tuple[int, float], ExperimentResult] = OrderedDict()
_RESULT_MEMO_MAX = 4


def run_paper_experiment_parallel(seed: int = 2016, scale: float = 1.0,
                                  jobs: int = 1) -> ExperimentResult:
    """Parallel (and memoised) variant of ``run_paper_experiment``.

    Returns a result byte-identical to the serial function at the same
    (seed, scale); ``jobs`` only changes how fast it arrives — which is
    why it is deliberately *not* part of the memo key.
    """
    key = (seed, scale)
    found = _RESULT_MEMO.get(key)
    if found is not None:
        _RESULT_MEMO.move_to_end(key)
        return found
    result = ParallelExperimentRunner(
        paper_experiment(seed=seed, scale=scale), jobs=jobs).run()
    _RESULT_MEMO[key] = result
    while len(_RESULT_MEMO) > _RESULT_MEMO_MAX:
        _RESULT_MEMO.popitem(last=False)
    return result


def _clear_result_memo() -> None:
    """Test hook: forget memoised experiment results."""
    _RESULT_MEMO.clear()


run_paper_experiment_parallel.cache_clear = _clear_result_memo
