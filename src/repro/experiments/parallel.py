"""Sharded parallel experiment runner.

Runs the shard plan of :mod:`repro.experiments.runner` across worker
processes.  The contract is strict determinism: at the same seed the
merged result is byte-for-byte identical to the serial runner's, whatever
``jobs`` is, because

* the shard plan is a pure function of the config (``shard_slices`` is a
  config field, never derived from the worker count),
* every shard draws only from RNG streams scoped to itself, and
* the merge consumes shard outputs in canonical plan order regardless of
  completion order.

The same contract covers observability: each ``ShardOutput`` carries the
shard's metrics snapshot *and* its flight-recorder trace set, and the
merge folds both in canonical order (rewriting trace impression/record
ids with the same cumulative offsets the store merge uses) — so
``--trace-json`` exports are byte-identical for any ``jobs`` value.

It also covers failure recovery: a shard that crashes (an injected
:class:`~repro.faults.plan.ShardCrashError`, or a worker process dying)
is re-executed up to ``shard_retries`` extra times — the attempt counter
feeds only the fault plan's crash decision, never an RNG stream, so a
recovered shard is byte-identical to one that never crashed.  A shard
that exhausts its retries is marked *lost* and the run degrades
gracefully: the merge proceeds without it and the coverage report names
the lost scope.  Serial (``jobs=1``) and pooled execution share the same
recovery policy, keeping their outputs identical even under crashes.

Worker processes rebuild the (config-deterministic) world once each and
cache it; on platforms that fork, the parent builds it *before* creating
the pool so children inherit it copy-on-write instead.  Shards are
submitted largest-first so the long poles start early (the classic LPT
heuristic) — a scheduling detail that cannot affect the output.
"""

from __future__ import annotations

import functools
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.experiments.config import ExperimentConfig, paper_experiment
from repro.experiments.runner import (
    DEFAULT_SHARD_RETRIES,
    ExperimentResult,
    ShardOutput,
    ShardSpec,
    World,
    build_world,
    merge_shard_outputs,
    plan_shards,
    run_shard,
)
from repro.faults.plan import ShardCrashError

#: Per-process world cache.  ExperimentConfig is a frozen dataclass of
#: hashable parts, so the config itself is the key; a worker that serves
#: several shards of one experiment builds the world exactly once.
_WORLD_CACHE: dict[ExperimentConfig, World] = {}


def _world_for(config: ExperimentConfig) -> World:
    world = _WORLD_CACHE.get(config)
    if world is None:
        world = build_world(config)
        _WORLD_CACHE[config] = world
    return world


def _run_shard_job(config: ExperimentConfig, shard: ShardSpec,
                   attempt: int = 0) -> ShardOutput:
    """Worker entry point: simulate one shard in this process."""
    return run_shard(config, shard, _world_for(config), attempt=attempt)


def _run_recovering(config: ExperimentConfig, shard: ShardSpec,
                    world: World, retries: int,
                    first_attempt: int = 0) -> ShardOutput | None:
    """Run one shard in-process with crash recovery; None when lost."""
    for attempt in range(first_attempt, retries + 1):
        try:
            return run_shard(config, shard, world, attempt=attempt)
        except ShardCrashError:
            continue
    return None


class ParallelExperimentRunner:
    """Executes one :class:`ExperimentConfig` across worker processes.

    ``jobs=1`` (the default) runs every shard in-process with no
    executor involved — the serial fallback.  Higher values bound the
    worker-process count (capped at the shard count).  ``shard_retries``
    bounds the crash-recovery re-executions granted to each shard before
    it is marked lost.
    """

    def __init__(self, config: ExperimentConfig, jobs: int = 1,
                 shard_retries: int = DEFAULT_SHARD_RETRIES) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if shard_retries < 0:
            raise ValueError("shard_retries must be non-negative")
        self.config = config
        self.jobs = jobs
        self.shard_retries = shard_retries

    def run(self) -> ExperimentResult:
        config = self.config
        shards = plan_shards(config)
        # Built before the pool exists: forked workers inherit it.
        world = _world_for(config)
        if self.jobs <= 1 or len(shards) <= 1:
            outputs: list[ShardOutput | None] = [
                _run_recovering(config, shard, world, self.shard_retries)
                for shard in shards]
        else:
            outputs = self._run_pooled(shards, world)
        lost = tuple(shards[index].scope
                     for index, output in enumerate(outputs)
                     if output is None)
        kept = [output for output in outputs if output is not None]
        return merge_shard_outputs(config, world, kept, lost=lost)

    def _run_pooled(self, shards: list[ShardSpec],
                    world: World) -> list[ShardOutput | None]:
        """Fan shards out to a process pool, resubmitting crashed ones."""
        config = self.config
        submit_order = sorted(range(len(shards)),
                              key=lambda i: (-shards[i].weight, i))
        outputs: list[ShardOutput | None] = [None] * len(shards)
        settled = [False] * len(shards)
        try:
            with ProcessPoolExecutor(
                    max_workers=min(self.jobs, len(shards))) as pool:
                pending = {
                    pool.submit(_run_shard_job, config, shards[index],
                                0): (index, 0)
                    for index in submit_order}
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        index, attempt = pending.pop(future)
                        try:
                            outputs[index] = future.result()
                            settled[index] = True
                        except ShardCrashError:
                            if attempt < self.shard_retries:
                                retry = pool.submit(
                                    _run_shard_job, config, shards[index],
                                    attempt + 1)
                                pending[retry] = (index, attempt + 1)
                            else:
                                settled[index] = True
        except BrokenProcessPool:
            # The pool died under us (a worker was killed hard).  Finish
            # the unsettled shards in-process — slower, never wrong.
            pass
        for index, done_flag in enumerate(settled):
            if not done_flag and outputs[index] is None:
                outputs[index] = _run_recovering(
                    config, shards[index], world, self.shard_retries)
        return outputs


@functools.lru_cache(maxsize=4)
def run_paper_experiment_parallel(seed: int = 2016, scale: float = 1.0,
                                  jobs: int = 1) -> ExperimentResult:
    """Parallel (and memoised) variant of ``run_paper_experiment``.

    Returns a result byte-identical to the serial function at the same
    (seed, scale); ``jobs`` only changes how fast it arrives.
    """
    return ParallelExperimentRunner(paper_experiment(seed=seed, scale=scale),
                                    jobs=jobs).run()
