"""Sharded parallel experiment runner.

Runs the shard plan of :mod:`repro.experiments.runner` across worker
processes.  The contract is strict determinism: at the same seed the
merged result is byte-for-byte identical to the serial runner's, whatever
``jobs`` is, because

* the shard plan is a pure function of the config (``shard_slices`` is a
  config field, never derived from the worker count),
* every shard draws only from RNG streams scoped to itself, and
* the merge consumes shard outputs in canonical plan order regardless of
  completion order.

The same contract covers observability: each ``ShardOutput`` carries the
shard's metrics snapshot *and* its flight-recorder trace set, and the
merge folds both in canonical order (rewriting trace impression/record
ids with the same cumulative offsets the store merge uses) — so
``--trace-json`` exports are byte-identical for any ``jobs`` value.

Worker processes rebuild the (config-deterministic) world once each and
cache it; on platforms that fork, the parent builds it *before* creating
the pool so children inherit it copy-on-write instead.  Shards are
submitted largest-first so the long poles start early (the classic LPT
heuristic) — a scheduling detail that cannot affect the output.
"""

from __future__ import annotations

import functools
from concurrent.futures import ProcessPoolExecutor

from repro.experiments.config import ExperimentConfig, paper_experiment
from repro.experiments.runner import (
    ExperimentResult,
    ShardOutput,
    ShardSpec,
    World,
    build_world,
    merge_shard_outputs,
    plan_shards,
    run_shard,
)

#: Per-process world cache.  ExperimentConfig is a frozen dataclass of
#: hashable parts, so the config itself is the key; a worker that serves
#: several shards of one experiment builds the world exactly once.
_WORLD_CACHE: dict[ExperimentConfig, World] = {}


def _world_for(config: ExperimentConfig) -> World:
    world = _WORLD_CACHE.get(config)
    if world is None:
        world = build_world(config)
        _WORLD_CACHE[config] = world
    return world


def _run_shard_job(config: ExperimentConfig, shard: ShardSpec) -> ShardOutput:
    """Worker entry point: simulate one shard in this process."""
    return run_shard(config, shard, _world_for(config))


class ParallelExperimentRunner:
    """Executes one :class:`ExperimentConfig` across worker processes.

    ``jobs=1`` (the default) runs every shard in-process with no
    executor involved — the serial fallback.  Higher values bound the
    worker-process count (capped at the shard count).
    """

    def __init__(self, config: ExperimentConfig, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.config = config
        self.jobs = jobs

    def run(self) -> ExperimentResult:
        config = self.config
        shards = plan_shards(config)
        # Built before the pool exists: forked workers inherit it.
        world = _world_for(config)
        if self.jobs <= 1 or len(shards) <= 1:
            outputs = [run_shard(config, shard, world) for shard in shards]
            return merge_shard_outputs(config, world, outputs)
        submit_order = sorted(range(len(shards)),
                              key=lambda i: (-shards[i].weight, i))
        outputs: list[ShardOutput | None] = [None] * len(shards)
        with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(shards))) as pool:
            futures = {index: pool.submit(_run_shard_job, config,
                                          shards[index])
                       for index in submit_order}
            for index, future in futures.items():
                outputs[index] = future.result()
        return merge_shard_outputs(config, world, outputs)


@functools.lru_cache(maxsize=4)
def run_paper_experiment_parallel(seed: int = 2016, scale: float = 1.0,
                                  jobs: int = 1) -> ExperimentResult:
    """Parallel (and memoised) variant of ``run_paper_experiment``.

    Returns a result byte-identical to the serial function at the same
    (seed, scale); ``jobs`` only changes how fast it arrives.
    """
    return ParallelExperimentRunner(paper_experiment(seed=seed, scale=scale),
                                    jobs=jobs).run()
