"""End-to-end experiment execution.

Builds the world, runs every flight period through the full pipeline —
browsing → ad server → beacon script → WebSocket client → collector —
then applies the vendor's post-hoc fraud refunds, produces the vendor
reports, enriches + anonymises the collected dataset and assembles the
:class:`~repro.audit.dataset.AuditDataset` the audits consume.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.adnetwork.conversions import ConversionEvent, ConversionSimulator
from repro.adnetwork.inventory import ExternalDemand
from repro.adnetwork.matching import MatchEngine
from repro.adnetwork.reporting import VendorReport, VendorReporter
from repro.adnetwork.server import AdServer, NetworkPolicy
from repro.audit.dataset import AuditDataset
from repro.beacon.client import BeaconClient
from repro.beacon.script import BeaconScript
from repro.collector.enrich import Enricher
from repro.collector.server import CollectorServer
from repro.collector.store import ImpressionStore
from repro.experiments.config import ExperimentConfig, paper_experiment
from repro.geo.denylist import DenyList
from repro.geo.ipdb import GeoIpDatabase
from repro.geo.providers import ProviderRegistry
from repro.geo.resolver import DataCenterResolver
from repro.net.transport import SimulatedNetwork
from repro.taxonomy.lexicon import build_default_lexicon
from repro.util.rng import RngFactory
from repro.util.simclock import SimClock
from repro.web.bots import BotFleet
from repro.web.browsing import BrowsingSimulator
from repro.web.population import PublisherUniverse, UniverseConfig
from repro.web.users import PopulationConfig, UserPopulation


@dataclass
class ExperimentResult:
    """Everything a table/figure generator or test may want to inspect."""

    config: ExperimentConfig
    dataset: AuditDataset
    server: AdServer
    universe: PublisherUniverse
    registry: ProviderRegistry
    collector: CollectorServer
    network: SimulatedNetwork
    pageview_count: int = 0
    stats: dict[str, int] = field(default_factory=dict)
    #: First-party conversion log (the paper's future-work analysis),
    #: anonymised with the same salt as the impression dataset.
    conversions: list[ConversionEvent] = field(default_factory=list)

    def delivered(self, campaign_id: str) -> int:
        """Ground-truth impressions the network delivered for a campaign."""
        return len(self.server.impressions_for(campaign_id))

    def logged(self, campaign_id: str) -> int:
        """Impressions our methodology managed to log for a campaign."""
        return len(self.dataset.records(campaign_id))


class ExperimentRunner:
    """Executes one :class:`ExperimentConfig`."""

    def __init__(self, config: ExperimentConfig) -> None:
        self.config = config

    def run(self) -> ExperimentResult:
        """Run the whole experiment; deterministic in the config's seed."""
        config = self.config
        rngs = RngFactory(config.seed)
        lexicon = build_default_lexicon()
        tree = lexicon.tree

        universe = PublisherUniverse(
            rngs.stream("publishers"),
            UniverseConfig(
                publisher_count=config.scaled_publisher_count,
                script_blocking_fraction=config.script_blocking_fraction),
            lexicon=lexicon)
        registry = ProviderRegistry(rngs.stream("providers"))
        population = UserPopulation(
            rngs.stream("users"), registry, tree,
            config=PopulationConfig(
                users_per_country=config.scaled_users_per_country))
        ipdb = GeoIpDatabase(registry)
        denylist = DenyList.from_registry(registry)
        resolver = DataCenterResolver(ipdb, denylist)

        campaigns = [plan.spec for plan in config.campaigns]
        server = AdServer(campaigns, MatchEngine(lexicon), ExternalDemand(),
                          ipdb, policy=NetworkPolicy())

        first_start = min(period.start_unix for period in config.periods) \
            if config.periods else 0.0
        clock = SimClock(first_start)
        network = SimulatedNetwork(clock, rngs.stream("network"))
        store = ImpressionStore()
        collector = CollectorServer(store)
        collector.attach(network)
        beacon_client = BeaconClient(network, collector, clock,
                                     rngs.stream("beacon-net"))
        script = BeaconScript()
        browsing = BrowsingSimulator(universe, tree)

        serve_rng = rngs.stream("serving")
        script_rng = rngs.stream("script")
        conversion_sim = ConversionSimulator()
        conversion_rng = rngs.stream("conversions")
        conversions: list[ConversionEvent] = []
        pageview_count = 0
        for period in sorted(config.periods, key=lambda p: p.start_unix):
            bots = []
            for country, bot_config in period.fleets:
                fleet = BotFleet(rngs.stream(f"bots/{period.name}/{country}"),
                                 registry, countries=(country,),
                                 config=bot_config)
                bots.extend(fleet.bots)
            humans = []
            for country in period.countries:
                humans.extend(population.in_country(country))
            stream = browsing.stream(humans, bots, period.start_unix,
                                     period.end_unix,
                                     rngs.stream(f"browse/{period.name}"))
            for pageview in stream:
                pageview_count += 1
                impression = server.serve(pageview, serve_rng)
                if impression is None:
                    continue
                observation = script.observe(impression, script_rng)
                if observation is None:
                    continue
                beacon_client.deliver(impression, observation)
                conversion = conversion_sim.simulate(
                    impression, observation.clicks, conversion_rng)
                if conversion is not None:
                    conversions.append(conversion)

        # Post-flight: the vendor's silent fraud clawback, then reports.
        server.billing.apply_fraud_refunds(server.impressions,
                                           rngs.stream("refunds"))
        reporter = VendorReporter()
        vendor_reports: dict[str, VendorReport] = {}
        for campaign in campaigns:
            campaign_id = campaign.campaign_id
            vendor_reports[campaign_id] = reporter.report(
                campaign_id, server.impressions_for(campaign_id),
                charged_eur=server.billing.charged_total(campaign_id),
                refunded_eur=server.billing.refunded_total(campaign_id))

        enricher = Enricher(ipdb, resolver, universe.ranking)
        enricher.enrich_store(store)
        conversions = [event.anonymized(enricher.salt)
                       for event in conversions]

        dataset = AuditDataset(
            store=store,
            campaigns={campaign.campaign_id: campaign
                       for campaign in campaigns},
            vendor_reports=vendor_reports,
            directory={publisher.domain: publisher
                       for publisher in universe.publishers},
            lexicon=lexicon,
            ranking=universe.ranking,
        )
        return ExperimentResult(
            config=config,
            dataset=dataset,
            server=server,
            universe=universe,
            registry=registry,
            collector=collector,
            network=network,
            pageview_count=pageview_count,
            conversions=conversions,
            stats={
                "pageviews": pageview_count,
                "delivered": len(server.impressions),
                "logged": len(store),
                "prefiltered": server.prefiltered_pageviews,
                "script_blocked_publisher": script.blocked_by_publisher,
                "script_blocked_browser": script.blocked_by_browser,
                "connect_failures": network.failed_connects,
                "clicks": conversion_sim.clicks_seen,
                "conversions": conversion_sim.conversions,
            },
        )


@functools.lru_cache(maxsize=4)
def run_paper_experiment(seed: int = 2016,
                         scale: float = 1.0) -> ExperimentResult:
    """Run (and memoise) the paper's 8-campaign experiment.

    All table/figure benchmarks at the same (seed, scale) share one run.
    """
    return ExperimentRunner(paper_experiment(seed=seed, scale=scale)).run()
