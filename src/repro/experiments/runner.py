"""End-to-end experiment execution.

Builds the world, runs every flight period through the full pipeline —
browsing → ad server → beacon script → WebSocket client → collector —
then applies the vendor's post-hoc fraud refunds, produces the vendor
reports, enriches + anonymises the collected dataset and assembles the
:class:`~repro.audit.dataset.AuditDataset` the audits consume.

Execution is structured as a *shard pipeline*: the experiment is split
into independent shards — one per (flight period, country, population
slice) — each simulated with its own scoped RNG streams, ad server and
collector, and the per-shard outputs are merged deterministically into
one :class:`ExperimentResult`.  The serial runner executes the shards
in-process, one after another; the parallel runner
(:mod:`repro.experiments.parallel`) farms the very same shards out to
worker processes.  Because both paths run identical shard code and merge
in identical canonical order, their outputs are byte-for-byte equal at
the same seed — the determinism contract the equivalence tests enforce.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field, replace

from repro.adnetwork.billing import CampaignBillingSummary
from repro.adnetwork.conversions import ConversionEvent, ConversionSimulator
from repro.adnetwork.inventory import ExternalDemand
from repro.adnetwork.matching import MatchEngine
from repro.adnetwork.reporting import (
    ReportAggregate,
    VendorReport,
    VendorReporter,
    merge_aggregates,
)
from repro.adnetwork.server import AdServer, NetworkPolicy
from repro.audit.coverage import CoverageCounts, ExperimentCoverage
from repro.audit.dataset import AuditDataset
from repro.beacon.client import BeaconClient
from repro.beacon.script import BeaconScript
from repro.collector.enrich import Enricher
from repro.collector.server import CollectorServer
from repro.collector.store import ImpressionStore
from repro.experiments.config import (
    ExperimentConfig,
    PeriodPlan,
    paper_experiment,
)
from repro.faults.inject import FaultInjector
from repro.faults.plan import ShardCrashError
from repro.faults.quarantine import QuarantineEntry
from repro.geo.denylist import DenyList
from repro.geo.ipdb import GeoIpDatabase
from repro.geo.providers import ProviderRegistry
from repro.geo.resolver import DataCenterResolver
from repro.net.transport import SimulatedNetwork
from repro.obs.events import (
    DEFAULT_SHARD_EVENT_CAPACITY,
    Event,
    EventLog,
)
from repro.obs.memwatch import MemoryWatch, current_rss_bytes
from repro.obs.metrics import (
    WALL,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.timing import wall_timer
from repro.obs.trace import FlightRecorder, TraceRecord, Tracer
from repro.taxonomy.lexicon import Lexicon, build_default_lexicon
from repro.util.rng import RngFactory
from repro.util.simclock import SimClock
from repro.web.bots import BotFleet
from repro.web.browsing import BrowsingSimulator
from repro.web.population import PublisherUniverse, UniverseConfig
from repro.web.users import PopulationConfig, UserPopulation

_SECONDS_PER_DAY = 86_400.0

#: Re-execution attempts granted to a crashing shard before the runner
#: degrades gracefully and marks it lost (serial and parallel alike).
DEFAULT_SHARD_RETRIES = 2


@dataclass
class ExperimentResult:
    """Everything a table/figure generator or test may want to inspect."""

    config: ExperimentConfig
    dataset: AuditDataset
    server: AdServer
    universe: PublisherUniverse
    registry: ProviderRegistry
    collector: CollectorServer
    network: SimulatedNetwork
    pageview_count: int = 0
    stats: dict[str, int] = field(default_factory=dict)
    #: First-party conversion log (the paper's future-work analysis),
    #: anonymised with the same salt as the impression dataset.
    conversions: list[ConversionEvent] = field(default_factory=list)
    #: Canonical merge of the per-shard metrics snapshots.  The sim-domain
    #: portion is a pure function of (config, seed) — identical between
    #: the serial and parallel runners; the wall-domain portion carries
    #: host timings and is excluded from the determinism contract.
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: Canonical merge of the per-shard flight recorders: one trace per
    #: retained impression, with impression/record ids rewritten to the
    #: merged numbering.  ``python -m repro explain`` and the
    #: ``--trace-json`` export read from here.
    recorder: FlightRecorder = field(default_factory=FlightRecorder)
    #: Measurement-loss ledger: every ground-truth delivery classified as
    #: observed / quarantined / lost, reconciling exactly (see
    #: :mod:`repro.audit.coverage`).  Tracked unconditionally; the
    #: quarantine forensics and lost-shard list are only populated under
    #: an active fault plan.
    coverage: ExperimentCoverage = field(default_factory=ExperimentCoverage)
    #: The run's structured event log (see :mod:`repro.obs.events`): the
    #: sim channel is merged in canonical plan order and byte-identical
    #: between serial and parallel runs; the wall channel carries the
    #: runner's heartbeats and is excluded from that contract.
    events: EventLog = field(default_factory=EventLog)

    def delivered(self, campaign_id: str) -> int:
        """Ground-truth impressions the network delivered for a campaign."""
        return len(self.server.impressions_for(campaign_id))

    def logged(self, campaign_id: str) -> int:
        """Impressions our methodology managed to log for a campaign."""
        return len(self.dataset.records(campaign_id))


# ---------------------------------------------------------------------- #
# the shared world
# ---------------------------------------------------------------------- #


@dataclass
class World:
    """The config-deterministic environment every shard simulates in.

    Publishers, providers, the human population and the IP intelligence
    stack are functions of (seed, scale, sizing knobs) alone, so one
    world instance is shared by every shard — in the parallel runner it
    is built once per worker process (and inherited copy-on-write on
    platforms that fork).
    """

    lexicon: Lexicon
    universe: PublisherUniverse
    registry: ProviderRegistry
    population: UserPopulation
    ipdb: GeoIpDatabase
    resolver: DataCenterResolver

    @property
    def tree(self):
        return self.lexicon.tree


def build_world(config: ExperimentConfig) -> World:
    """Build the shared world for *config* (deterministic in its seed)."""
    rngs = RngFactory(config.seed)
    lexicon = build_default_lexicon()
    universe = PublisherUniverse(
        rngs.stream("publishers"),
        UniverseConfig(
            publisher_count=config.scaled_publisher_count,
            script_blocking_fraction=config.script_blocking_fraction),
        lexicon=lexicon)
    registry = ProviderRegistry(rngs.stream("providers"))
    population = UserPopulation(
        rngs.stream("users"), registry, lexicon.tree,
        config=PopulationConfig(
            users_per_country=config.scaled_users_per_country))
    ipdb = GeoIpDatabase(registry)
    denylist = DenyList.from_registry(registry)
    resolver = DataCenterResolver(ipdb, denylist)
    return World(lexicon=lexicon, universe=universe, registry=registry,
                 population=population, ipdb=ipdb, resolver=resolver)


# ---------------------------------------------------------------------- #
# shard planning
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class ShardSpec:
    """One independent unit of simulation work.

    A shard covers one flight period, one country, and one of the
    config's ``shard_slices`` population slices (humans and bots are
    partitioned by their position in the deterministic population order,
    position ``i`` landing in slice ``i % slice_count``).  The shard plan
    is a pure function of the config — never of the worker count — so
    results cannot depend on how the shards are scheduled.
    """

    period_name: str
    country: str
    slice_index: int
    slice_count: int
    start_unix: float
    end_unix: float
    #: Rough simulated-pageview cost estimate; scheduling hint only.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0 <= self.slice_index < self.slice_count:
            raise ValueError("slice_index must be within [0, slice_count)")
        if self.end_unix <= self.start_unix:
            raise ValueError("shard window must have positive duration")

    @property
    def scope(self) -> str:
        """The RNG-stream scope suffix identifying this shard."""
        return f"{self.period_name}/{self.country}/{self.slice_index}"


def _period_countries(period: PeriodPlan) -> list[str]:
    """Active countries of a period, deduplicated in declaration order.

    Fleet-only countries (a bot operator active where no humans are
    declared) are appended so their traffic is never dropped.
    """
    countries = list(dict.fromkeys(period.countries))
    for country, _ in period.fleets:
        if country not in countries:
            countries.append(country)
    return countries


def _shard_weight(config: ExperimentConfig, period: PeriodPlan,
                  country: str) -> float:
    """Expected pageviews of one (period, country) before slicing."""
    days = (period.end_unix - period.start_unix) / _SECONDS_PER_DAY
    human_views = config.scaled_users_per_country * 18.0
    bot_views = 0.0
    for fleet_country, bot_config in period.fleets:
        if fleet_country != country:
            continue
        bots = bot_config.bots_per_fleet * bot_config.fleet_count
        bot_views += bots * (bot_config.daily_pageviews_min
                             + bot_config.daily_pageviews_max) / 2.0
    return days * (human_views + bot_views)


def plan_shards(config: ExperimentConfig) -> list[ShardSpec]:
    """The canonical shard plan: every merge consumes shards in this order."""
    shards: list[ShardSpec] = []
    for period in sorted(config.periods, key=lambda p: (p.start_unix, p.name)):
        for country in _period_countries(period):
            weight = _shard_weight(config, period, country)
            for slice_index in range(config.shard_slices):
                shards.append(ShardSpec(
                    period_name=period.name,
                    country=country,
                    slice_index=slice_index,
                    slice_count=config.shard_slices,
                    start_unix=period.start_unix,
                    end_unix=period.end_unix,
                    weight=weight / config.shard_slices,
                ))
    return shards


def _period_by_name(config: ExperimentConfig, name: str) -> PeriodPlan:
    for period in config.periods:
        if period.name == name:
            return period
    raise KeyError(f"unknown period: {name!r}")


def _budget_divisor(config: ExperimentConfig, spec) -> int:
    """How many shards a campaign's daily budget is split across.

    Pacing is budget-proportional, so giving each shard ``budget / N``
    preserves a campaign's total delivery when its traffic is spread over
    N concurrent shards: the slice count times the largest number of
    targeted countries simultaneously active in any overlapping period.
    """
    concurrent = 1
    for period in config.periods:
        if period.end_unix <= spec.start_unix \
                or period.start_unix >= spec.end_unix:
            continue
        targeted = sum(1 for country in _period_countries(period)
                       if spec.targets_country(country))
        concurrent = max(concurrent, targeted)
    return concurrent * config.shard_slices


# ---------------------------------------------------------------------- #
# shard execution
# ---------------------------------------------------------------------- #


@dataclass
class ShardOutput:
    """Everything a shard contributes to the merged experiment.

    Designed to cross a process boundary: the impression store travels
    as its raw-column payload (:meth:`ImpressionStore.export_columns` —
    lossless, and foldable into the merged store without re-parsing),
    billing and vendor-report state as per-campaign summaries, and
    everything else as picklable frozen dataclasses or plain counters.
    """

    shard: ShardSpec
    store_columns: tuple
    impressions: list
    conversions: list[ConversionEvent]
    billing: dict[str, CampaignBillingSummary]
    report_aggregates: dict[str, ReportAggregate]
    pageviews: int
    prefiltered: int
    script_blocked_publisher: int
    script_blocked_browser: int
    connect_failures: int
    clicks: int
    conversion_count: int
    handshake_failures: int
    malformed_messages: int
    connections_without_hello: int
    records_committed: int
    #: Immutable snapshot of the shard's private metrics registry; the
    #: merge absorbs these in canonical plan order, like the report
    #: aggregates, so serial and parallel runs agree field-for-field on
    #: every sim-domain metric.
    metrics: MetricsSnapshot = field(default_factory=MetricsSnapshot)
    #: The shard flight recorder's retained traces, in commit order, with
    #: shard-local impression/record ids (the merge rewrites both).
    traces: tuple[TraceRecord, ...] = ()
    #: Per-(publisher, campaign) delivery/loss accounting for this shard.
    coverage: CoverageCounts = field(default_factory=CoverageCounts)
    #: Quarantined-frame forensics from the shard collector (bounded).
    quarantine: tuple[QuarantineEntry, ...] = ()
    quarantine_dropped: int = 0
    #: The shard's sim-domain event journal (bounded per shard), in
    #: emission order with shard-local sequence numbers; the merge
    #: absorbs these in canonical plan order and renumbers.
    events: tuple[Event, ...] = ()
    events_dropped: int = 0


def run_shard(config: ExperimentConfig, shard: ShardSpec,
              world: World, attempt: int = 0) -> ShardOutput:
    """Simulate one shard end to end.

    Every stochastic component draws from streams scoped to the shard
    (``{kind}/{period}/{country}/{slice}``), so a shard's output depends
    only on (config, shard) — never on which other shards ran, in what
    order, or in which process.  The one deliberately *unscoped* stream
    is the bot-fleet builder: every slice of a (period, country) rebuilds
    the identical fleet roster from ``bots/{period}/{country}`` and then
    keeps only its own slice of the bots, mirroring how humans are
    partitioned out of the shared population.

    *attempt* is the crash-recovery re-execution counter.  It feeds only
    the fault plan's injected-crash decision — never any RNG stream — so
    a successful re-execution is byte-identical to a first-try success.
    """
    if config.faults.should_crash(shard.scope, attempt):
        raise ShardCrashError(
            f"injected crash in shard {shard.scope} (attempt {attempt})")
    rngs = RngFactory(config.seed)
    scope = shard.scope
    period = _period_by_name(config, shard.period_name)
    metrics = MetricsRegistry()
    shard_timer = wall_timer(metrics, "shard.wall_seconds",
                             help="host time simulating one shard")
    pageview_counter = metrics.counter(
        "shard.pageviews", help="pageviews simulated across all shards")

    recorder = FlightRecorder()
    tracer = Tracer(recorder, seed=config.seed, scope=scope)
    # The shard's sim-domain event journal.  Emission is unconditional —
    # it draws no RNG and touches no metric, so collecting it cannot
    # perturb any simulated byte; exports only happen on request.
    events = EventLog(scope=scope, capacity=DEFAULT_SHARD_EVENT_CAPACITY)
    memwatch = MemoryWatch(registry=metrics)
    events.emit("shard.started", at=shard.start_unix, attempt=attempt)
    if attempt > 0:
        # A successful re-execution after injected crashes: emitted here,
        # inside the attempt that succeeded, so the event stream is a
        # function of the fault plan alone — identical serial or pooled.
        events.emit("shard.recovered", at=shard.start_unix,
                    attempts_burned=attempt)

    campaigns = [replace(plan.spec,
                         daily_budget_eur=plan.spec.daily_budget_eur
                         / _budget_divisor(config, plan.spec))
                 for plan in config.campaigns]
    server = AdServer(campaigns, MatchEngine(world.lexicon),
                      ExternalDemand(), world.ipdb, policy=NetworkPolicy(),
                      metrics=metrics, tracer=tracer)

    # The injector (and its dedicated RNG stream) exists only under an
    # active plan: fault-free runs draw from exactly the historical
    # streams and register exactly the historical metrics.
    injector = None
    if config.faults.active:
        injector = FaultInjector(config.faults,
                                 rngs.stream(f"faults/{scope}"),
                                 metrics=metrics, tracer=tracer,
                                 events=events)

    clock = SimClock(shard.start_unix)
    network = SimulatedNetwork(clock, rngs.stream(f"network/{scope}"),
                               tracer=tracer, injector=injector)
    store = ImpressionStore(metrics=metrics, tracer=tracer)
    collector = CollectorServer(store, metrics=metrics, tracer=tracer,
                                injector=injector, events=events)
    collector.attach(network)
    beacon_client = BeaconClient(network, collector, clock,
                                 rngs.stream(f"beacon-net/{scope}"),
                                 tracer=tracer, injector=injector,
                                 events=events)
    script = BeaconScript()
    browsing = BrowsingSimulator(world.universe, world.tree)

    serve_rng = rngs.stream(f"serving/{scope}")
    script_rng = rngs.stream(f"script/{scope}")
    conversion_sim = ConversionSimulator()
    conversion_rng = rngs.stream(f"conversions/{scope}")

    fleet_bots = []
    for fleet_country, bot_config in period.fleets:
        if fleet_country != shard.country:
            continue
        fleet = BotFleet(rngs.stream(f"bots/{shard.period_name}/{shard.country}"),
                         world.registry, countries=(shard.country,),
                         config=bot_config)
        fleet_bots.extend(fleet.bots)
    bots = [bot for index, bot in enumerate(fleet_bots)
            if index % shard.slice_count == shard.slice_index]
    humans = [device for index, device
              in enumerate(world.population.in_country(shard.country))
              if index % shard.slice_count == shard.slice_index]

    conversions: list[ConversionEvent] = []
    coverage = CoverageCounts()
    pageview_count = 0
    stream = browsing.stream(humans, bots, shard.start_unix, shard.end_unix,
                             rngs.stream(f"browse/{scope}"))
    with shard_timer.measure(), memwatch.stage("simulate"):
        for pageview in stream:
            pageview_count += 1
            pageview_counter.inc()
            tracer.start("impression", at=pageview.timestamp,
                         publisher=pageview.publisher.domain,
                         country=pageview.country, bot=pageview.is_bot)
            impression = server.serve(pageview, serve_rng)
            if impression is None:
                tracer.abandon()
                continue
            domain = pageview.publisher.domain
            campaign_id = impression.campaign.campaign_id
            coverage.record_delivered(domain, campaign_id)
            observation = script.observe(impression, script_rng)
            if observation is None:
                # Delivered but never reported: the publisher or browser
                # blocked the beacon script.  The trace still commits —
                # these are exactly the impressions the audit dataset is
                # missing, so their provenance matters most.
                coverage.record_lost(domain, campaign_id, "script_blocked")
                tracer.event("beacon.blocked", at=pageview.timestamp)
                tracer.commit()
                continue
            delivery = beacon_client.deliver(impression, observation)
            coverage.record_delivery(domain, campaign_id, delivery)
            tracer.commit()
            conversion = conversion_sim.simulate(
                impression, observation.clicks, conversion_rng)
            if conversion is not None:
                conversions.append(conversion)

    # Post-flight: the vendor's silent fraud clawback on this shard's
    # deliveries, then the mergeable billing/report projections.
    metrics.counter(
        "trace.committed",
        help="impression traces committed to the flight recorder"
    ).inc(recorder.committed)
    metrics.counter(
        "trace.dropped",
        help="committed traces evicted by the head/tail retention bound"
    ).inc(recorder.dropped)

    server.billing.apply_fraud_refunds(server.impressions,
                                       rngs.stream(f"refunds/{scope}"))
    reporter = VendorReporter()
    aggregates = {
        plan.spec.campaign_id: reporter.aggregate(
            plan.spec.campaign_id,
            server.impressions_for(plan.spec.campaign_id))
        for plan in config.campaigns
    }
    return ShardOutput(
        shard=shard,
        store_columns=store.export_columns(),
        impressions=list(server.impressions),
        conversions=conversions,
        billing=server.billing.summaries(),
        report_aggregates=aggregates,
        pageviews=pageview_count,
        prefiltered=server.prefiltered_pageviews,
        script_blocked_publisher=script.blocked_by_publisher,
        script_blocked_browser=script.blocked_by_browser,
        connect_failures=network.failed_connects,
        clicks=conversion_sim.clicks_seen,
        conversion_count=conversion_sim.conversions,
        handshake_failures=collector.handshake_failures,
        malformed_messages=collector.malformed_messages,
        connections_without_hello=collector.connections_without_hello,
        records_committed=collector.records_committed,
        metrics=metrics.snapshot(),
        traces=recorder.traces(),
        coverage=coverage,
        quarantine=collector.quarantine.entries(),
        quarantine_dropped=collector.quarantine.dropped,
        events=events.events(),
        events_dropped=events.dropped,
    )


# ---------------------------------------------------------------------- #
# run telemetry
# ---------------------------------------------------------------------- #


def emit_plan_events(events: EventLog, shards: list[ShardSpec]) -> None:
    """Journal the canonical shard plan (one sim event per shard).

    Both runners call this before executing anything, so the sim channel
    opens with the full plan in canonical order — an auditor reading the
    NDJSON export sees what was *scheduled* before what *happened*.
    """
    for shard in shards:
        events.emit("shard.planned", at=shard.start_unix, scope=shard.scope,
                    period=shard.period_name, country=shard.country,
                    slice=shard.slice_index, weight=shard.weight)


class HeartbeatEmitter:
    """Emits wall-domain ``runner.heartbeat`` events on a min interval.

    Inert unless both an event log and an interval are configured, so the
    default runners pay nothing — no clock reads, no RSS sampling.  The
    ETA is weight-based: elapsed wall time scaled by the remaining
    fraction of the plan's total shard weight.
    """

    def __init__(self, events: EventLog | None, interval: float | None,
                 shards: list[ShardSpec], jobs: int = 1) -> None:
        self.events = events
        self.interval = interval
        self.jobs = max(1, jobs)
        self.total = len(shards)
        self.total_weight = sum(shard.weight for shard in shards)
        self._started = time.perf_counter()
        self._last = float("-inf")

    @property
    def enabled(self) -> bool:
        return self.events is not None and self.interval is not None

    def pulse(self, done: int, done_weight: float, running: int = 0,
              queued: int = 0, merge_buffer: int = 0,
              force: bool = False) -> None:
        if not self.enabled:
            return
        now = time.perf_counter()
        if not force and now - self._last < self.interval:
            return
        self._last = now
        elapsed = now - self._started
        attrs = {
            "shards_done": done,
            "shards_total": self.total,
            "running": running,
            "queued": queued,
            "merge_buffer": merge_buffer,
            "rss_bytes": current_rss_bytes(),
            "elapsed_seconds": elapsed,
            "utilization": running / self.jobs,
        }
        if done >= self.total:
            attrs["eta_seconds"] = 0.0
        elif done_weight > 0 and self.total_weight > done_weight:
            attrs["eta_seconds"] = (elapsed / done_weight
                                    * (self.total_weight - done_weight))
        self.events.emit("runner.heartbeat", at=elapsed, domain=WALL,
                         **attrs)


# ---------------------------------------------------------------------- #
# deterministic merge
# ---------------------------------------------------------------------- #


class ShardMerger:
    """Incremental canonical-order fold of shard outputs into one result.

    The batch merge used to hold every :class:`ShardOutput` alive until
    the last shard finished, then walk the full list several times — at
    millions of impressions that barrier is both the peak-memory and the
    tail-latency bottleneck of a parallel run.  This class is the same
    deterministic reduction restructured as a fold: :meth:`fold` absorbs
    one output (which can then be garbage-collected) and :meth:`result`
    finalises.  Every order-sensitive reduction — record
    re-identification, impression re-numbering, float sums of
    charges/refunds, conversion concatenation — happens inside
    :meth:`fold`, so outputs MUST be folded in the order
    :func:`plan_shards` produced; all reductions are associative, which
    makes the fold byte-identical to the batch merge.

    :meth:`fold_lost` records a shard that exhausted crash recovery at
    its canonical position; its contributions are simply absent and the
    scope is surfaced in the coverage report so the degradation is
    visible, never silent.
    """

    def __init__(self, config: ExperimentConfig, world: World,
                 events: EventLog | None = None,
                 memwatch: MemoryWatch | None = None) -> None:
        self.config = config
        self.world = world
        # The merge-side event log absorbs each shard's journal in fold
        # order (renumbering seq), then appends the merge's own events —
        # same canonical-order contract as metrics and traces.
        self._events = events if events is not None else EventLog()
        self._memwatch = memwatch if memwatch is not None else MemoryWatch()
        self._campaigns = [plan.spec for plan in config.campaigns]
        self._by_id = {spec.campaign_id: spec for spec in self._campaigns}
        self._server = AdServer(self._campaigns, MatchEngine(world.lexicon),
                                ExternalDemand(), world.ipdb,
                                policy=NetworkPolicy())
        self._next_impression_id = 1
        self._store = ImpressionStore()
        self._recorder = FlightRecorder(head=None, tail=0)
        self._impression_offset = 0
        self._record_offset = 0
        # One registry absorbing every snapshot in fold order reproduces
        # merge_snapshots() field for field.
        self._metrics = MetricsRegistry()
        self._aggregates: dict[str, ReportAggregate] = {}
        self._raw_conversions: list[ConversionEvent] = []
        self._coverage_counts = CoverageCounts()
        self._quarantine: list[QuarantineEntry] = []
        self._quarantine_dropped = 0
        self._lost: list[str] = []
        self._sums = {
            "pageviews": 0, "prefiltered": 0, "script_blocked_publisher": 0,
            "script_blocked_browser": 0, "connect_failures": 0, "clicks": 0,
            "conversion_count": 0, "handshake_failures": 0,
            "malformed_messages": 0, "connections_without_hello": 0,
            "records_committed": 0,
        }
        self._finalized = False

    def fold(self, output: ShardOutput) -> None:
        """Absorb one shard output (must arrive in canonical plan order)."""
        if self._finalized:
            raise RuntimeError("cannot fold into a finalized merge")
        with self._memwatch.stage("merge"):
            self._fold(output)
        self._events.absorb(output.events, dropped=output.events_dropped)
        self._events.emit("shard.merged", at=output.shard.end_unix,
                          scope=output.shard.scope,
                          pageviews=output.pageviews,
                          delivered=len(output.impressions),
                          records=output.records_committed)

    def _fold(self, output: ShardOutput) -> None:
        for impression in output.impressions:
            # Re-id globally and point back at the advertiser's original
            # spec (shards ran against budget-scaled copies).
            self._server.impressions.append(replace(
                impression,
                impression_id=self._next_impression_id,
                campaign=self._by_id[impression.campaign.campaign_id]))
            self._next_impression_id += 1
        for summary in output.billing.values():
            self._server.billing.absorb_summary(summary)
        for campaign_id, aggregate in output.report_aggregates.items():
            seen = self._aggregates.get(campaign_id)
            self._aggregates[campaign_id] = aggregate if seen is None \
                else merge_aggregates([seen, aggregate], campaign_id)
        self._store.absorb_columns(output.store_columns)
        # Fold the shard flight recorder in the same canonical order the
        # impression list and the store were merged in, rewriting each
        # trace's shard-local ids with the same cumulative offsets that
        # renumbering produced — a merged trace is addressable by the ids
        # the auditor actually sees.  Per-shard retention already bounded
        # the sets, so the merged recorder holds everything shards kept.
        for trace in output.traces:
            self._recorder.record(replace(
                trace,
                impression_id=trace.impression_id + self._impression_offset,
                record_id=None if trace.record_id is None
                else trace.record_id + self._record_offset))
        self._impression_offset += len(output.impressions)
        self._record_offset += output.records_committed
        self._metrics.absorb(output.metrics)
        self._raw_conversions.extend(output.conversions)
        # Coverage folds in canonical order too; quarantine entries get
        # their shard scope stamped in so forensics survive the merge.
        self._coverage_counts.absorb(output.coverage)
        self._quarantine.extend(replace(entry, shard=output.shard.scope)
                                for entry in output.quarantine)
        self._quarantine_dropped += output.quarantine_dropped
        sums = self._sums
        sums["pageviews"] += output.pageviews
        sums["prefiltered"] += output.prefiltered
        sums["script_blocked_publisher"] += output.script_blocked_publisher
        sums["script_blocked_browser"] += output.script_blocked_browser
        sums["connect_failures"] += output.connect_failures
        sums["clicks"] += output.clicks
        sums["conversion_count"] += output.conversion_count
        sums["handshake_failures"] += output.handshake_failures
        sums["malformed_messages"] += output.malformed_messages
        sums["connections_without_hello"] += output.connections_without_hello
        sums["records_committed"] += output.records_committed

    def fold_lost(self, scope: str, at: float = 0.0) -> None:
        """Record a shard lost to crash recovery, at its canonical slot."""
        if self._finalized:
            raise RuntimeError("cannot fold into a finalized merge")
        self._lost.append(scope)
        self._events.emit("shard.lost", at=at, scope=scope)

    def result(self) -> ExperimentResult:
        """Finalise: enrich, seal, and assemble the experiment result."""
        self._finalized = True
        config, world = self.config, self.world
        server, store = self._server, self._store
        sums = self._sums
        server._next_impression_id = self._next_impression_id
        server.prefiltered_pageviews = sums["prefiltered"]

        reporter = VendorReporter()
        vendor_reports: dict[str, VendorReport] = {}
        for spec in self._campaigns:
            campaign_id = spec.campaign_id
            vendor_reports[campaign_id] = reporter.build(
                self._aggregates[campaign_id],
                charged_eur=server.billing.charged_total(campaign_id),
                refunded_eur=server.billing.refunded_total(campaign_id))

        enricher = Enricher(world.ipdb, world.resolver,
                            world.universe.ranking, recorder=self._recorder)
        with self._memwatch.stage("enrich"):
            enricher.enrich_store(store)
        conversions = [event.anonymized(enricher.salt)
                       for event in self._raw_conversions]
        # The dataset is shared by every memoised consumer from here on.
        store.seal()

        first_start = min(period.start_unix for period in config.periods) \
            if config.periods else 0.0
        rngs = RngFactory(config.seed)
        network = SimulatedNetwork(SimClock(first_start),
                                   rngs.stream("network"))
        network.failed_connects = sums["connect_failures"]
        collector = CollectorServer(store)
        collector.attach(network)
        collector.handshake_failures = sums["handshake_failures"]
        collector.malformed_messages = sums["malformed_messages"]
        collector.connections_without_hello = \
            sums["connections_without_hello"]
        collector.records_committed = sums["records_committed"]

        lost = tuple(self._lost)
        coverage = ExperimentCoverage(counts=self._coverage_counts,
                                      quarantine=tuple(self._quarantine),
                                      quarantine_dropped=self._quarantine_dropped,
                                      lost_shards=lost)
        totals = self._coverage_counts.totals()
        reconciled_at = max((period.end_unix for period in config.periods),
                            default=0.0)
        self._events.emit("coverage.reconciled", at=reconciled_at,
                          delivered=totals.delivered,
                          observed=totals.observed,
                          unique=totals.unique,
                          duplicates=totals.duplicates,
                          quarantined=totals.quarantined,
                          lost=totals.lost,
                          reconciles=totals.reconciles,
                          lost_shards=len(lost))
        # Watermarks ride wall-domain gauges so the metrics absorb/merge
        # machinery (gauges max-merge) gives watermark semantics for free.
        self._memwatch.record_to(self._metrics)
        dataset = AuditDataset(
            store=store,
            campaigns=dict(self._by_id),
            vendor_reports=vendor_reports,
            directory={publisher.domain: publisher
                       for publisher in world.universe.publishers},
            lexicon=world.lexicon,
            ranking=world.universe.ranking,
        )
        return ExperimentResult(
            config=config,
            dataset=dataset,
            server=server,
            universe=world.universe,
            registry=world.registry,
            collector=collector,
            network=network,
            pageview_count=sums["pageviews"],
            conversions=conversions,
            # The merge-phase server/collector/store above run on
            # *private* registries whose bookkeeping (lump-sum billing
            # absorption, counter re-assignment) is an artefact of
            # merging, not of simulation — only the shard snapshots,
            # folded in canonical plan order, make up these metrics.
            metrics=self._metrics.snapshot(),
            recorder=self._recorder,
            coverage=coverage,
            events=self._events,
            stats={
                "pageviews": sums["pageviews"],
                "delivered": len(server.impressions),
                "logged": len(store),
                "prefiltered": server.prefiltered_pageviews,
                "script_blocked_publisher": sums["script_blocked_publisher"],
                "script_blocked_browser": sums["script_blocked_browser"],
                "connect_failures": network.failed_connects,
                "clicks": sums["clicks"],
                "conversions": sums["conversion_count"],
                # Present only when fault handling is in play so
                # fault-free stats stay byte-identical to the historical
                # output.
                **({"lost_shards": len(lost)}
                   if (config.faults.active or lost) else {}),
            },
        )


def merge_shard_outputs(config: ExperimentConfig, world: World,
                        outputs: list[ShardOutput],
                        lost: tuple[str, ...] = ()) -> ExperimentResult:
    """Fold per-shard outputs (in canonical plan order) into one result.

    Batch convenience over :class:`ShardMerger` — the runners themselves
    fold outputs one at a time as shards complete, which keeps at most
    one un-absorbed output alive instead of all of them.
    """
    merger = ShardMerger(config, world)
    for output in outputs:
        merger.fold(output)
    for scope in lost:
        merger.fold_lost(scope)
    return merger.result()


class ExperimentRunner:
    """Executes one :class:`ExperimentConfig` in-process.

    ``events`` (optional) collects the run's telemetry journal; when
    ``heartbeat_interval`` is also set (seconds), wall-domain
    ``runner.heartbeat`` events are emitted as shards complete — both
    default off, so plain runs pay nothing.
    """

    def __init__(self, config: ExperimentConfig,
                 events: EventLog | None = None,
                 heartbeat_interval: float | None = None) -> None:
        self.config = config
        self.events = events
        self.heartbeat_interval = heartbeat_interval

    def run(self) -> ExperimentResult:
        """Run the whole experiment; deterministic in the config's seed.

        Crashing shards (only an active fault plan can make one crash)
        are retried up to :data:`DEFAULT_SHARD_RETRIES` extra times, then
        marked lost — the same graceful degradation the parallel runner
        applies, so serial and parallel agree even on lost shards.
        """
        config = self.config
        events = self.events if self.events is not None else EventLog()
        memwatch = MemoryWatch()
        shards = plan_shards(config)
        emit_plan_events(events, shards)
        heartbeat = HeartbeatEmitter(self.events, self.heartbeat_interval,
                                     shards)
        with memwatch.stage("world_build"):
            world = build_world(config)
        merger = ShardMerger(config, world, events=events, memwatch=memwatch)
        done_weight = 0.0
        for done, shard in enumerate(shards):
            heartbeat.pulse(done, done_weight, running=1,
                            queued=len(shards) - done - 1)
            for attempt in range(DEFAULT_SHARD_RETRIES + 1):
                try:
                    merger.fold(run_shard(config, shard, world,
                                          attempt=attempt))
                    break
                except ShardCrashError:
                    continue
            else:
                merger.fold_lost(shard.scope, at=shard.end_unix)
            done_weight += shard.weight
        heartbeat.pulse(len(shards), done_weight, force=True)
        return merger.result()


@functools.lru_cache(maxsize=4)
def run_paper_experiment(seed: int = 2016,
                         scale: float = 1.0) -> ExperimentResult:
    """Run (and memoise) the paper's 8-campaign experiment.

    All table/figure benchmarks at the same (seed, scale) share one run;
    the result's store is sealed, so no caller can contaminate another.
    """
    return ExperimentRunner(paper_experiment(seed=seed, scale=scale)).run()
