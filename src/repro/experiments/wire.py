"""Compact wire format for :class:`ShardOutput` crossing process boundaries.

A naively pickled ``ShardOutput`` is dominated by per-object overhead and
repeated strings: every span repeats its name and attribute keys, every
store record repeats its JSON field names, every impression drags a full
``Publisher`` and budget-scaled ``CampaignSpec`` along — none of which
the parent process needs verbatim, because all of it is either drawn
from a small vocabulary or reconstructible from the (config, world) the
parent already holds.

This module packs the output column-wise instead:

* one shard-wide **string table** interns every repeated string (span
  names, attribute keys/values, campaign ids, domains, URLs, IPs, UAs)
  so each appears once, with ``array``-typed index columns pointing in;
* **traces** become flat parallel arrays over spans (parent/name/start/
  end/attr-count) plus an instant table deduplicating timestamps; trace
  ids are *not* transmitted at all — they are a pure function of (seed,
  scope, impression id) and are recomputed on unpack;
* **impressions** shed their nested ``CampaignSpec`` and ``Publisher``:
  only the campaign id and publisher domain cross the wire, and
  :func:`unpack_shard_output` re-attaches the parent world's own objects
  (value-identical, and shared instead of per-shard copies);
* the **store** crosses as its raw column payload
  (:meth:`ImpressionStore.export_columns`) — already ``array``-typed on
  both sides, so the only translation is folding the store's private
  string table into the shard-wide one (and back);
* the packed structure is pickled once and zlib-compressed.

The result is an order of magnitude smaller than ``pickle.dumps`` of the
same output (pinned by a size-budget test), which turns the parallel
runner's result shipping from a per-shard megabyte stream into tens of
kilobytes.  ``unpack_shard_output(pack_shard_output(out), config, world)``
is value-equal to ``out`` field for field — the serial-vs-parallel
byte-identical equivalence tests pin that end to end.
"""

from __future__ import annotations

import pickle
import zlib
from array import array
from dataclasses import replace

from repro.adnetwork.matching import MatchDecision, MatchReason
from repro.adnetwork.server import DeliveredImpression
from repro.adnetwork.viewability import Exposure
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import (
    ShardOutput,
    World,
    _budget_divisor,
)
from repro.obs.trace import SpanRecord, TraceRecord, trace_id_for
from repro.web.browsing import Pageview

#: Wire format version; unpack refuses anything it does not know.
#: v2 appended the shard's telemetry journal (events, events_dropped)
#: to the tail tuple.  v3 replaced the parsed-JSONL store section with
#: the store's raw column payload (strings routed through the frame's
#: interner), so the merge folds columns directly instead of re-parsing
#: JSONL per shard.
WIRE_VERSION = 3

_COMPRESS_LEVEL = 6


class WireFormatError(ValueError):
    """A packed shard frame failed structural validation."""


class _Interner:
    """Appends-only string table; returns a stable index per string."""

    __slots__ = ("_index",)

    def __init__(self) -> None:
        self._index: dict[str, int] = {}

    def __call__(self, text: str) -> int:
        index = self._index.get(text)
        if index is None:
            index = len(self._index)
            self._index[text] = index
        return index

    def table(self) -> tuple[str, ...]:
        return tuple(self._index)


def _pack_traces(traces, intern):
    """Column-pack a shard's trace set (ids recomputed on unpack)."""
    instants: dict[float, int] = {}

    def instant(value: float) -> int:
        index = instants.get(value)
        if index is None:
            index = len(instants)
            instants[value] = index
        return index

    tr_impression = array("q")
    tr_record = array("q")          # -1 encodes None
    tr_campaign = array("I")
    tr_span_count = array("I")
    sp_parent = array("i")          # -1 encodes None
    sp_name = array("I")
    sp_start = array("I")
    sp_end = array("I")
    sp_attr_count = array("I")
    attr_key = array("I")
    attr_value = array("I")
    for trace in traces:
        tr_impression.append(trace.impression_id)
        tr_record.append(-1 if trace.record_id is None else trace.record_id)
        tr_campaign.append(intern(trace.campaign_id))
        tr_span_count.append(len(trace.spans))
        for span in trace.spans:
            sp_parent.append(-1 if span.parent_id is None else span.parent_id)
            sp_name.append(intern(span.name))
            sp_start.append(instant(span.start))
            sp_end.append(instant(span.end))
            sp_attr_count.append(len(span.attrs))
            for key, value in span.attrs:
                attr_key.append(intern(key))
                attr_value.append(intern(value))
    return (array("d", instants), tr_impression, tr_record, tr_campaign,
            tr_span_count, sp_parent, sp_name, sp_start, sp_end,
            sp_attr_count, attr_key, attr_value)


def _unpack_traces(packed, table, seed: int,
                   scope: str) -> tuple[TraceRecord, ...]:
    (instants, tr_impression, tr_record, tr_campaign, tr_span_count,
     sp_parent, sp_name, sp_start, sp_end, sp_attr_count,
     attr_key, attr_value) = packed
    traces = []
    span_cursor = 0
    attr_cursor = 0
    for position in range(len(tr_impression)):
        spans = []
        for span_id in range(tr_span_count[position]):
            offset = span_cursor + span_id
            count = sp_attr_count[offset]
            attrs = tuple(
                (table[attr_key[attr_cursor + pair]],
                 table[attr_value[attr_cursor + pair]])
                for pair in range(count))
            attr_cursor += count
            parent = sp_parent[offset]
            spans.append(SpanRecord(
                span_id=span_id,
                parent_id=None if parent < 0 else parent,
                name=table[sp_name[offset]],
                start=instants[sp_start[offset]],
                end=instants[sp_end[offset]],
                attrs=attrs))
        span_cursor += tr_span_count[position]
        impression_id = tr_impression[position]
        record = tr_record[position]
        traces.append(TraceRecord(
            trace_id=trace_id_for(seed, scope, impression_id),
            shard_scope=scope,
            impression_id=impression_id,
            campaign_id=table[tr_campaign[position]],
            record_id=None if record < 0 else record,
            spans=tuple(spans)))
    return tuple(traces)


def _pack_impressions(impressions, intern):
    """Column-pack delivered impressions, shedding nested world objects."""
    imp_id = array("q")
    campaign = array("I")
    pv_timestamp = array("d")
    pv_publisher = array("I")
    pv_url = array("I")
    pv_ip = array("I")
    pv_ua = array("I")
    pv_country = array("I")
    pv_interest_count = array("I")
    pv_interest = array("I")
    pv_dwell = array("d")
    pv_is_bot = bytearray()
    pv_visitor = array("q")
    ex_render_delay = array("d")
    ex_seconds = array("d")
    ex_pixels = bytearray()
    match_eligible = bytearray()
    match_reason = array("I")
    clearing = array("d")
    for impression in impressions:
        pageview = impression.pageview
        imp_id.append(impression.impression_id)
        campaign.append(intern(impression.campaign.campaign_id))
        pv_timestamp.append(pageview.timestamp)
        pv_publisher.append(intern(pageview.publisher.domain))
        pv_url.append(intern(pageview.url))
        pv_ip.append(intern(pageview.ip))
        pv_ua.append(intern(pageview.user_agent))
        pv_country.append(intern(pageview.country))
        pv_interest_count.append(len(pageview.interests))
        pv_interest.extend(intern(topic) for topic in pageview.interests)
        pv_dwell.append(pageview.dwell_seconds)
        pv_is_bot.append(1 if pageview.is_bot else 0)
        pv_visitor.append(pageview.visitor_id)
        ex_render_delay.append(impression.exposure.render_delay)
        ex_seconds.append(impression.exposure.exposure_seconds)
        ex_pixels.append(1 if impression.exposure.pixels_in_view else 0)
        match_eligible.append(1 if impression.match.eligible else 0)
        match_reason.append(intern(impression.match.reason.value))
        clearing.append(impression.clearing_cpm)
    return (imp_id, campaign, pv_timestamp, pv_publisher, pv_url, pv_ip,
            pv_ua, pv_country, pv_interest_count, pv_interest, pv_dwell,
            bytes(pv_is_bot), pv_visitor, ex_render_delay, ex_seconds,
            bytes(ex_pixels), bytes(match_eligible), match_reason, clearing)


def _unpack_impressions(packed, table, specs_by_id, publishers_by_domain):
    (imp_id, campaign, pv_timestamp, pv_publisher, pv_url, pv_ip, pv_ua,
     pv_country, pv_interest_count, pv_interest, pv_dwell, pv_is_bot,
     pv_visitor, ex_render_delay, ex_seconds, ex_pixels, match_eligible,
     match_reason, clearing) = packed
    impressions = []
    interest_cursor = 0
    for position in range(len(imp_id)):
        count = pv_interest_count[position]
        interests = tuple(table[pv_interest[interest_cursor + offset]]
                          for offset in range(count))
        interest_cursor += count
        pageview = Pageview(
            timestamp=pv_timestamp[position],
            publisher=publishers_by_domain[table[pv_publisher[position]]],
            url=table[pv_url[position]],
            ip=table[pv_ip[position]],
            user_agent=table[pv_ua[position]],
            country=table[pv_country[position]],
            interests=interests,
            dwell_seconds=pv_dwell[position],
            is_bot=bool(pv_is_bot[position]),
            visitor_id=pv_visitor[position])
        impressions.append(DeliveredImpression(
            impression_id=imp_id[position],
            campaign=specs_by_id[table[campaign[position]]],
            pageview=pageview,
            exposure=Exposure(
                render_delay=ex_render_delay[position],
                exposure_seconds=ex_seconds[position],
                pixels_in_view=bool(ex_pixels[position])),
            match=MatchDecision(
                eligible=bool(match_eligible[position]),
                reason=MatchReason(table[match_reason[position]])),
            clearing_cpm=clearing[position]))
    return impressions


def _pack_store(payload: tuple, intern: _Interner):
    """Store column payload → wire section, strings routed via *intern*.

    The payload arrives already ``array``-typed from
    :meth:`ImpressionStore.export_columns`; the store's private string
    table is folded into the shard-wide one so campaign ids, domains,
    UAs etc. shared with traces and impressions cross the wire once.
    """
    if not isinstance(payload, tuple) or len(payload) != 23:
        raise WireFormatError("malformed store column payload")
    strings = payload[2]
    refs = array("I", (intern(text) for text in strings))
    return (payload[0], payload[1], refs) + payload[3:]


def _unpack_store(packed, table) -> tuple:
    if not isinstance(packed, tuple) or len(packed) != 23:
        raise WireFormatError("malformed store column section")
    refs = packed[2]
    strings = tuple(table[index] for index in refs)
    return (packed[0], packed[1], strings) + packed[3:]


def scaled_campaign_specs(config: ExperimentConfig, shard) -> dict:
    """The budget-scaled campaign specs a shard ran against, by id.

    Reproduces exactly what :func:`repro.experiments.runner.run_shard`
    builds, so unpacked impressions carry value-identical specs without
    those specs ever crossing the process boundary.
    """
    specs = {}
    for plan in config.campaigns:
        spec = plan.spec
        scaled = spec.daily_budget_eur / _budget_divisor(config, spec)
        specs[spec.campaign_id] = replace(spec, daily_budget_eur=scaled)
    return specs


def pack_shard_output(output: ShardOutput) -> bytes:
    """Serialise one shard output into the compact wire frame."""
    intern = _Interner()
    traces = _pack_traces(output.traces, intern)
    impressions = _pack_impressions(output.impressions, intern)
    store = _pack_store(output.store_columns, intern)
    frame = (
        WIRE_VERSION,
        output.shard,
        intern.table(),
        traces,
        impressions,
        store,
        (output.pageviews, output.prefiltered,
         output.script_blocked_publisher, output.script_blocked_browser,
         output.connect_failures, output.clicks, output.conversion_count,
         output.handshake_failures, output.malformed_messages,
         output.connections_without_hello, output.records_committed),
        # Small and already compact: ship these as-is.
        (output.conversions, output.billing, output.report_aggregates,
         output.metrics, output.coverage, output.quarantine,
         output.quarantine_dropped, output.events, output.events_dropped),
    )
    return zlib.compress(
        pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL),
        _COMPRESS_LEVEL)


def unpack_shard_output(blob: bytes, config: ExperimentConfig,
                        world: World) -> ShardOutput:
    """Rebuild a value-identical :class:`ShardOutput` from a wire frame.

    *config* supplies the seed (trace ids) and the campaign plans (the
    budget-scaled specs); *world* supplies the publisher objects — so the
    rebuilt impressions share the parent's world objects instead of
    duplicating them per shard.
    """
    try:
        frame = pickle.loads(zlib.decompress(blob))
    except (zlib.error, pickle.UnpicklingError, EOFError) as exc:
        raise WireFormatError(f"undecodable shard frame: {exc}") from exc
    if not isinstance(frame, tuple) or len(frame) != 8:
        raise WireFormatError("malformed shard frame")
    (version, shard, table, traces, impressions, store, counters,
     rest) = frame
    if version != WIRE_VERSION:
        raise WireFormatError(f"unsupported wire version {version!r} "
                              f"(expected {WIRE_VERSION})")
    specs_by_id = scaled_campaign_specs(config, shard)
    publishers_by_domain = {publisher.domain: publisher
                            for publisher in world.universe.publishers}
    (pageviews, prefiltered, script_blocked_publisher,
     script_blocked_browser, connect_failures, clicks, conversion_count,
     handshake_failures, malformed_messages, connections_without_hello,
     records_committed) = counters
    (conversions, billing, report_aggregates, metrics, coverage,
     quarantine, quarantine_dropped, events, events_dropped) = rest
    return ShardOutput(
        shard=shard,
        store_columns=_unpack_store(store, table),
        impressions=_unpack_impressions(impressions, table, specs_by_id,
                                        publishers_by_domain),
        conversions=conversions,
        billing=billing,
        report_aggregates=report_aggregates,
        pageviews=pageviews,
        prefiltered=prefiltered,
        script_blocked_publisher=script_blocked_publisher,
        script_blocked_browser=script_blocked_browser,
        connect_failures=connect_failures,
        clicks=clicks,
        conversion_count=conversion_count,
        handshake_failures=handshake_failures,
        malformed_messages=malformed_messages,
        connections_without_hello=connections_without_hello,
        records_committed=records_committed,
        metrics=metrics,
        traces=_unpack_traces(traces, table, config.seed, shard.scope),
        coverage=coverage,
        quarantine=quarantine,
        quarantine_dropped=quarantine_dropped,
        events=events,
        events_dropped=events_dropped,
    )
