"""Seeded fault injection: the imperative half of the fault subsystem.

A :class:`FaultInjector` carries one shard's fault RNG stream
(``faults/{period}/{country}/{slice}``) and draws the dice a
:class:`~repro.faults.plan.FaultPlan` declares.  Pipeline components do
not hold the injector directly — they are handed per-stage
:class:`FaultPoint` hooks, so the transport only ever asks about
``connect``/``stream``/``collector`` faults and a connection's frame
path only about ``frame`` faults.

Determinism rules, in order of importance:

* Under the ``none`` plan the injector **never draws** from any RNG and
  never touches the metrics registry — runs without faults stay
  byte-identical to a build without the subsystem.
* A (stage, kind) with zero configured probability never draws either:
  enabling fault A cannot perturb the dice of fault B.
* Fault counters (``fault.{stage}.{kind}``) are created lazily on first
  fire, so a plan that never fires adds nothing to the metrics export.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.faults.plan import FaultPlan
from repro.obs.events import NULL_EVENTS, EventLog
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer


class FaultInjector:
    """Draws (and accounts for) the faults one shard's plan schedules."""

    def __init__(self, plan: FaultPlan, rng: Optional[random.Random] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Tracer | None = None,
                 events: EventLog | None = None) -> None:
        if plan.injects and rng is None:
            raise ValueError("an injecting fault plan needs an rng stream")
        self.plan = plan
        self.rng = rng
        self.metrics = metrics
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.events = events if events is not None else NULL_EVENTS
        self._probability = {(spec.stage, spec.kind): spec.probability
                             for spec in plan.specs}
        self._param = {(spec.stage, spec.kind): spec.param
                       for spec in plan.specs}

    @property
    def active(self) -> bool:
        return self.plan.active

    # -- dice ----------------------------------------------------------- #

    def fires(self, stage: str, kind: str) -> bool:
        """Roll for one fault; counts and traces a hit.

        Never draws when the (stage, kind) probability is zero — absent
        faults cost no randomness, so adding one fault to a plan cannot
        reshuffle another's schedule.
        """
        probability = self._probability.get((stage, kind), 0.0)
        if probability <= 0.0:
            return False
        if self.rng.random() >= probability:
            return False
        self.count(f"fault.{stage}.{kind}")
        self.tracer.event("fault.injected", at=self.tracer.now,
                          stage=stage, kind=kind)
        self.events.emit("fault.injected", at=self.tracer.now,
                         stage=stage, kind=kind)
        return True

    def param(self, stage: str, kind: str, default: float = 0.0) -> float:
        return self._param.get((stage, kind), default)

    def jitter(self, amount: float) -> float:
        """A deterministic jitter draw in ``[0, amount)`` (0 when inactive)."""
        if amount <= 0.0 or self.rng is None:
            return 0.0
        return amount * self.rng.random()

    # -- accounting ----------------------------------------------------- #

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a lazily-created fault counter (no-op without a registry)."""
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # -- stage hooks ---------------------------------------------------- #

    def point(self, stage: str) -> "FaultPoint":
        return FaultPoint(self, stage)

    def mangle(self, data: bytes) -> tuple[bytes, str]:
        """Apply frame-stage corruption to outbound wire bytes.

        Returns ``(possibly mutated bytes, fault kind or "")``.  Both
        rolls happen on every call (in spec order) so the draw sequence
        is a function of the plan alone, not of earlier outcomes.
        """
        truncate = self.fires("frame", "truncate")
        bit_flip = self.fires("frame", "bit_flip")
        if truncate and len(data) > 1:
            keep = self.rng.randrange(1, len(data))
            self.count("fault.frame.truncated_bytes", len(data) - keep)
            return data[:keep], "truncate"
        if bit_flip and data:
            index = self.rng.randrange(len(data))
            bit = 1 << self.rng.randrange(8)
            mutated = bytearray(data)
            mutated[index] ^= bit
            return bytes(mutated), "bit_flip"
        return data, ""


class FaultPoint:
    """One stage's narrow view of the shard injector."""

    __slots__ = ("_injector", "stage")

    def __init__(self, injector: FaultInjector, stage: str) -> None:
        self._injector = injector
        self.stage = stage

    def fires(self, kind: str) -> bool:
        return self._injector.fires(self.stage, kind)

    def param(self, kind: str, default: float = 0.0) -> float:
        return self._injector.param(self.stage, kind, default)

    def mangle(self, data: bytes) -> tuple[bytes, str]:
        return self._injector.mangle(data)


#: The shared inactive injector: plan ``none``, no RNG, no registry.
#: Every hook on it is a guaranteed no-op, so components default to it.
NULL_INJECTOR = FaultInjector(FaultPlan())
