"""Deterministic fault injection and the machinery that survives it.

``plan``        — frozen :class:`FaultPlan` (what can fail, how often,
                  retry policy, presets ``none``/``flaky``/``hostile``)
``inject``      — :class:`FaultInjector` / per-stage :class:`FaultPoint`
                  hooks drawing from a shard-scoped RNG stream
``quarantine``  — bounded :class:`QuarantineLog` for malformed frames

The invariant the whole package is built around: under the ``none``
plan nothing here draws randomness, registers metrics, or changes a
byte on the wire — fault-free runs are byte-identical to a build
without the package.
"""

from repro.faults.inject import NULL_INJECTOR, FaultInjector, FaultPoint
from repro.faults.plan import (
    FAULT_KINDS,
    PRESET_NAMES,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    ShardCrashError,
)
from repro.faults.quarantine import QuarantineEntry, QuarantineLog

__all__ = [
    "FAULT_KINDS",
    "PRESET_NAMES",
    "NULL_INJECTOR",
    "FaultInjector",
    "FaultPlan",
    "FaultPoint",
    "FaultSpec",
    "QuarantineEntry",
    "QuarantineLog",
    "RetryPolicy",
    "ShardCrashError",
]
