"""Deterministic fault plans.

A :class:`FaultPlan` is the *declarative* half of the fault-injection
subsystem: a frozen, hashable description of which faults can fire at
which pipeline stage, with what probability, plus the beacon's retry
policy and the (test-only) shard-crash schedule.  Because the plan is
part of :class:`~repro.experiments.config.ExperimentConfig`, it is part
of the experiment's *identity*: results are a pure function of
(seed, scale, shard_slices, faults), and the same plan reproduces the
exact same fault sequence serial or parallel.

The *imperative* half — drawing the dice and mutating bytes — lives in
:mod:`repro.faults.inject`.

Stage/kind vocabulary (see :data:`FAULT_KINDS`)::

    connect/refused        SYN answered with RST; the attempt fails now
    connect/timeout        SYN never answered; fails after ``param`` s
    stream/disconnect      established connection dies mid-stream
    frame/truncate         a client frame loses its tail bytes in flight
    frame/bit_flip         one bit of a client frame flips in flight
    delivery/duplicate     the client re-sends a delivered report in full
    collector/backpressure accept is delayed by ``param`` seconds

Plans come from three places, all through :meth:`FaultPlan.resolve`:
the built-in presets (``none``/``flaky``/``hostile``), an inline JSON
object, or a JSON file path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

#: The closed vocabulary of injectable faults: (stage, kind) -> meaning
#: of ``param`` (empty string when the fault takes no parameter).
FAULT_KINDS: dict[tuple[str, str], str] = {
    ("connect", "refused"): "",
    ("connect", "timeout"): "seconds charged before the attempt fails",
    ("stream", "disconnect"): "",
    ("frame", "truncate"): "",
    ("frame", "bit_flip"): "",
    ("delivery", "duplicate"): "",
    ("collector", "backpressure"): "seconds the accept is delayed by",
}

PRESET_NAMES = ("none", "flaky", "hostile")


class ShardCrashError(RuntimeError):
    """Injected whole-shard failure (``crash_shards`` in a fault plan).

    The parallel runner's recovery path is exercised with this: a shard
    whose scope is listed crashes on its first ``crash_attempts``
    executions and succeeds afterwards (or never, when the retry budget
    is smaller).
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injectable fault: where, what, how often, and its parameter."""

    stage: str
    kind: str
    probability: float
    param: float = 0.0

    def __post_init__(self) -> None:
        if (self.stage, self.kind) not in FAULT_KINDS:
            known = ", ".join(f"{s}/{k}" for s, k in sorted(FAULT_KINDS))
            raise ValueError(
                f"unknown fault {self.stage}/{self.kind}; known: {known}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("fault probability must be within [0, 1]")
        if self.param < 0.0:
            raise ValueError("fault param must be non-negative")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for the beacon client.

    Delay before retry *k* (1-based count of failures so far) is

        ``min(max_delay, base_delay * multiplier ** (k - 1)) + jitter_draw``

    where ``jitter_draw`` is ``jitter * U[0, 1)`` from the shard's fault
    RNG stream — sim-clock seconds, fully deterministic at a fixed seed.
    ``max_attempts=1`` means no retries (the legacy behaviour).
    """

    max_attempts: int = 1
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0.0 or self.max_delay < 0.0 or self.jitter < 0.0:
            raise ValueError("retry delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")

    def backoff(self, failures: int) -> float:
        """Deterministic part of the delay after *failures* failures."""
        if failures < 1:
            raise ValueError("failures must be at least 1")
        return min(self.max_delay,
                   self.base_delay * self.multiplier ** (failures - 1))


@dataclass(frozen=True)
class FaultPlan:
    """A complete, hashable fault schedule for one experiment.

    The default instance is the ``none`` plan: no specs, single-attempt
    retry policy, no crash schedule — and the subsystem guarantees that
    a run under the ``none`` plan is byte-identical to a run built
    before the subsystem existed (no extra RNG draws, no extra metrics,
    no wire-format changes).
    """

    name: str = "none"
    specs: tuple[FaultSpec, ...] = ()
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Shard scopes (``period/country/slice``) that crash when executed;
    #: a recovery-path test hook, not a network fault.
    crash_scopes: tuple[str, ...] = ()
    #: How many executions of each listed scope fail before succeeding.
    crash_attempts: int = 1

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("fault plan needs a name")
        if self.crash_attempts < 1:
            raise ValueError("crash_attempts must be at least 1")
        seen: set[tuple[str, str]] = set()
        for spec in self.specs:
            key = (spec.stage, spec.kind)
            if key in seen:
                raise ValueError(
                    f"duplicate fault spec {spec.stage}/{spec.kind}")
            seen.add(key)

    # -- activity ------------------------------------------------------- #

    @property
    def injects(self) -> bool:
        """Can any network/collector fault actually fire?"""
        return any(spec.probability > 0.0 for spec in self.specs)

    @property
    def retries_enabled(self) -> bool:
        return self.retry.max_attempts > 1

    @property
    def active(self) -> bool:
        """Does this plan change run behaviour at all?

        Crash scopes deliberately do **not** activate the plan: a crashed
        shard's *re-execution* must be byte-identical to an uncrashed one,
        so the in-shard pipeline may not know crashes are scheduled.
        """
        return self.injects or self.retries_enabled

    def probability(self, stage: str, kind: str) -> float:
        for spec in self.specs:
            if spec.stage == stage and spec.kind == kind:
                return spec.probability
        return 0.0

    def param(self, stage: str, kind: str, default: float = 0.0) -> float:
        for spec in self.specs:
            if spec.stage == stage and spec.kind == kind:
                return spec.param
        return default

    def should_crash(self, scope: str, attempt: int) -> bool:
        """Is execution *attempt* (0-based) of *scope* scheduled to crash?"""
        return scope in self.crash_scopes and attempt < self.crash_attempts

    # -- construction / serialisation ----------------------------------- #

    @classmethod
    def preset(cls, name: str) -> "FaultPlan":
        """One of the built-in plans: ``none``, ``flaky``, ``hostile``."""
        if name == "none":
            return cls()
        if name == "flaky":
            return cls(
                name="flaky",
                specs=(
                    FaultSpec("connect", "refused", 0.05),
                    FaultSpec("connect", "timeout", 0.02, param=0.75),
                    FaultSpec("stream", "disconnect", 0.02),
                    FaultSpec("frame", "truncate", 0.01),
                    FaultSpec("frame", "bit_flip", 0.01),
                    FaultSpec("delivery", "duplicate", 0.02),
                    FaultSpec("collector", "backpressure", 0.02, param=0.25),
                ),
                retry=RetryPolicy(max_attempts=3),
            )
        if name == "hostile":
            return cls(
                name="hostile",
                specs=(
                    FaultSpec("connect", "refused", 0.15),
                    FaultSpec("connect", "timeout", 0.08, param=1.5),
                    FaultSpec("stream", "disconnect", 0.08),
                    FaultSpec("frame", "truncate", 0.05),
                    FaultSpec("frame", "bit_flip", 0.05),
                    FaultSpec("delivery", "duplicate", 0.08),
                    FaultSpec("collector", "backpressure", 0.10, param=1.0),
                ),
                retry=RetryPolicy(max_attempts=4),
            )
        raise ValueError(
            f"unknown fault preset {name!r}; presets: "
            + ", ".join(PRESET_NAMES))

    @classmethod
    def resolve(cls, text: "str | None") -> "FaultPlan":
        """Map a ``--faults`` argument to a plan.

        ``None`` and preset names resolve directly; a string starting
        with ``{`` is parsed as an inline JSON plan; anything else is
        treated as the path of a JSON plan file.
        """
        if text is None:
            return cls()
        text = text.strip()
        if text in PRESET_NAMES:
            return cls.preset(text)
        if text.startswith("{"):
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ValueError(f"bad inline fault plan JSON: {exc}") from exc
            return cls.from_dict(data)
        path = Path(text)
        if path.is_file():
            try:
                data = json.loads(path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}: bad fault plan JSON: {exc}") from exc
            return cls.from_dict(data, name_default=path.stem)
        raise ValueError(
            f"--faults must be a preset ({', '.join(PRESET_NAMES)}), an "
            f"inline JSON object, or a JSON file path; got {text!r}")

    @classmethod
    def from_dict(cls, data: dict,
                  name_default: str = "custom") -> "FaultPlan":
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        known = {"name", "faults", "retry", "crash_shards"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown fault plan keys: {sorted(unknown)}")
        specs = []
        for index, raw in enumerate(data.get("faults", ())):
            if not isinstance(raw, dict):
                raise ValueError(f"faults[{index}] must be an object")
            try:
                specs.append(FaultSpec(
                    stage=raw["stage"], kind=raw["kind"],
                    probability=float(raw["probability"]),
                    param=float(raw.get("param", 0.0))))
            except KeyError as exc:
                raise ValueError(
                    f"faults[{index}] missing field {exc}") from exc
        retry_data = data.get("retry", {})
        if not isinstance(retry_data, dict):
            raise ValueError("retry must be an object")
        retry = RetryPolicy(
            max_attempts=int(retry_data.get("max_attempts", 1)),
            base_delay=float(retry_data.get("base_delay", 0.5)),
            multiplier=float(retry_data.get("multiplier", 2.0)),
            max_delay=float(retry_data.get("max_delay", 30.0)),
            jitter=float(retry_data.get("jitter", 0.25)))
        crash = data.get("crash_shards", {})
        if not isinstance(crash, dict):
            raise ValueError("crash_shards must be an object")
        return cls(
            name=str(data.get("name", name_default)),
            specs=tuple(specs),
            retry=retry,
            crash_scopes=tuple(crash.get("scopes", ())),
            crash_attempts=int(crash.get("attempts", 1)))

    def to_dict(self) -> dict:
        data: dict = {
            "name": self.name,
            "faults": [
                {"stage": spec.stage, "kind": spec.kind,
                 "probability": spec.probability, "param": spec.param}
                for spec in self.specs],
            "retry": {
                "max_attempts": self.retry.max_attempts,
                "base_delay": self.retry.base_delay,
                "multiplier": self.retry.multiplier,
                "max_delay": self.retry.max_delay,
                "jitter": self.retry.jitter},
        }
        if self.crash_scopes:
            data["crash_shards"] = {"scopes": list(self.crash_scopes),
                                    "attempts": self.crash_attempts}
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True,
                          allow_nan=False) + "\n"
