"""Quarantine log for malformed beacon traffic.

When fault injection is active, a corrupt WebSocket frame no longer
kills the collector's connection loop: the decoder's buffered bytes are
dropped, the incident lands here, and the session keeps consuming
subsequent frames.  The log is bounded — a hostile plan can corrupt
thousands of frames, and the coverage report only needs the counts plus
a representative sample — with an explicit ``dropped`` counter so
truncation is never silent.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default retention; entries beyond it are counted, not stored.
DEFAULT_QUARANTINE_CAPACITY = 256


@dataclass(frozen=True)
class QuarantineEntry:
    """One malformed-frame incident, self-describing for the report."""

    connection_id: int
    byte_offset: int
    reason: str
    domain: str = ""
    campaign_id: str = ""
    shard: str = ""


class QuarantineLog:
    """Bounded, append-only incident log (per collector, merged per run)."""

    def __init__(self,
                 capacity: int = DEFAULT_QUARANTINE_CAPACITY) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self._entries: list[QuarantineEntry] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def total(self) -> int:
        """Every incident seen, retained or not."""
        return len(self._entries) + self.dropped

    def record(self, entry: QuarantineEntry) -> bool:
        """Append *entry*; returns False when the bound dropped it."""
        if len(self._entries) >= self.capacity:
            self.dropped += 1
            return False
        self._entries.append(entry)
        return True

    def entries(self) -> tuple[QuarantineEntry, ...]:
        return tuple(self._entries)
