"""Publisher universe generation.

Builds the synthetic counterpart of the Google Display Network's inventory:
thousands of publishers with Zipf pageview popularity, Alexa-style global
ranks, topical content drawn from the taxonomy, per-vertical engagement,
auction economics, and the behavioural quirks the audit later surfaces
(anonymous exchange sellers, third-party-script blockers, unsafe sites).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.taxonomy.lexicon import Lexicon, build_default_lexicon
from repro.util.rng import CumulativeSampler, zipf_weights
from repro.web.publisher import Publisher
from repro.web.ranking import RankingService

#: vertical → (weight in the universe, engagement multiplier).  Engagement
#: drives dwell/exposure time: sports pages hold visitors (live scores,
#: match threads) while reference/science pages are skimmed — this is what
#: makes the Football campaigns' viewability land higher (Table 3).
_VERTICALS: dict[str, tuple[float, float]] = {
    "news": (0.22, 1.00),
    "sports": (0.16, 2.10),
    "entertainment": (0.17, 1.30),
    "technology": (0.11, 0.95),
    "lifestyle": (0.14, 1.05),
    "commerce": (0.11, 0.85),
    "science": (0.03, 0.70),
    "unsafe": (0.06, 1.10),
}

_DOMAIN_STEMS: dict[str, list[str]] = {
    "news": ["diario", "gazette", "noticias", "courier", "herald", "tribune",
             "vesti", "daily", "portada", "actualidad"],
    "sports": ["futbol", "golazo", "marcador", "deporte", "sportarena",
               "laliga-fans", "penalti", "cancha", "fichajes", "stadium"],
    "entertainment": ["cineplex", "serieadictos", "melodia", "farandula",
                      "gamerzone", "estrenos", "risas", "teleguia"],
    "technology": ["tecnoblog", "gadgetero", "codigo", "bitacora", "devnotes",
                   "movilzona", "hackwire"],
    "lifestyle": ["viajeros", "recetario", "modaviva", "saludable", "hogareno",
                  "motorpasion", "escapadas"],
    "commerce": ["chollos", "anuncios", "bolsaplus", "empleoya", "pisoideal",
                 "subastas", "descuentos"],
    "science": ["investigacion", "cienciahoy", "campus", "revista-i",
                "labnotes", "sabio", "tesis"],
    "unsafe": ["descargaloya", "apuestafacil", "torrentera", "clickcebo",
               "ruleta24", "contenidox"],
}

_SUFFIX_BY_COUNTRY = {"ES": ".es", "RU": ".ru", "US": ".com", "GLOBAL": ".net"}


@dataclass(frozen=True)
class UniverseConfig:
    """Knobs for universe generation.

    Defaults reproduce the paper-scale world; tests shrink ``publisher_count``.
    """

    publisher_count: int = 9_000
    max_global_rank: int = 10_000_000
    zipf_exponent: float = 1.3
    anonymous_fraction: float = 0.10
    script_blocking_fraction: float = 0.15
    #: Share of publishers serving ads in SafeFrame-style transparent
    #: iframes (geometry visible to the creative's script).
    safeframe_fraction: float = 0.22
    country_shares: tuple[tuple[str, float], ...] = (
        ("ES", 0.38), ("RU", 0.16), ("US", 0.26), ("GLOBAL", 0.20))

    def __post_init__(self) -> None:
        if self.publisher_count < 1:
            raise ValueError("publisher_count must be positive")
        if self.max_global_rank < self.publisher_count:
            raise ValueError("max_global_rank must cover publisher_count")
        for name in ("anonymous_fraction", "script_blocking_fraction",
                     "safeframe_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        total = sum(share for _, share in self.country_shares)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError("country shares must sum to 1")


class PublisherUniverse:
    """The generated inventory plus popularity sampling machinery."""

    def __init__(self, rng: random.Random,
                 config: UniverseConfig | None = None,
                 lexicon: Lexicon | None = None) -> None:
        self.config = config or UniverseConfig()
        self.lexicon = lexicon or build_default_lexicon()
        self._keywords_by_topic = self._reverse_lexicon(self.lexicon)
        self.publishers: list[Publisher] = self._generate(rng)
        self._by_domain = {publisher.domain: publisher
                           for publisher in self.publishers}
        self.ranking = RankingService(self.publishers,
                                      max_rank=self.config.max_global_rank)
        # Pageview popularity follows Zipf over rank order.
        self._popularity = CumulativeSampler(
            zipf_weights(len(self.publishers), self.config.zipf_exponent))

    @staticmethod
    def _reverse_lexicon(lexicon: Lexicon) -> dict[str, list[str]]:
        reverse: dict[str, list[str]] = {}
        for keyword in lexicon.vocabulary():
            node = lexicon.topic_of(keyword)
            if node is not None:
                reverse.setdefault(node, []).append(keyword)
        return reverse

    def _generate(self, rng: random.Random) -> list[Publisher]:
        config = self.config
        count = config.publisher_count
        # Global ranks: log-uniform over [1, max_rank], sorted so publisher 0
        # is the most popular.  This reproduces Alexa's long tail: only a
        # handful of our publishers sit in the top 1K, most in the millions.
        ranks: set[int] = set()
        while len(ranks) < count:
            exponent = rng.uniform(0.0, math.log10(config.max_global_rank))
            ranks.add(max(1, int(round(10 ** exponent))))
        ordered_ranks = sorted(ranks)

        verticals = list(_VERTICALS)
        vertical_weights = [_VERTICALS[name][0] for name in verticals]
        countries = [country for country, _ in config.country_shares]
        country_weights = [share for _, share in config.country_shares]

        publishers: list[Publisher] = []
        seen_domains: set[str] = set()
        tree = self.lexicon.tree
        for index in range(count):
            vertical = rng.choices(verticals, weights=vertical_weights, k=1)[0]
            country = rng.choices(countries, weights=country_weights, k=1)[0]
            rank = ordered_ranks[index]
            # Topics: 1-3 nodes from the vertical's subtree.
            subtree = tree.subtree(vertical)
            topic_count = min(len(subtree), rng.randint(1, 3))
            topics = tuple(rng.sample(subtree, topic_count))
            keywords: list[str] = []
            for topic in topics:
                keywords.extend(self._keywords_by_topic.get(topic, []))
                keywords.append(topic.replace("-", " "))
            # Popular publishers command higher floors and attract premium
            # demand; the long tail is remnant inventory.  Floors are noisy
            # on purpose: the market is not perfectly rank-priced, which is
            # half of the paper's Figure 2 story.
            popularity = 1.0 - index / count          # 1.0 = most popular
            floor_cpm = round(0.002 + 0.25 * (popularity ** 3) * rng.uniform(0.2, 1.0), 4)
            # Premium demand tracks the *global* rank tier: top-10K sites
            # are premium inventory that external advertisers contest on
            # nearly every pageview; the deep tail is pure remnant.
            if rank < 10_000:
                premium_base = 0.88
            elif rank < 100_000:
                premium_base = 0.55
            elif rank < 1_000_000:
                premium_base = 0.45
            else:
                premium_base = 0.08
            premium_demand = min(0.98, premium_base * rng.uniform(0.85, 1.1))
            engagement = _VERTICALS[vertical][1] * rng.uniform(0.7, 1.3)
            domain = self._make_domain(rng, vertical, country, seen_domains)
            seen_domains.add(domain)
            publishers.append(Publisher(
                domain=domain,
                global_rank=rank,
                country_focus=country,
                topics=topics,
                keywords=tuple(dict.fromkeys(keywords)),
                is_anonymous=rng.random() < config.anonymous_fraction,
                blocks_scripts=rng.random() < config.script_blocking_fraction,
                safeframe=rng.random() < config.safeframe_fraction,
                unsafe=vertical == "unsafe",
                engagement=engagement,
                floor_cpm=floor_cpm,
                premium_demand=premium_demand,
                ad_slots=rng.randint(1, 3),
            ))
        return publishers

    @staticmethod
    def _make_domain(rng: random.Random, vertical: str, country: str,
                     seen: set[str]) -> str:
        suffix = _SUFFIX_BY_COUNTRY[country]
        for _ in range(1000):
            stem = rng.choice(_DOMAIN_STEMS[vertical])
            number = rng.randrange(10_000)
            domain = f"{stem}{number}{suffix}"
            if domain not in seen:
                return domain
        raise RuntimeError("domain namespace exhausted")

    def __len__(self) -> int:
        return len(self.publishers)

    def by_domain(self, domain: str) -> Publisher:
        """Look a publisher up by domain."""
        try:
            return self._by_domain[domain.lower()]
        except KeyError:
            raise KeyError(f"unknown publisher: {domain!r}") from None

    def sample_pageview_publisher(self, rng: random.Random,
                                  interests: tuple[str, ...] = (),
                                  country: str = "",
                                  attempts: int = 4) -> Publisher:
        """Draw the publisher for one pageview.

        Popularity-weighted Zipf sampling, biased toward the visitor's
        interests and country: a few redraws keep the stream realistic
        (people mostly read what they care about, in their locale) without
        making interests deterministic.
        """
        choice = self.publishers[self._popularity.sample(rng)]
        interest_set = set(interests)
        for _ in range(attempts):
            topical = interest_set.intersection(choice.topics)
            local = not country or choice.country_focus in (country, "GLOBAL")
            if (topical or not interest_set) and local:
                return choice
            choice = self.publishers[self._popularity.sample(rng)]
        return choice

    def matching_publishers(self, topic: str) -> list[Publisher]:
        """All publishers carrying *topic* (used by bots to find targets)."""
        return [publisher for publisher in self.publishers
                if topic in publisher.topics]
