"""Data-center bot fleets.

The fraud the paper detects (§4.2): bots installed on servers that are sent
to websites to view ads.  A fleet lives inside one data-center provider's
address space, pretends to be located in a target country (so geo-targeted
campaigns still match), concentrates on publishers in high-payout verticals,
and browses far more than any human — with shallow page dwell.

The fleets are what make the Football campaigns show ~10 % data-center
impressions while the Research/General campaigns stay around or below 1 %
(Table 4): sports inventory is where this fleet's operators monetise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geo.providers import Provider, ProviderKind, ProviderRegistry
from repro.net.useragent import generate_user_agent


@dataclass(frozen=True)
class Bot:
    """One bot instance: a server IP pretending to be a visitor."""

    bot_id: int
    fleet_id: int
    ip: str
    user_agent: str
    claimed_country: str
    target_topics: tuple[str, ...]
    daily_pageviews: float
    dwell_seconds: float
    focus_size: int = 0

    def __post_init__(self) -> None:
        if self.daily_pageviews <= 0:
            raise ValueError("daily_pageviews must be positive")
        if self.dwell_seconds <= 0:
            raise ValueError("dwell_seconds must be positive")


@dataclass(frozen=True)
class BotConfig:
    """Fleet-shape knobs."""

    bots_per_fleet: int = 25
    fleet_count: int = 2
    daily_pageviews_min: float = 40.0
    daily_pageviews_max: float = 160.0
    dwell_min: float = 1.2
    dwell_max: float = 8.0
    #: A small share of bots run far hotter than the rest — the extreme
    #: upper-right region of Figure 3 (hundreds of impressions, sub-20 s
    #: inter-arrival) comes from these.
    aggressive_fraction: float = 0.0
    aggressive_multiplier: float = 1.0
    #: When positive, every bot of a fleet works the same small list of
    #: target sites (operators monetise specific partner publishers, they
    #: do not roam the whole web) — this is what keeps the fraction of
    #: *publishers* exposed to data-center traffic bounded in Table 4.
    fleet_focus_size: int = 0
    #: Verticals the operators monetise, with fleet-assignment weights.
    target_profile: tuple[tuple[str, float], ...] = (
        ("sports", 0.62), ("entertainment", 0.22), ("news", 0.16))

    def __post_init__(self) -> None:
        if self.bots_per_fleet < 1 or self.fleet_count < 1:
            raise ValueError("fleet sizes must be positive")
        if not 0 < self.daily_pageviews_min <= self.daily_pageviews_max:
            raise ValueError("invalid pageview range")
        if not 0 < self.dwell_min <= self.dwell_max:
            raise ValueError("invalid dwell range")
        if not self.target_profile:
            raise ValueError("target_profile must be non-empty")
        if not 0.0 <= self.aggressive_fraction <= 1.0:
            raise ValueError("aggressive_fraction must be within [0, 1]")
        if self.aggressive_multiplier < 1.0:
            raise ValueError("aggressive_multiplier must be >= 1")
        if self.fleet_focus_size < 0:
            raise ValueError("fleet_focus_size must be non-negative")


class BotFleet:
    """A collection of bots spread over data-center providers."""

    def __init__(self, rng: random.Random, registry: ProviderRegistry,
                 countries: tuple[str, ...] = ("ES",),
                 config: BotConfig | None = None) -> None:
        self.config = config or BotConfig()
        datacenters = registry.datacenter_providers(include_vpn=False)
        if not datacenters:
            raise ValueError("registry has no data-center providers")
        self.bots: list[Bot] = []
        verticals = [name for name, _ in self.config.target_profile]
        weights = [weight for _, weight in self.config.target_profile]
        next_id = 1
        for fleet_index in range(self.config.fleet_count):
            fleet_id = rng.getrandbits(32)
            country = rng.choice(countries)
            # Operators rent servers geolocated in the country the targeted
            # campaigns pay for, so geo-targeting does not filter them out.
            local = [provider for provider in datacenters
                     if provider.country == country]
            provider = rng.choice(local if local else datacenters)
            for _ in range(self.config.bots_per_fleet):
                # Each bot rotates its own target vertical: one fleet
                # monetises several content segments at once.
                vertical = rng.choices(verticals, weights=weights, k=1)[0]
                self.bots.append(self._make_bot(rng, next_id, fleet_id,
                                                provider, vertical, country))
                next_id += 1

    def _make_bot(self, rng: random.Random, bot_id: int, fleet_id: int,
                  provider: Provider, vertical: str, country: str) -> Bot:
        if provider.kind != ProviderKind.DATACENTER:
            raise ValueError("bots must be hosted in data-center space")
        config = self.config
        # Operators mix headless browsers with spoofed desktop UAs.
        browser = "headless" if rng.random() < 0.4 else "chrome"
        daily = rng.uniform(config.daily_pageviews_min,
                            config.daily_pageviews_max)
        if rng.random() < config.aggressive_fraction:
            daily *= config.aggressive_multiplier
        return Bot(
            bot_id=bot_id,
            fleet_id=fleet_id,
            ip=provider.random_ip(rng),
            user_agent=generate_user_agent(rng, device="server", browser=browser),
            claimed_country=country,
            target_topics=(vertical,),
            daily_pageviews=daily,
            dwell_seconds=rng.uniform(config.dwell_min, config.dwell_max),
            focus_size=config.fleet_focus_size,
        )

    def __len__(self) -> int:
        return len(self.bots)

    def unique_ips(self) -> set[str]:
        """Distinct server IPs across the fleet."""
        return {bot.ip for bot in self.bots}

    def targeting(self, topic: str) -> list[Bot]:
        """Bots monetising publishers of the given vertical."""
        return [bot for bot in self.bots if topic in bot.target_topics]
