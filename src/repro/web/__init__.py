"""Synthetic web ecosystem.

Generates the world the ad network serves into: a Zipf-popularity publisher
universe with topical content (including brand-unsafe verticals), an
Alexa-like ranking service, a human user population (per-country ISP IPs,
NATs, multiple User-Agents, interest-driven browsing) and data-center-hosted
bot fleets.
"""

from repro.web.publisher import Publisher
from repro.web.ranking import RankingService
from repro.web.population import PublisherUniverse, UniverseConfig
from repro.web.users import Device, UserPopulation, PopulationConfig
from repro.web.bots import Bot, BotFleet, BotConfig
from repro.web.browsing import Pageview, BrowsingSimulator, BrowsingConfig

__all__ = [
    "Publisher",
    "RankingService",
    "PublisherUniverse",
    "UniverseConfig",
    "Device",
    "UserPopulation",
    "PopulationConfig",
    "Bot",
    "BotFleet",
    "BotConfig",
    "Pageview",
    "BrowsingSimulator",
    "BrowsingConfig",
]
