"""Publisher model.

A publisher is a website that sells display inventory.  The attributes here
are exactly what the rest of the pipeline consumes:

* ``domain`` — what the beacon's URL report reveals to the auditor;
* ``global_rank`` — its Alexa-style popularity rank (Figure 2);
* ``topics``/``keywords`` — its thematic content (context audit, Table 2);
* ``is_anonymous`` — sells through the exchange anonymously, so the vendor
  report shows ``anonymous.google`` instead of the domain (Figure 1);
* ``blocks_scripts`` — sandboxes third-party JavaScript, so the beacon never
  fires there (the paper's 16.5 % unlogged publishers);
* ``engagement`` — how long visitors typically keep pages open, the main
  driver of exposure time / viewability (Table 3);
* ``floor_cpm``/``premium_demand`` — auction economics (Figure 2's
  CPM-vs-popularity result).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Publisher:
    """One website in the synthetic universe."""

    domain: str
    global_rank: int
    country_focus: str
    topics: tuple[str, ...]
    keywords: tuple[str, ...]
    is_anonymous: bool = False
    blocks_scripts: bool = False
    #: SafeFrame-style transparent iframes expose geometry to the creative,
    #: so the injected script CAN measure pixel visibility there — lifting
    #: the Same-Origin limitation of paper §3.1 on a subset of inventory.
    safeframe: bool = False
    unsafe: bool = False
    engagement: float = 1.0
    floor_cpm: float = 0.01
    premium_demand: float = 0.0
    ad_slots: int = 1

    def __post_init__(self) -> None:
        if not self.domain or "." not in self.domain:
            raise ValueError(f"implausible domain: {self.domain!r}")
        if self.global_rank < 1:
            raise ValueError("global_rank must be >= 1")
        if not self.topics:
            raise ValueError(f"publisher {self.domain} has no topics")
        if self.engagement <= 0:
            raise ValueError("engagement must be positive")
        if self.floor_cpm < 0:
            raise ValueError("floor_cpm must be non-negative")
        if not 0.0 <= self.premium_demand <= 1.0:
            raise ValueError("premium_demand must be within [0, 1]")
        if self.ad_slots < 1:
            raise ValueError("ad_slots must be >= 1")

    def url_for_page(self, page_id: int) -> str:
        """A concrete page URL (the beacon reports full URLs, the audit
        extracts the domain back out of them)."""
        if page_id < 0:
            raise ValueError("page_id must be non-negative")
        section = self.topics[page_id % len(self.topics)]
        return f"http://{self.domain}/{section}/article-{page_id}.html"

    def matches_keyword(self, keyword: str) -> bool:
        """Literal keyword-list match (the context audit's criterion 1)."""
        needle = " ".join(keyword.lower().split())
        return any(needle == candidate.lower() for candidate in self.keywords)


def domain_of_url(url: str) -> str:
    """Extract the publisher domain from a beacon-reported URL.

    Accepts bare domains too (vendor reports list placements as domains).
    """
    if not url:
        raise ValueError("empty URL")
    rest = url
    if "://" in rest:
        rest = rest.split("://", 1)[1]
    domain = rest.split("/", 1)[0].split(":", 1)[0].strip().lower()
    if not domain:
        raise ValueError(f"cannot extract domain from {url!r}")
    return domain
