"""Alexa-like popularity ranking service.

The popularity audit (Figure 2) buckets publishers by their global Alexa
rank.  This service answers ``rank_of(domain)`` queries over the synthetic
universe and provides the log-bucket machinery shared by the audit and the
figures.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.util.stats import bucket_index, log_buckets
from repro.web.publisher import Publisher


class RankingService:
    """Domain → global rank index.

    >>> pub = Publisher(domain="example.com", global_rank=42,
    ...                 country_focus="ES", topics=("news",), keywords=("news",))
    >>> service = RankingService([pub])
    >>> service.rank_of("example.com")
    42
    >>> service.rank_of("unknown.org") is None
    True
    """

    def __init__(self, publishers: Iterable[Publisher],
                 max_rank: int = 10_000_000) -> None:
        self._rank: dict[str, int] = {}
        for publisher in publishers:
            if publisher.domain in self._rank:
                raise ValueError(f"duplicate domain: {publisher.domain}")
            self._rank[publisher.domain] = publisher.global_rank
        self.max_rank = max(max_rank, max(self._rank.values(), default=1))

    def __len__(self) -> int:
        return len(self._rank)

    def rank_of(self, domain: str) -> Optional[int]:
        """Global rank of *domain*; None when the domain is unranked."""
        return self._rank.get(domain.lower())

    def top(self, n: int) -> list[str]:
        """The *n* best-ranked known domains, best first."""
        if n < 0:
            raise ValueError("n must be non-negative")
        ordered = sorted(self._rank.items(), key=lambda item: item[1])
        return [domain for domain, _ in ordered[:n]]

    def bucket_edges(self, first_edge: int = 100) -> list[int]:
        """Logarithmic rank bucket edges up to the service's max rank."""
        return log_buckets(self.max_rank, base=10, first_edge=first_edge)

    def bucket_of(self, domain: str, edges: Optional[list[int]] = None) -> Optional[int]:
        """Index of the log bucket the domain's rank falls into."""
        rank = self.rank_of(domain)
        if rank is None:
            return None
        if edges is None:
            edges = self.bucket_edges()
        return bucket_index(rank, edges)

    @staticmethod
    def bucket_label(edges: list[int], index: int) -> str:
        """Human-readable label for a bucket, e.g. ``'(1K, 10K]'``."""

        def human(value: int) -> str:
            if value >= 1_000_000:
                return f"{value // 1_000_000}M"
            if value >= 1_000:
                return f"{value // 1_000}K"
            return str(value)

        if index == 0:
            return f"[1, {human(edges[0])}]"
        return f"({human(edges[index - 1])}, {human(edges[index])}]"
