"""Human user population.

Each user owns a device behind an ISP-assigned IP (possibly shared through
a NAT with other users), one or two User-Agent strings, a set of topical
interests, and a heavy-tailed daily pageview budget.  The frequency-cap
audit identifies users as (IP, User-Agent) pairs — exactly why NATs and
multi-UA users matter here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.geo.providers import ProviderRegistry
from repro.net.useragent import generate_user_agent
from repro.taxonomy.tree import TaxonomyTree

#: Interests are drawn from these verticals' subtrees, weighted by how
#: mainstream the vertical is: football fans are everywhere, people with a
#: research/academia interest profile are rare.  This asymmetry is what
#: lets the network fill a Football campaign behaviourally while a Research
#: campaign has to fall back to run-of-network inventory (Table 2).
_INTEREST_VERTICALS: tuple[tuple[str, float], ...] = (
    ("news", 0.23), ("sports", 0.27), ("entertainment", 0.22),
    ("technology", 0.10), ("lifestyle", 0.125), ("commerce", 0.05),
    ("science", 0.005),
)


@dataclass(frozen=True)
class Device:
    """A browsing identity: one human (or NAT-mate) on one browser."""

    user_id: int
    country: str
    ip: str
    user_agents: tuple[str, ...]
    interests: tuple[str, ...]
    daily_pageviews: float
    engagement: float          # dwell-time multiplier, ~1.0 for the median user
    behind_nat: bool = False

    def __post_init__(self) -> None:
        if not self.user_agents:
            raise ValueError("device needs at least one User-Agent")
        if self.daily_pageviews <= 0:
            raise ValueError("daily_pageviews must be positive")
        if self.engagement <= 0:
            raise ValueError("engagement must be positive")

    def pick_user_agent(self, rng: random.Random) -> str:
        """The UA for one pageview (primary browser strongly preferred)."""
        if len(self.user_agents) == 1 or rng.random() < 0.8:
            return self.user_agents[0]
        return rng.choice(self.user_agents[1:])


@dataclass(frozen=True)
class PopulationConfig:
    """Population-shape knobs."""

    users_per_country: int = 6_000
    nat_fraction: float = 0.12
    nat_group_size: int = 4
    multi_ua_fraction: float = 0.3
    pareto_alpha: float = 1.3
    median_daily_pageviews: float = 18.0
    interests_min: int = 2
    interests_max: int = 5

    def __post_init__(self) -> None:
        if self.users_per_country < 1:
            raise ValueError("users_per_country must be positive")
        if not 0.0 <= self.nat_fraction <= 1.0:
            raise ValueError("nat_fraction must be within [0, 1]")
        if self.nat_group_size < 2:
            raise ValueError("nat_group_size must be at least 2")
        if self.pareto_alpha <= 1.0:
            raise ValueError("pareto_alpha must exceed 1 (finite mean)")
        if not 1 <= self.interests_min <= self.interests_max:
            raise ValueError("invalid interests range")


class UserPopulation:
    """Generates and indexes the human devices of the simulated countries."""

    def __init__(self, rng: random.Random, registry: ProviderRegistry,
                 tree: TaxonomyTree, countries: tuple[str, ...] = ("ES", "RU", "US"),
                 config: PopulationConfig | None = None) -> None:
        self.config = config or PopulationConfig()
        self.devices: list[Device] = []
        interest_pool = self._interest_pool(tree)
        if not interest_pool[0]:
            raise ValueError("taxonomy has no interest verticals")
        next_user_id = 1
        for country in countries:
            providers = registry.access_providers(country)
            if not providers:
                raise ValueError(f"no access providers registered for {country}")
            remaining = self.config.users_per_country
            while remaining > 0:
                nat = rng.random() < self.config.nat_fraction
                group = min(self.config.nat_group_size, remaining) if nat else 1
                provider = rng.choice(providers)
                shared_ip = provider.random_ip(rng)
                for _ in range(group):
                    self.devices.append(self._make_device(
                        rng, next_user_id, country, shared_ip,
                        interest_pool, behind_nat=group > 1))
                    next_user_id += 1
                    remaining -= 1

    @staticmethod
    def _interest_pool(tree: TaxonomyTree) -> tuple[list[str], list[float]]:
        """Interest nodes and their sampling weights.

        Each vertical's weight is split evenly over its subtree, so adding
        topics to a vertical does not make the vertical more popular.
        """
        nodes: list[str] = []
        weights: list[float] = []
        for vertical, vertical_weight in _INTEREST_VERTICALS:
            if vertical not in tree:
                continue
            subtree = tree.subtree(vertical)
            for node in subtree:
                nodes.append(node)
                weights.append(vertical_weight / len(subtree))
        return nodes, weights

    def _make_device(self, rng: random.Random, user_id: int, country: str,
                     ip: str, interest_pool: tuple[list[str], list[float]],
                     behind_nat: bool) -> Device:
        config = self.config
        device_class = "mobile" if rng.random() < 0.35 else "desktop"
        ua_count = 2 if rng.random() < config.multi_ua_fraction else 1
        user_agents = tuple(generate_user_agent(rng, device=device_class)
                            for _ in range(ua_count))
        nodes, weights = interest_pool
        interest_count = min(rng.randint(config.interests_min,
                                         config.interests_max), len(nodes))
        chosen: list[str] = []
        seen: set[str] = set()
        while len(chosen) < interest_count:
            node = rng.choices(nodes, weights=weights, k=1)[0]
            if node not in seen:
                seen.add(node)
                chosen.append(node)
        interests = tuple(chosen)
        # Pareto activity: median scaled to config; the tail produces the
        # heavy receivers Figure 3's upper-right region is made of.
        pareto = rng.paretovariate(config.pareto_alpha)
        median_pareto = 2 ** (1.0 / config.pareto_alpha)
        daily = config.median_daily_pageviews * pareto / median_pareto
        return Device(
            user_id=user_id,
            country=country,
            ip=ip,
            user_agents=user_agents,
            interests=interests,
            daily_pageviews=min(daily, 2_500.0),
            engagement=rng.uniform(0.5, 1.6),
            behind_nat=behind_nat,
        )

    def __len__(self) -> int:
        return len(self.devices)

    def in_country(self, country: str) -> list[Device]:
        """Devices located in *country*."""
        return [device for device in self.devices if device.country == country]

    def unique_ips(self) -> set[str]:
        """Distinct public IPs across the population (NATs collapse here)."""
        return {device.ip for device in self.devices}
