"""Browsing simulation: turning populations into time-ordered pageviews.

Humans browse in sessions with diurnal rhythm, favourite sites, and
interest-biased publisher choice; bots grind around the clock on their
target verticals.  The output is a single time-merged stream of
:class:`Pageview` events — the raw material every ad delivery starts from.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.taxonomy.tree import TaxonomyTree
from repro.util.hashing import stable_hash
from repro.web.bots import Bot
from repro.web.population import PublisherUniverse
from repro.web.publisher import Publisher
from repro.web.users import Device

_SECONDS_PER_DAY = 86_400.0

#: Relative session-start weight per hour of day (UTC); evenings dominate.
_DIURNAL = [0.25, 0.15, 0.10, 0.08, 0.08, 0.12, 0.25, 0.45,
            0.65, 0.80, 0.90, 0.95, 1.00, 0.95, 0.90, 0.90,
            0.95, 1.00, 1.10, 1.20, 1.25, 1.15, 0.80, 0.45]


@dataclass(frozen=True)
class Pageview:
    """One page load by one visitor.

    ``is_bot`` and ``visitor_id`` are simulation ground truth — the
    collector never sees them; the audit must rediscover bots from the IP
    alone, as the paper does.
    """

    timestamp: float
    publisher: Publisher
    url: str
    ip: str
    user_agent: str
    country: str
    interests: tuple[str, ...]
    dwell_seconds: float
    is_bot: bool
    visitor_id: int

    def __post_init__(self) -> None:
        if self.dwell_seconds <= 0:
            raise ValueError("dwell_seconds must be positive")


@dataclass(frozen=True)
class BrowsingConfig:
    """Session-shape knobs."""

    pages_per_session_mean: float = 8.0
    think_time_min: float = 2.0
    think_time_max: float = 25.0
    favorite_count: int = 4
    favorite_revisit_prob: float = 0.45
    human_dwell_median: float = 3.0
    human_dwell_sigma: float = 1.1
    bot_burst_pages: int = 15
    bot_burst_think_min: float = 0.5
    bot_burst_think_max: float = 3.0

    def __post_init__(self) -> None:
        if self.pages_per_session_mean <= 0:
            raise ValueError("pages_per_session_mean must be positive")
        if not 0 < self.think_time_min <= self.think_time_max:
            raise ValueError("invalid think-time range")
        if self.favorite_count < 0:
            raise ValueError("favorite_count must be non-negative")
        if not 0.0 <= self.favorite_revisit_prob <= 1.0:
            raise ValueError("favorite_revisit_prob must be within [0, 1]")
        if self.human_dwell_median <= 0 or self.human_dwell_sigma <= 0:
            raise ValueError("dwell parameters must be positive")
        if self.bot_burst_pages < 1:
            raise ValueError("bot_burst_pages must be positive")
        if not 0 < self.bot_burst_think_min <= self.bot_burst_think_max:
            raise ValueError("invalid bot think-time range")


def poisson(rng: random.Random, lam: float) -> int:
    """Poisson draw; Knuth for small lambda, normal approximation above 60."""
    if lam < 0:
        raise ValueError("lambda must be non-negative")
    if lam == 0:
        return 0
    if lam > 60:
        return max(0, int(round(rng.gauss(lam, math.sqrt(lam)))))
    threshold = math.exp(-lam)
    count, product = 0, rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class BrowsingSimulator:
    """Generates pageview streams over a publisher universe."""

    def __init__(self, universe: PublisherUniverse, tree: TaxonomyTree,
                 config: BrowsingConfig | None = None) -> None:
        self.universe = universe
        self.tree = tree
        self.config = config or BrowsingConfig()
        self._fleet_focus: dict[tuple, list[Publisher]] = {}

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def stream(self, humans: Iterable[Device], bots: Iterable[Bot],
               window_start: float, window_end: float,
               rng: random.Random) -> Iterator[Pageview]:
        """Time-merged pageview stream for one simulation window.

        Per-visitor substreams are individually time-sorted generators;
        a heap merge yields the global stream in timestamp order without
        materialising it (memory stays O(#visitors)).
        """
        if window_end <= window_start:
            raise ValueError("window must have positive duration")
        generators: list[Iterator[Pageview]] = []
        for device in humans:
            child = random.Random(rng.getrandbits(64))
            generators.append(self._human_stream(device, window_start,
                                                 window_end, child))
        for bot in bots:
            child = random.Random(rng.getrandbits(64))
            generators.append(self._bot_stream(bot, window_start,
                                               window_end, child))
        return heapq.merge(*generators, key=lambda view: view.timestamp)

    # ------------------------------------------------------------------ #
    # humans
    # ------------------------------------------------------------------ #

    def _human_stream(self, device: Device, start: float, end: float,
                      rng: random.Random) -> Iterator[Pageview]:
        config = self.config
        days = (end - start) / _SECONDS_PER_DAY
        total = poisson(rng, device.daily_pageviews * days)
        if total == 0:
            return
        favorites = self._pick_favorites(device, rng)
        session_count = max(1, int(round(total / config.pages_per_session_mean)))
        starts = sorted(self._session_start(start, end, rng)
                        for _ in range(session_count))
        base, extra = divmod(total, session_count)
        now = 0.0
        for index, session_start in enumerate(starts):
            pages = base + (1 if index < extra else 0)
            now = max(now, session_start)
            for page in range(pages):
                publisher = self._choose_publisher(device, favorites, rng)
                dwell = self._human_dwell(device, publisher, rng)
                yield Pageview(
                    timestamp=now,
                    publisher=publisher,
                    url=publisher.url_for_page(rng.randrange(100_000)),
                    ip=device.ip,
                    user_agent=device.pick_user_agent(rng),
                    country=device.country,
                    interests=device.interests,
                    dwell_seconds=dwell,
                    is_bot=False,
                    visitor_id=device.user_id,
                )
                now += dwell + rng.uniform(config.think_time_min,
                                           config.think_time_max)

    def _pick_favorites(self, device: Device,
                        rng: random.Random) -> list[Publisher]:
        favorites: list[Publisher] = []
        for _ in range(self.config.favorite_count):
            favorites.append(self.universe.sample_pageview_publisher(
                rng, interests=device.interests, country=device.country))
        return favorites

    def _choose_publisher(self, device: Device, favorites: list[Publisher],
                          rng: random.Random) -> Publisher:
        if favorites and rng.random() < self.config.favorite_revisit_prob:
            return rng.choice(favorites)
        return self.universe.sample_pageview_publisher(
            rng, interests=device.interests, country=device.country)

    def _human_dwell(self, device: Device, publisher: Publisher,
                     rng: random.Random) -> float:
        config = self.config
        median = (config.human_dwell_median * device.engagement
                  * publisher.engagement)
        return max(0.2, rng.lognormvariate(math.log(median),
                                           config.human_dwell_sigma))

    @staticmethod
    def _session_start(start: float, end: float, rng: random.Random) -> float:
        """Diurnally weighted session start within the window."""
        span_days = max(1, int(math.ceil((end - start) / _SECONDS_PER_DAY)))
        day = rng.randrange(span_days)
        hour = rng.choices(range(24), weights=_DIURNAL, k=1)[0]
        moment = (start + day * _SECONDS_PER_DAY + hour * 3600.0
                  + rng.random() * 3600.0)
        # Clamp into the window (the last partial day can overshoot).
        return min(max(moment, start), end - 1.0)

    # ------------------------------------------------------------------ #
    # bots
    # ------------------------------------------------------------------ #

    def _bot_stream(self, bot: Bot, start: float, end: float,
                    rng: random.Random) -> Iterator[Pageview]:
        days = (end - start) / _SECONDS_PER_DAY
        total = poisson(rng, bot.daily_pageviews * days)
        if total == 0:
            return
        targets = self._bot_targets(bot)
        if not targets:
            return
        # Bots grind in bursts around the clock (no diurnal rhythm — itself
        # a real-world detection signal we keep in the data): a run of
        # pages back-to-back, then idle until the next burst.  The bursts
        # are what produce the sub-20-second ad inter-arrival times in the
        # extreme region of Figure 3.
        config = self.config
        burst_count = max(1, total // config.bot_burst_pages)
        burst_starts = sorted(start + rng.random() * (end - start - 1.0)
                              for _ in range(burst_count))
        base, extra = divmod(total, burst_count)
        now = start
        for index, burst_start in enumerate(burst_starts):
            pages = base + (1 if index < extra else 0)
            now = max(now, burst_start)
            for _ in range(pages):
                publisher = rng.choice(targets)
                dwell = max(0.3, rng.gauss(bot.dwell_seconds, 0.8))
                yield Pageview(
                    timestamp=min(now, end - 0.001),
                    publisher=publisher,
                    url=publisher.url_for_page(rng.randrange(100_000)),
                    ip=bot.ip,
                    user_agent=bot.user_agent,
                    country=bot.claimed_country,
                    interests=bot.target_topics,
                    dwell_seconds=dwell,
                    is_bot=True,
                    visitor_id=-bot.bot_id,
                )
                now += dwell + rng.uniform(config.bot_burst_think_min,
                                           config.bot_burst_think_max)

    def _bot_targets(self, bot: Bot) -> list[Publisher]:
        targets: list[Publisher] = []
        seen: set[str] = set()
        for vertical in bot.target_topics:
            nodes = self.tree.subtree(vertical) if vertical in self.tree \
                else [vertical]
            for node in nodes:
                for publisher in self.universe.matching_publishers(node):
                    if publisher.domain not in seen:
                        seen.add(publisher.domain)
                        targets.append(publisher)
        if bot.focus_size and len(targets) > bot.focus_size:
            # Every bot of a fleet shares the operator's site list: the
            # subset is keyed by the fleet, not the bot.
            key = (bot.fleet_id, bot.target_topics, bot.focus_size)
            if key not in self._fleet_focus:
                chooser = random.Random(stable_hash(
                    "fleet-focus", str(bot.fleet_id), *bot.target_topics))
                self._fleet_focus[key] = chooser.sample(targets,
                                                        bot.focus_size)
            return self._fleet_focus[key]
        return targets
