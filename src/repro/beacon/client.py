"""The beacon's WebSocket client side.

Runs in the visitor's browser right after the creative renders: opens the
connection to the collector (which stamps the impression), performs the
RFC 6455 handshake, ships the HELLO string, streams interaction events at
their offsets, and closes at page unload so the server-measured connection
duration equals the ad's exposure time.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Optional

from repro.adnetwork.server import DeliveredImpression
from repro.beacon.events import BeaconObservation
from repro.collector.payload import encode_hello, encode_interaction
from repro.collector.server import CollectorServer
from repro.net.transport import Endpoint, SimulatedNetwork
from repro.obs.trace import NULL_TRACER, Tracer
from repro.net.websocket import (
    Frame,
    Opcode,
    accept_key,
    encode_frame,
    make_client_key,
    make_handshake_request,
)
from repro.util.simclock import SimClock


class DeliveryStatus(enum.Enum):
    """How far one beacon report made it."""

    DELIVERED = "delivered"
    CONNECT_FAILED = "connect_failed"
    DROPPED_MID_STREAM = "dropped"
    HANDSHAKE_FAILED = "handshake_failed"


@dataclass(frozen=True)
class BeaconDelivery:
    """Outcome of one beacon execution that reached the network layer."""

    status: DeliveryStatus
    connection_id: Optional[int] = None

    @property
    def reached_server(self) -> bool:
        """Did the collector get at least the connection (even truncated)?"""
        return self.status in (DeliveryStatus.DELIVERED,
                               DeliveryStatus.DROPPED_MID_STREAM)


class BeaconClient:
    """Drives one connection per observed impression."""

    def __init__(self, network: SimulatedNetwork, collector: CollectorServer,
                 clock: SimClock, rng: random.Random,
                 tracer: Tracer | None = None) -> None:
        self.network = network
        self.collector = collector
        self.clock = clock
        self.rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def deliver(self, impression: DeliveredImpression,
                observation: BeaconObservation) -> BeaconDelivery:
        """Report one impression to the collector.

        Advances the shared clock to the impression's render instant, then
        through each interaction offset, and finally to page unload.
        """
        render_time = (impression.pageview.timestamp
                       + impression.exposure.render_delay)
        tracer = self.tracer
        tracer.span("beacon.render",
                    start=impression.pageview.timestamp, end=render_time,
                    render_delay=impression.exposure.render_delay,
                    exposure_seconds=observation.exposure_seconds,
                    interactions=len(observation.interactions))
        # Keep the shared clock loosely in step for observers, but time the
        # connection itself arithmetically: beacon connections overlap, so
        # one global monotonic clock cannot sequence them.
        self.clock.advance_to(render_time)
        client_endpoint = Endpoint(ip=impression.pageview.ip,
                                   port=49152 + self.rng.randrange(16384))
        connection = self.network.connect(client_endpoint,
                                          self.collector.endpoint,
                                          at_time=render_time)
        if connection is None:
            return BeaconDelivery(status=DeliveryStatus.CONNECT_FAILED)
        # Handshake needs a round trip before application frames flow.
        now = connection.opened_at_server
        key = make_client_key(self.rng)
        connection.client_send(
            make_handshake_request(self.collector.endpoint.ip, "/beacon", key,
                                   origin=impression.pageview.url),
            now)
        self.collector.process(connection)
        response = connection.drain_client_inbox()
        if accept_key(key).encode("ascii") not in response:
            connection.close(now, initiator="client")
            self.collector.finalize(connection)
            tracer.end(at=now)
            return BeaconDelivery(status=DeliveryStatus.HANDSHAKE_FAILED,
                                  connection_id=connection.connection_id)
        hello = encode_frame(Frame(Opcode.TEXT,
                                   encode_hello(observation).encode("utf-8"),
                                   masked=True), rng=self.rng)
        connection.client_send(hello, now)
        self.collector.process(connection)
        skew = self.clock.server_skew
        for event in observation.interactions:
            now = max(now, render_time + event.offset_seconds + skew)
            tracer.advance_to(now)
            if self.network.maybe_drop_mid_stream(connection, now):
                self.collector.finalize(connection)
                tracer.end(at=now)
                return BeaconDelivery(status=DeliveryStatus.DROPPED_MID_STREAM,
                                      connection_id=connection.connection_id)
            frame = encode_frame(Frame(Opcode.TEXT,
                                       encode_interaction(event).encode("utf-8"),
                                       masked=True), rng=self.rng)
            connection.client_send(frame, now)
            self.collector.process(connection)
        now = max(render_time + observation.exposure_seconds + skew,
                  connection.opened_at_server)
        self.clock.advance_to(now - skew)
        tracer.advance_to(now)
        if self.network.maybe_drop_mid_stream(connection, now):
            self.collector.finalize(connection)
            tracer.end(at=now)
            return BeaconDelivery(status=DeliveryStatus.DROPPED_MID_STREAM,
                                  connection_id=connection.connection_id)
        close = encode_frame(Frame(Opcode.CLOSE, b"", masked=True),
                             rng=self.rng)
        connection.client_send(close, now)
        connection.close(now, initiator="client")
        self.collector.finalize(connection)
        tracer.end(at=now)
        return BeaconDelivery(status=DeliveryStatus.DELIVERED,
                              connection_id=connection.connection_id)
