"""The beacon's WebSocket client side.

Runs in the visitor's browser right after the creative renders: opens the
connection to the collector (which stamps the impression), performs the
RFC 6455 handshake, ships the HELLO string, streams interaction events at
their offsets, and closes at page unload so the server-measured connection
duration equals the ad's exposure time.

Under an active fault plan the client additionally survives the network:
failed attempts (connect refused/timed out, mid-stream disconnects) are
retried with bounded exponential backoff + jitter on the sim clock, every
delivery carries a stable per-impression nonce so the collector can dedup
re-deliveries, and the whole attempt schedule is deterministic in the
shard's fault RNG stream — the same seed and plan reproduce the same
retries serial or parallel.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Optional

from repro.adnetwork.server import DeliveredImpression
from repro.beacon.events import BeaconObservation
from repro.collector.payload import encode_hello, encode_interaction
from repro.collector.server import CollectorServer, FinalizeOutcome
from repro.faults.inject import NULL_INJECTOR, FaultInjector
from repro.faults.plan import RetryPolicy
from repro.net.transport import Endpoint, SimulatedNetwork
from repro.obs.events import NULL_EVENTS, EventLog
from repro.obs.trace import NULL_TRACER, Tracer
from repro.net.websocket import (
    Frame,
    Opcode,
    accept_key,
    encode_frame,
    make_client_key,
    make_handshake_request,
)
from repro.util.hashing import stable_hash
from repro.util.simclock import SimClock


class DeliveryStatus(enum.Enum):
    """How far one beacon report made it."""

    DELIVERED = "delivered"
    CONNECT_FAILED = "connect_failed"
    DROPPED_MID_STREAM = "dropped"
    HANDSHAKE_FAILED = "handshake_failed"


#: Statuses worth another attempt: the server never saw a complete
#: report, so (with the nonce guarding against the truncated-commit
#: case) a retry can only add information.  A failed handshake is the
#: server *rejecting* us deterministically — retrying cannot help.
_RETRYABLE = (DeliveryStatus.CONNECT_FAILED,
              DeliveryStatus.DROPPED_MID_STREAM)


@dataclass(frozen=True)
class BeaconDelivery:
    """Outcome of one beacon execution that reached the network layer."""

    status: DeliveryStatus
    connection_id: Optional[int] = None
    #: How many connection attempts the client made (1 without faults).
    attempts: int = 1
    #: Did any attempt commit an impression record at the collector?
    committed: bool = False
    #: Deliveries the collector dedup-rejected via the nonce.
    duplicates: int = 0
    #: Malformed frames the collector quarantined across all attempts.
    quarantined_frames: int = 0
    #: Sim-clock instant each attempt started at (render-time first).
    attempt_instants: tuple[float, ...] = ()

    @property
    def reached_server(self) -> bool:
        """Did the collector get at least the connection (even truncated)?"""
        return self.status in (DeliveryStatus.DELIVERED,
                               DeliveryStatus.DROPPED_MID_STREAM)


@dataclass(frozen=True)
class _Attempt:
    """One connection attempt's outcome (internal to the retry loop)."""

    status: DeliveryStatus
    connection_id: Optional[int]
    failed_at: float
    finalize: Optional[FinalizeOutcome]


class BeaconClient:
    """Drives one connection per observed impression (plus retries)."""

    def __init__(self, network: SimulatedNetwork, collector: CollectorServer,
                 clock: SimClock, rng: random.Random,
                 tracer: Tracer | None = None,
                 injector: FaultInjector | None = None,
                 retry: RetryPolicy | None = None,
                 events: EventLog | None = None) -> None:
        self.network = network
        self.collector = collector
        self.clock = clock
        self.rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.injector = injector if injector is not None else NULL_INJECTOR
        self.retry = retry if retry is not None else self.injector.plan.retry
        self.events = events if events is not None else NULL_EVENTS

    def _nonce(self, impression: DeliveredImpression) -> str:
        """Stable per-impression delivery nonce (the dedup key)."""
        return format(stable_hash("beacon-nonce",
                                  impression.campaign.campaign_id,
                                  str(impression.impression_id)), "016x")

    def deliver(self, impression: DeliveredImpression,
                observation: BeaconObservation) -> BeaconDelivery:
        """Report one impression to the collector.

        Advances the shared clock to the impression's render instant, then
        through each interaction offset, and finally to page unload.  With
        retries enabled, retryable failures re-run the whole attempt after
        a deterministic backoff; the delivery summary aggregates every
        attempt.
        """
        render_time = (impression.pageview.timestamp
                       + impression.exposure.render_delay)
        tracer = self.tracer
        tracer.span("beacon.render",
                    start=impression.pageview.timestamp, end=render_time,
                    render_delay=impression.exposure.render_delay,
                    exposure_seconds=observation.exposure_seconds,
                    interactions=len(observation.interactions))
        # Keep the shared clock loosely in step for observers, but time the
        # connection itself arithmetically: beacon connections overlap, so
        # one global monotonic clock cannot sequence them.
        self.clock.advance_to(render_time)

        policy = self.retry
        # The nonce rides the wire whenever re-delivery is possible —
        # injected duplicates or retries — and never otherwise, keeping
        # fault-free wire bytes (and ws.bytes_fed) historical.
        nonce = self._nonce(impression) \
            if (self.injector.active or policy.max_attempts > 1) else ""

        attempts = 0
        duplicates = 0
        quarantined = 0
        committed = False
        duplicated = False
        connection_id: Optional[int] = None
        instants: list[float] = []
        attempt_time = render_time
        while True:
            attempts += 1
            instants.append(attempt_time)
            attempt = self._attempt(impression, observation, nonce,
                                    attempt_time, render_time)
            if attempt.connection_id is not None:
                connection_id = attempt.connection_id
            outcome = attempt.finalize
            if outcome is not None:
                committed = committed or outcome.committed
                duplicates += 1 if outcome.duplicate else 0
                quarantined += outcome.quarantined_frames
            status = attempt.status
            if status in _RETRYABLE and attempts < policy.max_attempts:
                backoff = (policy.backoff(attempts)
                           + self.injector.jitter(policy.jitter))
                self.injector.count("beacon.retries")
                tracer.event("beacon.retry", at=attempt.failed_at,
                             attempt=attempts, backoff_seconds=backoff,
                             reason=status.value)
                self.events.emit("beacon.retry", at=attempt.failed_at,
                                 attempt=attempts, backoff_seconds=backoff,
                                 reason=status.value)
                attempt_time = attempt.failed_at + backoff
                continue
            if (status is DeliveryStatus.DELIVERED and not duplicated
                    and self.injector.fires("delivery", "duplicate")):
                # At-least-once client whose ack "got lost": the full
                # report is re-sent once; the nonce makes it dedup.
                duplicated = True
                backoff = (policy.backoff(1)
                           + self.injector.jitter(policy.jitter))
                tracer.event("beacon.redeliver", at=attempt.failed_at,
                             backoff_seconds=backoff)
                self.events.emit("beacon.redeliver", at=attempt.failed_at,
                                 backoff_seconds=backoff)
                attempt_time = attempt.failed_at + backoff
                continue
            break
        if attempts > 1:
            self.injector.count("beacon.reattempted_deliveries")
            if committed:
                self.injector.count("beacon.recovered_deliveries")
        return BeaconDelivery(status=status, connection_id=connection_id,
                              attempts=attempts, committed=committed,
                              duplicates=duplicates,
                              quarantined_frames=quarantined,
                              attempt_instants=tuple(instants))

    def _attempt(self, impression: DeliveredImpression,
                 observation: BeaconObservation, nonce: str,
                 start_time: float, render_time: float) -> _Attempt:
        """One full connection attempt, starting at *start_time*.

        The first attempt (``start_time == render_time``) reproduces the
        pre-retry client byte-for-byte: same RNG draw order (port, client
        key, frame masks), same tracer spans, same clock advances.
        """
        tracer = self.tracer
        client_endpoint = Endpoint(ip=impression.pageview.ip,
                                   port=49152 + self.rng.randrange(16384))
        connection = self.network.connect(client_endpoint,
                                          self.collector.endpoint,
                                          at_time=start_time)
        if connection is None:
            failed_at = start_time
            if self.network.last_connect_failure == "fault_timeout":
                # A refused SYN fails instantly; a timed-out one charges
                # the configured wait before the client gives up.
                failed_at += self.network.faults.param("connect", "timeout")
            return _Attempt(DeliveryStatus.CONNECT_FAILED, None,
                            failed_at, None)
        # Handshake needs a round trip before application frames flow.
        now = connection.opened_at_server
        key = make_client_key(self.rng)
        connection.client_send(
            make_handshake_request(self.collector.endpoint.ip, "/beacon", key,
                                   origin=impression.pageview.url),
            now)
        self.collector.process(connection)
        response = connection.drain_client_inbox()
        if accept_key(key).encode("ascii") not in response:
            connection.close(now, initiator="client")
            self.collector.finalize(connection)
            tracer.end(at=now)
            return _Attempt(DeliveryStatus.HANDSHAKE_FAILED,
                            connection.connection_id, now,
                            self.collector.last_finalize)
        hello = encode_frame(Frame(Opcode.TEXT,
                                   encode_hello(observation,
                                                nonce=nonce).encode("utf-8"),
                                   masked=True), rng=self.rng)
        connection.client_send(hello, now, faultable=True)
        self.collector.process(connection)
        skew = self.clock.server_skew
        for event in observation.interactions:
            now = max(now, render_time + event.offset_seconds + skew)
            tracer.advance_to(now)
            if self.network.maybe_drop_mid_stream(connection, now):
                self.collector.finalize(connection)
                tracer.end(at=now)
                return _Attempt(DeliveryStatus.DROPPED_MID_STREAM,
                                connection.connection_id, now,
                                self.collector.last_finalize)
            frame = encode_frame(Frame(Opcode.TEXT,
                                       encode_interaction(event).encode("utf-8"),
                                       masked=True), rng=self.rng)
            connection.client_send(frame, now, faultable=True)
            self.collector.process(connection)
        now = max(render_time + observation.exposure_seconds + skew,
                  connection.opened_at_server)
        self.clock.advance_to(now - skew)
        tracer.advance_to(now)
        if self.network.maybe_drop_mid_stream(connection, now):
            self.collector.finalize(connection)
            tracer.end(at=now)
            return _Attempt(DeliveryStatus.DROPPED_MID_STREAM,
                            connection.connection_id, now,
                            self.collector.last_finalize)
        close = encode_frame(Frame(Opcode.CLOSE, b"", masked=True),
                             rng=self.rng)
        connection.client_send(close, now, faultable=True)
        connection.close(now, initiator="client")
        self.collector.finalize(connection)
        tracer.end(at=now)
        return _Attempt(DeliveryStatus.DELIVERED, connection.connection_id,
                        now, self.collector.last_finalize)
