"""Behaviour of the injected script in the visitor's browser.

Decides whether the script runs at all (the paper's §3.1 error model) and,
when it does, what it observes: the page URL, the UA, and the pointer
interactions generated while the ad is exposed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.adnetwork.server import DeliveredImpression
from repro.beacon.events import (
    BeaconObservation,
    InteractionEvent,
    InteractionKind,
)


@dataclass(frozen=True)
class BeaconScriptConfig:
    """Error-model and interaction knobs.

    ``browser_block_rate`` covers untrusted-JavaScript refusals by browser
    configuration or antivirus software; publisher-level iframe sandboxing
    is carried by ``Publisher.blocks_scripts``.  Together with connection
    loss these produce the ~16.5 % of publishers the paper's own dataset
    missed.
    """

    browser_block_rate: float = 0.015
    mouse_move_rate_per_second: float = 0.05
    human_click_rate: float = 0.003
    bot_click_rate: float = 0.06

    def __post_init__(self) -> None:
        for name in ("browser_block_rate", "human_click_rate", "bot_click_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.mouse_move_rate_per_second < 0:
            raise ValueError("mouse_move_rate_per_second must be non-negative")


class BeaconScript:
    """Simulates one execution of the injected JavaScript."""

    def __init__(self, config: BeaconScriptConfig | None = None) -> None:
        self.config = config or BeaconScriptConfig()
        self.blocked_by_publisher = 0
        self.blocked_by_browser = 0

    def observe(self, impression: DeliveredImpression,
                rng: random.Random) -> Optional[BeaconObservation]:
        """What the script reports for *impression* — or None if it never ran.

        Two blocking layers: the publisher sandboxes third-party scripts
        (nothing injected can execute there at all), or this particular
        browser/antivirus refuses the untrusted code.
        """
        publisher = impression.pageview.publisher
        if publisher.blocks_scripts:
            self.blocked_by_publisher += 1
            return None
        if rng.random() < self.config.browser_block_rate:
            self.blocked_by_browser += 1
            return None
        exposure = impression.exposure.exposure_seconds
        interactions = self._interactions(impression, exposure, rng)
        # Inside a SafeFrame the geometry API tells the script whether the
        # creative's pixels entered the viewport; everywhere else the
        # Same-Origin Policy leaves that unknown.
        pixels = impression.exposure.pixels_in_view if publisher.safeframe \
            else None
        return BeaconObservation(
            campaign_id=impression.campaign.campaign_id,
            creative_id=impression.campaign.creative_id,
            page_url=impression.pageview.url,
            user_agent=impression.pageview.user_agent,
            interactions=interactions,
            exposure_seconds=exposure,
            pixels_in_view=pixels,
        )

    def _interactions(self, impression: DeliveredImpression, exposure: float,
                      rng: random.Random) -> tuple[InteractionEvent, ...]:
        if exposure <= 0:
            return ()
        config = self.config
        events: list[InteractionEvent] = []
        is_bot = impression.pageview.is_bot
        # Mouse movement over the creative: humans wander, click-fraud bots
        # move synthetically straight to the ad.
        rate = config.mouse_move_rate_per_second * (2.0 if is_bot else 1.0)
        expected_moves = rate * exposure
        move_count = min(50, int(expected_moves) +
                         (1 if rng.random() < expected_moves % 1 else 0))
        for _ in range(move_count):
            events.append(InteractionEvent(
                kind=InteractionKind.MOUSE_MOVE,
                offset_seconds=rng.uniform(0.0, exposure)))
        click_rate = config.bot_click_rate if is_bot else config.human_click_rate
        if rng.random() < click_rate:
            events.append(InteractionEvent(
                kind=InteractionKind.CLICK,
                offset_seconds=rng.uniform(0.0, exposure)))
        events.sort(key=lambda event: event.offset_seconds)
        return tuple(events)
