"""What the injected script can observe inside its iframe.

The Same-Origin Policy (paper §3.1) bounds this list: the script sees its
own iframe's URL context, the User-Agent, and pointer events over the ad —
nothing about the surrounding page, the upstream referrer, or the iframe's
position on screen.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class InteractionKind(enum.Enum):
    """Pointer interactions the script listens for."""

    MOUSE_MOVE = "mousemove"
    CLICK = "click"


@dataclass(frozen=True)
class InteractionEvent:
    """One pointer event, timed relative to the ad's render instant."""

    kind: InteractionKind
    offset_seconds: float

    def __post_init__(self) -> None:
        if self.offset_seconds < 0:
            raise ValueError("offset_seconds must be non-negative")


@dataclass(frozen=True)
class BeaconObservation:
    """Everything the script will report for one impression.

    ``page_url`` is what the script reads from its execution context —
    the creative's page URL, whose domain identifies the publisher.
    """

    campaign_id: str
    creative_id: str
    page_url: str
    user_agent: str
    interactions: tuple[InteractionEvent, ...]
    exposure_seconds: float
    #: Pixel visibility, measurable only inside SafeFrame-style iframes;
    #: None when the Same-Origin Policy hides the geometry (paper S3.1).
    pixels_in_view: Optional[bool] = None

    def __post_init__(self) -> None:
        if not self.campaign_id or not self.creative_id:
            raise ValueError("campaign and creative ids must be non-empty")
        if not self.page_url:
            raise ValueError("page_url must be non-empty")
        if self.exposure_seconds < 0:
            raise ValueError("exposure_seconds must be non-negative")
        for event in self.interactions:
            if event.offset_seconds > self.exposure_seconds:
                raise ValueError("interaction after page unload")

    @property
    def mouse_moves(self) -> int:
        return sum(1 for event in self.interactions
                   if event.kind is InteractionKind.MOUSE_MOVE)

    @property
    def clicks(self) -> int:
        return sum(1 for event in self.interactions
                   if event.kind is InteractionKind.CLICK)
