"""The injected-JavaScript beacon (simulated).

The paper's core instrument: a light script inside the HTML5 creative that
opens a WebSocket to the central collector, reports the page URL, the
User-Agent and user interactions, and whose connection lifetime measures
the ad's exposure time.  This package simulates the script's behaviour in
the visitor's browser — including the environments where it never runs
(script-blocking publishers, restrictive browsers/antivirus).
"""

from repro.beacon.events import InteractionEvent, InteractionKind, BeaconObservation
from repro.beacon.script import BeaconScript, BeaconScriptConfig

__all__ = [
    "InteractionEvent",
    "InteractionKind",
    "BeaconObservation",
    "BeaconScript",
    "BeaconScriptConfig",
    "BeaconClient",
    "BeaconDelivery",
]


def __getattr__(name: str):
    # BeaconClient pulls in the collector's wire format, whose module in
    # turn needs repro.beacon.events — importing it lazily breaks the cycle
    # while keeping ``from repro.beacon import BeaconClient`` working.
    if name in ("BeaconClient", "BeaconDelivery"):
        from repro.beacon import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
