"""adaudit — independent auditing of online display advertising campaigns.

A faithful reproduction of Callejo et al., *Independent Auditing of Online
Display Advertising Campaigns* (HotNets-XV, 2016): the beacon-based
collection pipeline, the six audit analyses, and — because the original
study needs live paid campaigns — a complete synthetic ad ecosystem
(publishers, users, bots, a GDN-like ad network with vendor reporting) to
run them against.

Quick start::

    from repro import paper_experiment, ExperimentRunner, full_audit

    result = ExperimentRunner(paper_experiment(scale=0.05)).run()
    print(full_audit(result.dataset).render())

Subpackage map:

===================  ====================================================
``repro.audit``      the paper's contribution: the six audit analyses
``repro.beacon``     the injected-script simulation and WebSocket client
``repro.collector``  the central server, wire format, impression store
``repro.adnetwork``  the vendor under audit (serving, reporting, billing)
``repro.web``        publishers, ranking, users, bots, browsing
``repro.geo``        IP intelligence (MaxMind-like DB, deny list, cascade)
``repro.taxonomy``   topic ontology + Leacock–Chodorow similarity
``repro.net``        IPv4/CIDR, LPM trie, RFC 6455 WebSocket, transport
``repro.experiments`` Table 1 configuration, runner, tables & figures
===================  ====================================================
"""

from repro.audit import (
    AuditDataset,
    BrandSafetyAudit,
    ContextAudit,
    FraudAudit,
    FrequencyAudit,
    PopularityAudit,
    ReconciliationAudit,
    ViewabilityAudit,
    full_audit,
)
from repro.adnetwork import CampaignSpec
from repro.collector import ImpressionRecord, ImpressionStore
from repro.experiments import (
    ExperimentConfig,
    ExperimentRunner,
    ExperimentResult,
    paper_experiment,
    run_paper_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "AuditDataset",
    "BrandSafetyAudit",
    "ContextAudit",
    "FraudAudit",
    "FrequencyAudit",
    "PopularityAudit",
    "ReconciliationAudit",
    "ViewabilityAudit",
    "full_audit",
    "CampaignSpec",
    "ImpressionRecord",
    "ImpressionStore",
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentResult",
    "paper_experiment",
    "run_paper_experiment",
    "__version__",
]
