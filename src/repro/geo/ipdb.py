"""MaxMind-style IP intelligence database.

Maps any IPv4 address to its owning provider, country, and coarse kind via
longest-prefix-match over the registry's allocations.  This is the first
stage of the paper's data-center detection cascade ("First, we used MaxMind
to map each IP address in our dataset to its associated provider").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geo.providers import Provider, ProviderKind, ProviderRegistry
from repro.net.cidrtrie import CidrTrie
from repro.util import hotpath

#: Bound on the per-database answer memo; a full-scale world sees a few
#: hundred thousand distinct addresses, so the table is cleared (not
#: LRU-evicted — lookups are uniform enough that simple works) on
#: overflow rather than growing without limit.
_MAX_CACHED_LOOKUPS = 1 << 17


@dataclass(frozen=True)
class IpRecord:
    """The database's answer for one address."""

    ip: str
    provider: str
    country: str
    kind: ProviderKind

    @property
    def looks_hosted(self) -> bool:
        """True when the owning space is data-center or VPN allocated."""
        return self.kind in (ProviderKind.DATACENTER, ProviderKind.VPN)


class GeoIpDatabase:
    """Longest-prefix-match database over provider allocations.

    >>> import random
    >>> registry = ProviderRegistry(random.Random(7))
    >>> db = GeoIpDatabase(registry)
    >>> record = db.lookup(registry.providers[0].blocks[0].nth(5))
    >>> record.provider == registry.providers[0].name
    True
    """

    def __init__(self, registry: ProviderRegistry) -> None:
        self.registry = registry
        self._trie: CidrTrie[Provider] = CidrTrie()
        for provider in registry.providers:
            for block in provider.blocks:
                self._trie.insert(block, provider)
        # ip → (provider, record) memo.  The database is immutable after
        # construction and lookups repeat heavily (one per pageview for
        # geo targeting, again per record during enrichment), so answers
        # are cached whole.
        self._answer_cache: dict[
            str, tuple[Optional[Provider], Optional[IpRecord]]] = {}

    def __len__(self) -> int:
        return len(self._trie)

    def _answer(self, ip: str) -> tuple[Optional[Provider], Optional[IpRecord]]:
        try:
            return self._answer_cache[ip]
        except KeyError:
            pass
        if len(self._answer_cache) >= _MAX_CACHED_LOOKUPS:
            self._answer_cache.clear()
        provider = self._trie.lookup(ip)
        record = None if provider is None else IpRecord(
            ip=ip, provider=provider.name,
            country=provider.country, kind=provider.kind)
        self._answer_cache[ip] = (provider, record)
        return provider, record

    def lookup(self, ip: str) -> Optional[IpRecord]:
        """Resolve *ip*; None when the address is unallocated space."""
        if hotpath._REFERENCE:
            return self.lookup_uncached(ip)
        return self._answer(ip)[1]

    def lookup_uncached(self, ip: str) -> Optional[IpRecord]:
        """Reference longest-prefix-match walk (the equivalence oracle)."""
        provider = self._trie.lookup(ip)
        if provider is None:
            return None
        return IpRecord(ip=ip, provider=provider.name,
                        country=provider.country, kind=provider.kind)

    def provider_of(self, ip: str) -> Optional[Provider]:
        """The full provider object owning *ip*, if any."""
        if hotpath._REFERENCE:
            return self._trie.lookup(ip)
        return self._answer(ip)[0]

    def country_of(self, ip: str) -> Optional[str]:
        """Country code for *ip* (geo-targeting uses this)."""
        record = self.lookup(ip)
        return record.country if record else None
