"""MaxMind-style IP intelligence database.

Maps any IPv4 address to its owning provider, country, and coarse kind via
longest-prefix-match over the registry's allocations.  This is the first
stage of the paper's data-center detection cascade ("First, we used MaxMind
to map each IP address in our dataset to its associated provider").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geo.providers import Provider, ProviderKind, ProviderRegistry
from repro.net.cidrtrie import CidrTrie


@dataclass(frozen=True)
class IpRecord:
    """The database's answer for one address."""

    ip: str
    provider: str
    country: str
    kind: ProviderKind

    @property
    def looks_hosted(self) -> bool:
        """True when the owning space is data-center or VPN allocated."""
        return self.kind in (ProviderKind.DATACENTER, ProviderKind.VPN)


class GeoIpDatabase:
    """Longest-prefix-match database over provider allocations.

    >>> import random
    >>> registry = ProviderRegistry(random.Random(7))
    >>> db = GeoIpDatabase(registry)
    >>> record = db.lookup(registry.providers[0].blocks[0].nth(5))
    >>> record.provider == registry.providers[0].name
    True
    """

    def __init__(self, registry: ProviderRegistry) -> None:
        self.registry = registry
        self._trie: CidrTrie[Provider] = CidrTrie()
        for provider in registry.providers:
            for block in provider.blocks:
                self._trie.insert(block, provider)

    def __len__(self) -> int:
        return len(self._trie)

    def lookup(self, ip: str) -> Optional[IpRecord]:
        """Resolve *ip*; None when the address is unallocated space."""
        provider = self._trie.lookup(ip)
        if provider is None:
            return None
        return IpRecord(ip=ip, provider=provider.name,
                        country=provider.country, kind=provider.kind)

    def provider_of(self, ip: str) -> Optional[Provider]:
        """The full provider object owning *ip*, if any."""
        return self._trie.lookup(ip)

    def country_of(self, ip: str) -> Optional[str]:
        """Country code for *ip* (geo-targeting uses this)."""
        record = self.lookup(ip)
        return record.country if record else None
