"""Three-stage data-center classification cascade (paper §4.2).

1. **ipdb** — resolve the IP to its provider via the MaxMind-style DB.
2. **denylist** — is the address inside the published deny-hosting list?
3. **manual** — for remaining addresses, "manually verify the website of
   its associated provider to assess whether it offered a Data Center
   service": modelled by the provider's ``advertises_hosting`` flag.

VPN providers are the deliberate exception: their space is hosted but the
industry guidance does not count it as invalid traffic, and their websites
advertise VPN service rather than hosting, so the cascade clears them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.geo.denylist import DenyList
from repro.geo.ipdb import GeoIpDatabase


class DcStage(enum.Enum):
    """Which cascade stage produced the verdict."""

    UNRESOLVED = "unresolved"
    DENYLIST = "denylist"
    MANUAL = "manual"
    CLEARED = "cleared"


@dataclass(frozen=True)
class DcVerdict:
    """Outcome of classifying one IP."""

    ip: str
    is_datacenter: bool
    stage: DcStage
    provider: Optional[str]

    def __bool__(self) -> bool:
        return self.is_datacenter


class DataCenterResolver:
    """Classify IPs as data-center traffic using the 3-stage cascade."""

    def __init__(self, ipdb: GeoIpDatabase, denylist: DenyList,
                 enable_denylist: bool = True,
                 enable_manual: bool = True) -> None:
        self.ipdb = ipdb
        self.denylist = denylist
        self.enable_denylist = enable_denylist
        self.enable_manual = enable_manual
        self.stage_counts: dict[DcStage, int] = {stage: 0 for stage in DcStage}

    def classify(self, ip: str) -> DcVerdict:
        """Run the cascade for one address and record stage statistics."""
        record = self.ipdb.lookup(ip)
        if record is None:
            verdict = DcVerdict(ip=ip, is_datacenter=False,
                                stage=DcStage.UNRESOLVED, provider=None)
            self.stage_counts[DcStage.UNRESOLVED] += 1
            return verdict
        if self.enable_denylist and self.denylist.covers(ip):
            verdict = DcVerdict(ip=ip, is_datacenter=True,
                                stage=DcStage.DENYLIST, provider=record.provider)
            self.stage_counts[DcStage.DENYLIST] += 1
            return verdict
        if self.enable_manual:
            provider = self.ipdb.provider_of(ip)
            if provider is not None and provider.advertises_hosting:
                verdict = DcVerdict(ip=ip, is_datacenter=True,
                                    stage=DcStage.MANUAL, provider=record.provider)
                self.stage_counts[DcStage.MANUAL] += 1
                return verdict
        verdict = DcVerdict(ip=ip, is_datacenter=False,
                            stage=DcStage.CLEARED, provider=record.provider)
        self.stage_counts[DcStage.CLEARED] += 1
        return verdict

    def is_datacenter(self, ip: str) -> bool:
        """Shorthand: just the boolean verdict."""
        return self.classify(ip).is_datacenter
