"""IP intelligence substrate.

Stands in for the external services the paper's fraud analysis consumes:
a MaxMind-style IP→provider/country database, a Botlab-style deny list of
data-center address space, and the three-stage classification cascade
(database lookup → deny list → manual provider verification) described in
§4.2 "Fraud Identification".
"""

from repro.geo.providers import Provider, ProviderKind, ProviderRegistry
from repro.geo.ipdb import GeoIpDatabase, IpRecord
from repro.geo.denylist import DenyList
from repro.geo.resolver import DataCenterResolver, DcVerdict

__all__ = [
    "Provider",
    "ProviderKind",
    "ProviderRegistry",
    "GeoIpDatabase",
    "IpRecord",
    "DenyList",
    "DataCenterResolver",
    "DcVerdict",
]
