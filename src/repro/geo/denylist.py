"""Botlab-style deny-hosting IP list.

The second stage of the detection cascade: a published list of CIDR blocks
belonging to major data-center providers.  Real-world lists are incomplete
— they cover the *top* providers — so the builder here takes a coverage
fraction; addresses in uncovered data-center space must be caught by the
third (manual verification) stage instead, exactly as in the paper.
"""

from __future__ import annotations

from typing import Iterable

from repro.geo.providers import ProviderRegistry
from repro.net.cidrtrie import CidrTrie
from repro.net.ipv4 import Cidr, parse_cidr


class DenyList:
    """Set of CIDR blocks with membership lookup."""

    def __init__(self, blocks: Iterable[Cidr | str] = ()) -> None:
        self._trie: CidrTrie[bool] = CidrTrie()
        self._count = 0
        for block in blocks:
            self.add(block)

    def add(self, block: Cidr | str) -> None:
        """Add one CIDR block to the list."""
        cidr = parse_cidr(block) if isinstance(block, str) else block
        self._trie.insert(cidr, True)
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def __contains__(self, ip: str) -> bool:
        return self._trie.covers(ip)

    def covers(self, ip: str) -> bool:
        """True if *ip* falls inside any listed block."""
        return self._trie.covers(ip)

    def address_count(self) -> int:
        """Total addresses the list spans (the paper's list spans >130M)."""
        return sum(cidr.size for cidr, _ in self._trie.items())

    @classmethod
    def from_registry(cls, registry: ProviderRegistry,
                      coverage: float = 0.7) -> "DenyList":
        """Compile a deny list covering the first *coverage* fraction of
        data-center providers (VPN space is intentionally excluded — the
        industry guidance exempts it)."""
        if not 0.0 <= coverage <= 1.0:
            raise ValueError("coverage must be within [0, 1]")
        providers = registry.datacenter_providers(include_vpn=False)
        covered = providers[: int(round(len(providers) * coverage))]
        deny = cls()
        for provider in covered:
            for block in provider.blocks:
                deny.add(block)
        return deny
