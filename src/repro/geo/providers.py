"""Synthetic registry of network providers and their address allocations.

The real study resolves IPs against MaxMind's ISP database and a list of
the top-100 data-center providers.  We synthesise an equivalent world:
residential/mobile ISPs per country and a global population of data-center
(cloud/hosting) providers, each owning disjoint CIDR blocks carved from a
deterministic allocation plan.

Allocation plan (all deterministic given the registry parameters):

* access ISPs draw /14 blocks from 2.0.0.0 upward,
* data-center providers draw /15 blocks from 128.0.0.0 upward,

so no two providers ever overlap and tests can reason about the layout.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.net.ipv4 import Cidr

_ACCESS_BASE = 2 << 24          # 2.0.0.0
_DATACENTER_BASE = 128 << 24    # 128.0.0.0
_ACCESS_PREFIX = 14
_DATACENTER_PREFIX = 15


class ProviderKind(enum.Enum):
    """Coarse provider taxonomy the audit distinguishes."""

    ISP = "isp"
    MOBILE = "mobile"
    DATACENTER = "datacenter"
    VPN = "vpn"   # data-center space legitimately serving end users


@dataclass(frozen=True)
class Provider:
    """One provider and its address space.

    ``advertises_hosting`` models what the paper's manual verification step
    finds on the provider's website; it is true for data-center providers
    and false for VPN services (the exception §4.2 calls out).
    """

    name: str
    kind: ProviderKind
    country: str
    blocks: tuple[Cidr, ...]
    advertises_hosting: bool = False

    @property
    def is_datacenter_space(self) -> bool:
        """True when the space is hosted (data center or VPN-on-DC)."""
        return self.kind in (ProviderKind.DATACENTER, ProviderKind.VPN)

    def random_ip(self, rng: random.Random) -> str:
        """A uniformly random address from this provider's space."""
        block = rng.choice(self.blocks)
        return block.nth(rng.randrange(block.size))


_COUNTRY_ISP_NAMES = {
    "ES": ["Telefonica de Espana", "Orange Espana", "Vodafone ES", "Jazztel",
           "Euskaltel", "R Cable"],
    "RU": ["Rostelecom", "MTS PJSC", "VimpelCom", "ER-Telecom", "TTK"],
    "US": ["Comcast Cable", "AT&T Internet", "Verizon Fios", "Charter",
           "CenturyLink", "Cox Communications"],
}

_DATACENTER_NAME_STEMS = [
    "NimbusCompute", "StratoHost", "IronRack", "BlueFjord", "QuantumColo",
    "PacketBarn", "VoltServers", "DeepGrid", "ApexNode", "TerraCloud",
]


class ProviderRegistry:
    """Generates and indexes the synthetic provider world.

    Parameters
    ----------
    rng:
        Source of randomness (names/shuffling only; allocations are
        positional and therefore stable under insertion order).
    countries:
        ISO codes to create access ISPs for.
    datacenter_count:
        Number of data-center providers (the paper's list covers the top
        100 worldwide).
    vpn_fraction:
        Fraction of data-center providers that are actually VPN services —
        hosted space the industry does *not* count as invalid traffic.
    """

    def __init__(self, rng: random.Random,
                 countries: tuple[str, ...] = ("ES", "RU", "US"),
                 isps_per_country: int = 4,
                 blocks_per_isp: int = 2,
                 datacenter_count: int = 100,
                 blocks_per_datacenter: int = 2,
                 vpn_fraction: float = 0.06) -> None:
        if isps_per_country < 1 or datacenter_count < 1:
            raise ValueError("must create at least one provider of each class")
        if not 0.0 <= vpn_fraction < 1.0:
            raise ValueError("vpn_fraction must be within [0, 1)")
        self.providers: list[Provider] = []
        self._by_name: dict[str, Provider] = {}
        next_access = _ACCESS_BASE
        for country in countries:
            names = list(_COUNTRY_ISP_NAMES.get(country, []))
            while len(names) < isps_per_country:
                names.append(f"{country} Access Networks {len(names) + 1}")
            for index in range(isps_per_country):
                blocks = []
                for _ in range(blocks_per_isp):
                    blocks.append(Cidr(next_access, _ACCESS_PREFIX))
                    next_access += 1 << (32 - _ACCESS_PREFIX)
                kind = ProviderKind.MOBILE if index == isps_per_country - 1 \
                    else ProviderKind.ISP
                self._add(Provider(
                    name=names[index],
                    kind=kind,
                    country=country,
                    blocks=tuple(blocks),
                ))
        next_dc = _DATACENTER_BASE
        vpn_count = int(round(datacenter_count * vpn_fraction))
        for index in range(datacenter_count):
            stem = _DATACENTER_NAME_STEMS[index % len(_DATACENTER_NAME_STEMS)]
            name = f"{stem} {index // len(_DATACENTER_NAME_STEMS) + 1}"
            blocks = []
            for _ in range(blocks_per_datacenter):
                blocks.append(Cidr(next_dc, _DATACENTER_PREFIX))
                next_dc += 1 << (32 - _DATACENTER_PREFIX)
            is_vpn = index >= datacenter_count - vpn_count
            country = rng.choice(("US", "DE", "NL", "RU", "ES", "FR"))
            self._add(Provider(
                name=f"{name} VPN" if is_vpn else name,
                kind=ProviderKind.VPN if is_vpn else ProviderKind.DATACENTER,
                country=country,
                blocks=tuple(blocks),
                advertises_hosting=not is_vpn,
            ))

    def _add(self, provider: Provider) -> None:
        if provider.name in self._by_name:
            raise ValueError(f"duplicate provider name: {provider.name}")
        self.providers.append(provider)
        self._by_name[provider.name] = provider

    def __len__(self) -> int:
        return len(self.providers)

    def by_name(self, name: str) -> Provider:
        """Look a provider up by exact name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown provider: {name!r}") from None

    def access_providers(self, country: str) -> list[Provider]:
        """Residential + mobile ISPs registered for *country*."""
        return [provider for provider in self.providers
                if provider.country == country
                and provider.kind in (ProviderKind.ISP, ProviderKind.MOBILE)]

    def datacenter_providers(self, include_vpn: bool = True) -> list[Provider]:
        """All providers whose space is hosted."""
        kinds = {ProviderKind.DATACENTER, ProviderKind.VPN} if include_vpn \
            else {ProviderKind.DATACENTER}
        return [provider for provider in self.providers if provider.kind in kinds]

    def describe(self) -> str:
        """Short human-readable inventory (used by examples)."""
        lines = []
        for provider in self.providers:
            blocks = ", ".join(str(block) for block in provider.blocks)
            lines.append(f"{provider.name} [{provider.kind.value}, "
                         f"{provider.country}] {blocks}")
        return "\n".join(lines)
