"""Plain-text table rendering for experiment outputs.

The benchmark harness prints the same rows the paper's tables report; this
module renders them as aligned ASCII so the output is directly comparable
to the paper (and diff-able between runs).
"""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "",
                 right_align: Sequence[int] = ()) -> str:
    """Render rows as an aligned ASCII table.

    All cells are stringified; column widths fit the widest cell.  Raises if
    any row length disagrees with the header length, which catches analysis
    bugs early rather than mis-aligning output.

    *right_align* lists column indices to right-justify (headers included)
    so numeric columns line up on the decimal point; the default keeps
    every column left-aligned, preserving existing golden outputs.
    """
    cells = [[str(cell) for cell in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}")
    righted = set(right_align)
    if not all(0 <= index < len(headers) for index in righted):
        raise ValueError(
            f"right_align indices {sorted(righted)!r} out of range for "
            f"{len(headers)} columns")
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def fmt(row: Sequence[str]) -> str:
        return " | ".join(
            cell.rjust(width) if index in righted else cell.ljust(width)
            for index, (cell, width) in enumerate(zip(row, widths)))

    rule = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append(rule)
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_series(name: str, xs: Sequence[object], ys: Sequence[object]) -> str:
    """Render an (x, y) figure series as two aligned columns."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    rows = [(x, y) for x, y in zip(xs, ys)]
    return render_table(["x", name], rows)
