"""Hashing helpers: stable identifiers and IP anonymisation.

The paper stores raw IPs only transiently: meta-data (ISP, country,
data-center status) is extracted first and the address is then anonymised
"using hashing techniques".  We reproduce that with a salted SHA-256 whose
salt is campaign-scoped, so the same device is linkable *within* a campaign
dataset but not across datasets.
"""

from __future__ import annotations

import hashlib


def stable_hash(*parts: str, bits: int = 64) -> int:
    """Deterministic integer hash of the given string parts.

    Unlike the builtin ``hash``, the result is stable across processes
    (``PYTHONHASHSEED`` does not affect it), which the simulation relies on
    for reproducible identifier assignment.
    """
    if bits <= 0 or bits > 256 or bits % 8 != 0:
        raise ValueError("bits must be a positive multiple of 8, at most 256")
    joined = "\x1f".join(parts)
    digest = hashlib.sha256(joined.encode("utf-8")).digest()
    return int.from_bytes(digest[: bits // 8], "big")


def anonymize_ip(ip: str, salt: str = "") -> str:
    """One-way anonymisation of an IP address.

    Returns a 16-hex-character token.  Identical (ip, salt) pairs map to the
    same token, so per-user analyses (frequency capping) still work on the
    anonymised dataset; different salts unlink datasets from each other.
    """
    if not ip:
        raise ValueError("ip must be non-empty")
    digest = hashlib.sha256(f"{salt}|{ip}".encode("utf-8")).hexdigest()
    return digest[:16]
