"""Hashing helpers: stable identifiers and IP anonymisation.

The paper stores raw IPs only transiently: meta-data (ISP, country,
data-center status) is extracted first and the address is then anonymised
"using hashing techniques".  We reproduce that with a salted SHA-256 whose
salt is campaign-scoped, so the same device is linkable *within* a campaign
dataset but not across datasets.

Both helpers are per-impression hot paths (every trace id, every user-key
derivation, every enrichment pass goes through them), so repeated call
prefixes — the ``(seed, scope)`` pair of a shard's trace ids, the salt of
an anonymisation pass — are interned as partially-fed SHA-256 states:
one :meth:`~hashlib._Hash.copy` plus the suffix update replaces the full
join + hash per call.  SHA-256 state copying is exact, so the digests are
byte-identical to the reference single-shot computation; the equivalence
tests pin that.
"""

from __future__ import annotations

import hashlib

from repro.util import hotpath

#: Bound on each intern table; reached only by pathological workloads
#: (the shard scopes and salts of one experiment number in the dozens),
#: at which point the table is simply dropped and rebuilt.
_MAX_INTERNED = 4096

_PREFIX_STATES: dict[tuple[str, ...], "hashlib._Hash"] = {}
_SALT_STATES: dict[str, "hashlib._Hash"] = {}


def stable_hash_reference(*parts: str, bits: int = 64) -> int:
    """Reference single-shot implementation of :func:`stable_hash`."""
    if bits <= 0 or bits > 256 or bits % 8 != 0:
        raise ValueError("bits must be a positive multiple of 8, at most 256")
    joined = "\x1f".join(parts)
    digest = hashlib.sha256(joined.encode("utf-8")).digest()
    return int.from_bytes(digest[: bits // 8], "big")


def stable_hash(*parts: str, bits: int = 64) -> int:
    """Deterministic integer hash of the given string parts.

    Unlike the builtin ``hash``, the result is stable across processes
    (``PYTHONHASHSEED`` does not affect it), which the simulation relies on
    for reproducible identifier assignment.

    Calls sharing every part but the last (trace ids vary only in the
    impression id, for one shard) reuse an interned hasher pre-fed with
    the prefix; UTF-8 is concatenative, so feeding the suffix into a copy
    of that state yields the identical digest.
    """
    if hotpath._REFERENCE or len(parts) < 2:
        return stable_hash_reference(*parts, bits=bits)
    if bits <= 0 or bits > 256 or bits % 8 != 0:
        raise ValueError("bits must be a positive multiple of 8, at most 256")
    prefix = parts[:-1]
    state = _PREFIX_STATES.get(prefix)
    if state is None:
        if len(_PREFIX_STATES) >= _MAX_INTERNED:
            _PREFIX_STATES.clear()
        state = hashlib.sha256(
            ("\x1f".join(prefix) + "\x1f").encode("utf-8"))
        _PREFIX_STATES[prefix] = state
    hasher = state.copy()
    hasher.update(parts[-1].encode("utf-8"))
    return int.from_bytes(hasher.digest()[: bits // 8], "big")


def anonymize_ip_reference(ip: str, salt: str = "") -> str:
    """Reference single-shot implementation of :func:`anonymize_ip`."""
    if not ip:
        raise ValueError("ip must be non-empty")
    digest = hashlib.sha256(f"{salt}|{ip}".encode("utf-8")).hexdigest()
    return digest[:16]


def anonymize_ip(ip: str, salt: str = "") -> str:
    """One-way anonymisation of an IP address.

    Returns a 16-hex-character token.  Identical (ip, salt) pairs map to the
    same token, so per-user analyses (frequency capping) still work on the
    anonymised dataset; different salts unlink datasets from each other.

    An anonymisation pass hashes the whole dataset under one salt, so the
    ``{salt}|`` prefix is interned as a partially-fed hasher state and only
    the address bytes are fed per call.
    """
    if hotpath._REFERENCE:
        return anonymize_ip_reference(ip, salt=salt)
    if not ip:
        raise ValueError("ip must be non-empty")
    state = _SALT_STATES.get(salt)
    if state is None:
        if len(_SALT_STATES) >= _MAX_INTERNED:
            _SALT_STATES.clear()
        state = hashlib.sha256(f"{salt}|".encode("utf-8"))
        _SALT_STATES[salt] = state
    hasher = state.copy()
    hasher.update(ip.encode("utf-8"))
    return hasher.hexdigest()[:16]
