"""Deterministic random-number streams.

Every stochastic component in the simulation draws from a *named* child
stream of a single master seed.  This keeps runs bit-for-bit reproducible
while letting independent components (publisher generation, user browsing,
network loss, ...) consume randomness without perturbing each other:
adding draws to one stream never changes the values another stream yields.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class RngFactory:
    """Factory of independent, named ``random.Random`` streams.

    >>> factory = RngFactory(seed=2016)
    >>> a = factory.stream("publishers")
    >>> b = factory.stream("users")
    >>> a is factory.stream("publishers")
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RngFactory":
        """Derive a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}/fork:{name}".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "big"))


def zipf_weights(n: int, exponent: float = 1.0) -> list[float]:
    """Unnormalised Zipf weights ``1/rank**exponent`` for ranks 1..n.

    Used to model publisher popularity: rank-1 sites attract vastly more
    pageviews than the long tail.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    return [1.0 / (rank ** exponent) for rank in range(1, n + 1)]


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with probability proportional to its weight.

    Thin wrapper over ``random.Random.choices`` that validates its inputs —
    ``choices`` silently misbehaves on empty or mismatched sequences.
    """
    if not items:
        raise ValueError("items must be non-empty")
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    return rng.choices(items, weights=weights, k=1)[0]


class CumulativeSampler:
    """Repeated weighted sampling with O(log n) draws.

    Precomputes the cumulative weight table once; much faster than
    ``random.Random.choices`` when the same distribution is sampled
    millions of times (pageview generation does exactly that).
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if not weights:
            raise ValueError("weights must be non-empty")
        total = 0.0
        self._cumulative: list[float] = []
        for weight in weights:
            if weight < 0:
                raise ValueError("weights must be non-negative")
            total += weight
        if total <= 0:
            raise ValueError("total weight must be positive")
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        # Guard against floating point drift on the last bucket.
        self._cumulative[-1] = 1.0

    def __len__(self) -> int:
        return len(self._cumulative)

    def sample(self, rng: random.Random) -> int:
        """Return an index drawn with probability proportional to weight."""
        import bisect

        return bisect.bisect_left(self._cumulative, rng.random())
