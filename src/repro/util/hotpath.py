"""Reference-mode switch for the optimized hot paths.

Every performance-sensitive function that was rewritten for speed keeps
its original ("reference") implementation alongside the optimized one,
and consults this module to decide which to run.  The contract is that
both produce byte-identical outputs; the reference paths exist so that

* equivalence tests can pin the optimized implementations against the
  originals on the same inputs, and
* ``python -m repro bench`` can measure the end-to-end speedup by
  running the identical scenario once per mode.

The mode is process-global.  It initialises from the
``REPRO_REFERENCE_HOTPATH`` environment variable (any value other than
empty or ``0`` enables reference mode) so a whole subprocess can be
flipped without touching code, and can be toggled at runtime with
:func:`set_reference_mode` / :func:`reference_hotpaths`.

Hot functions read the module-level ``_REFERENCE`` flag directly — one
attribute lookup per call — so toggling affects already-imported
modules immediately.
"""

from __future__ import annotations

import contextlib
import os
from typing import Iterator

_REFERENCE: bool = os.environ.get("REPRO_REFERENCE_HOTPATH", "") not in ("", "0")


def reference_mode() -> bool:
    """True when the slow reference implementations are active."""
    return _REFERENCE


def set_reference_mode(enabled: bool) -> bool:
    """Switch reference mode on or off; returns the previous setting."""
    global _REFERENCE
    previous = _REFERENCE
    _REFERENCE = bool(enabled)
    return previous


@contextlib.contextmanager
def reference_hotpaths(enabled: bool = True) -> Iterator[None]:
    """Context manager scoping a reference-mode switch to a block."""
    previous = set_reference_mode(enabled)
    try:
        yield
    finally:
        set_reference_mode(previous)
