"""Small statistics toolkit used across the audit analyses.

Implements exactly what the paper's analyses need — medians and percentiles
(frequency-cap inter-arrival times), logarithmic rank buckets (the Alexa
distribution of Figure 2), and two-decimal fraction formatting for the
tables — without pulling in numpy for the core library.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence (average of middle pair when even)."""
    if not values:
        raise ValueError("median of empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    weight = position - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


def log_buckets(max_value: int, base: int = 10, first_edge: int = 100) -> list[int]:
    """Logarithmic bucket edges ``[first_edge, first_edge*base, ...]``.

    The paper buckets Alexa ranks logarithmically; with the defaults this
    yields edges 100, 1K, 10K, 100K, ... up to (and covering) *max_value*.
    The returned edges are upper bounds: bucket *i* holds values in
    ``(edges[i-1], edges[i]]`` and bucket 0 holds ``[1, edges[0]]``.
    """
    if max_value <= 0:
        raise ValueError("max_value must be positive")
    if base < 2:
        raise ValueError("base must be at least 2")
    if first_edge < 1:
        raise ValueError("first_edge must be at least 1")
    edges = [first_edge]
    while edges[-1] < max_value:
        edges.append(edges[-1] * base)
    return edges


def bucket_index(value: int, edges: Sequence[int],
                 clamp: bool = False) -> int:
    """Index of the log bucket containing *value*.

    A value above the last edge is an *error* by default: silently folding
    it into the last bucket would misreport the distribution's tail (the
    last bucket would quietly absorb out-of-range mass).  Callers that
    genuinely want open-ended top buckets opt in with ``clamp=True``.
    """
    if value < 1:
        raise ValueError("value must be at least 1")
    if not edges:
        raise ValueError("edges must be non-empty")
    for index, edge in enumerate(edges):
        if value <= edge:
            return index
    if clamp:
        return len(edges) - 1
    raise ValueError(
        f"value {value} exceeds the last bucket edge {edges[-1]}")


def histogram(values: Iterable[int], edges: Sequence[int],
              clamp: bool = False) -> list[int]:
    """Counts of *values* per log bucket defined by *edges*.

    Raises :class:`ValueError` on values above the last edge unless
    ``clamp=True`` folds them into the last bucket.
    """
    counts = [0] * len(edges)
    for value in values:
        counts[bucket_index(value, edges, clamp=clamp)] += 1
    return counts


def cumulative_fractions(counts: Sequence[int]) -> list[float]:
    """Running cumulative share of each bucket (last entry is 1.0)."""
    total = sum(counts)
    if total == 0:
        return [0.0] * len(counts)
    fractions = []
    running = 0
    for count in counts:
        running += count
        fractions.append(running / total)
    return fractions


class Fraction2:
    """A ratio rendered as a two-decimal percentage — the papers' table unit.

    Keeps numerator/denominator so downstream code can re-aggregate, while
    ``str()`` gives the display form (``'57.00 %'``).
    """

    def __init__(self, numerator: int, denominator: int) -> None:
        if denominator < 0 or numerator < 0:
            raise ValueError("counts must be non-negative")
        if numerator > denominator:
            raise ValueError("numerator cannot exceed denominator")
        self.numerator = numerator
        self.denominator = denominator

    @property
    def value(self) -> float:
        """The ratio as a float in [0, 1]; 0.0 when the denominator is 0."""
        if self.denominator == 0:
            return 0.0
        return self.numerator / self.denominator

    @property
    def pct(self) -> float:
        """The ratio as a percentage in [0, 100]."""
        return 100.0 * self.value

    def __str__(self) -> str:
        return f"{self.pct:.2f} %"

    def __repr__(self) -> str:
        return f"Fraction2({self.numerator}/{self.denominator} = {self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Fraction2):
            return NotImplemented
        return (self.numerator, self.denominator) == (other.numerator, other.denominator)

    def __hash__(self) -> int:
        return hash((self.numerator, self.denominator))
