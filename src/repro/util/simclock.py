"""Simulated wall clock.

The whole pipeline — browsing sessions, ad deliveries, beacon connections,
collector timestamps — shares one logical clock measured in UNIX seconds.
The collector stamps impressions with *its* local time at connection
establishment, exactly as the paper's Node.js server does, so the clock also
models a (small, configurable) skew between client and server.
"""

from __future__ import annotations

import datetime as _dt


class SimClock:
    """A monotonically advancing simulated UNIX clock.

    >>> clock = SimClock.at_utc(2016, 3, 29)
    >>> start = clock.now()
    >>> clock.advance(60.0)
    >>> clock.now() - start
    60.0
    """

    def __init__(self, start_unix: float = 0.0, server_skew: float = 0.0) -> None:
        if start_unix < 0:
            raise ValueError("start_unix must be non-negative")
        self._now = float(start_unix)
        self.server_skew = float(server_skew)

    @classmethod
    def at_utc(cls, year: int, month: int, day: int,
               hour: int = 0, minute: int = 0, second: int = 0,
               server_skew: float = 0.0) -> "SimClock":
        """Build a clock starting at the given UTC calendar instant."""
        moment = _dt.datetime(year, month, day, hour, minute, second,
                              tzinfo=_dt.timezone.utc)
        return cls(moment.timestamp(), server_skew=server_skew)

    def now(self) -> float:
        """Current simulated UNIX time (client perspective)."""
        return self._now

    def server_now(self) -> float:
        """Current simulated UNIX time as seen by the central server."""
        return self._now + self.server_skew

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new time."""
        if seconds < 0:
            raise ValueError("cannot move the clock backwards")
        self._now += seconds
        return self._now

    def advance_to(self, unix_time: float) -> float:
        """Jump forward to *unix_time* (no-op if already past it)."""
        if unix_time > self._now:
            self._now = unix_time
        return self._now

    def isoformat(self) -> str:
        """Human-readable UTC rendering of the current instant."""
        moment = _dt.datetime.fromtimestamp(self._now, tz=_dt.timezone.utc)
        return moment.isoformat()
