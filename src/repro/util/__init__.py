"""Shared utilities: seeded RNG streams, simulated clock, hashing, statistics.

These are deliberately dependency-free so every other subpackage can build
on them without import cycles.
"""

from repro.util.rng import RngFactory, zipf_weights, weighted_choice
from repro.util.simclock import SimClock
from repro.util import hotpath
from repro.util.hashing import anonymize_ip, stable_hash
from repro.util.hotpath import reference_hotpaths, reference_mode, set_reference_mode
from repro.util.stats import (
    median,
    percentile,
    log_buckets,
    bucket_index,
    Fraction2,
)

__all__ = [
    "hotpath",
    "reference_hotpaths",
    "reference_mode",
    "set_reference_mode",
    "RngFactory",
    "zipf_weights",
    "weighted_choice",
    "SimClock",
    "anonymize_ip",
    "stable_hash",
    "median",
    "percentile",
    "log_buckets",
    "bucket_index",
    "Fraction2",
]
