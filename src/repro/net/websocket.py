"""RFC 6455 WebSocket framing and opening handshake.

The paper's beacon ships its measurements to the collector over WebSocket
(reference [25], RFC 6455).  This module implements the wire format from
scratch: the HTTP/1.1 upgrade handshake with the Sec-WebSocket-Accept key
derivation, and full frame encode/decode with client-side masking, 7/16/64
bit payload lengths, fragmentation, and control frames.

Only what a beacon-to-collector pipeline needs is implemented — no
extensions, no subprotocol negotiation — but what is implemented follows
the RFC closely enough to interoperate at the byte level.
"""

from __future__ import annotations

import base64
import enum
import hashlib
import random
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import NULL_TRACER, Tracer
from repro.util import hotpath

#: RFC 6455 §1.3 — fixed GUID appended to the client key before hashing.
WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_MAX_CONTROL_PAYLOAD = 125

#: Default cap on a single frame's claimed payload length (1 MiB).  A peer
#: can claim up to 2**62 - 1 bytes in the header while sending none of
#: them; without a cap a streaming decoder would buffer forever waiting
#: for a payload that never arrives.
DEFAULT_MAX_FRAME_SIZE = 1 << 20


class WebSocketError(Exception):
    """Protocol violation while encoding, decoding, or handshaking."""


class Opcode(enum.IntEnum):
    """Frame opcodes defined by RFC 6455 §5.2."""

    CONTINUATION = 0x0
    TEXT = 0x1
    BINARY = 0x2
    CLOSE = 0x8
    PING = 0x9
    PONG = 0xA

    @property
    def is_control(self) -> bool:
        return self >= Opcode.CLOSE


@dataclass(frozen=True)
class Frame:
    """A decoded WebSocket frame."""

    opcode: Opcode
    payload: bytes
    fin: bool = True
    masked: bool = False

    def __post_init__(self) -> None:
        if self.opcode.is_control:
            if not self.fin:
                raise WebSocketError("control frames must not be fragmented")
            if len(self.payload) > _MAX_CONTROL_PAYLOAD:
                raise WebSocketError("control frame payload exceeds 125 bytes")

    @property
    def text(self) -> str:
        """Payload decoded as UTF-8 (the beacon sends text frames)."""
        try:
            return self.payload.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WebSocketError("invalid UTF-8 in text frame") from exc


def _apply_mask_reference(payload: bytes, mask: bytes) -> bytes:
    """Reference per-byte masking loop (RFC 6455 §5.3, written literally).

    Kept as the equivalence oracle for the bulk implementation below and
    as the baseline ``python -m repro bench`` measures against.
    """
    if len(mask) != 4:
        raise WebSocketError("mask key must be 4 bytes")
    return bytes(byte ^ mask[index % 4] for index, byte in enumerate(payload))


def _apply_mask(payload: bytes, mask: bytes) -> bytes:
    """XOR-mask (or unmask — the operation is its own inverse).

    The XOR runs as one arbitrary-precision integer operation: the
    4-byte key is tiled across the payload length and both sides are
    lifted to big-ints, so the per-byte work happens in C instead of a
    Python-level loop.  Byte-identical to the reference loop for every
    payload, including the empty one.
    """
    if hotpath._REFERENCE:
        return _apply_mask_reference(payload, mask)
    if len(mask) != 4:
        raise WebSocketError("mask key must be 4 bytes")
    length = len(payload)
    if length == 0:
        return b""
    tiled = (mask * ((length + 3) // 4))[:length]
    return (int.from_bytes(payload, "big")
            ^ int.from_bytes(tiled, "big")).to_bytes(length, "big")


def encode_frame(frame: Frame, mask_key: Optional[bytes] = None,
                 rng: Optional[random.Random] = None) -> bytes:
    """Serialise a frame to wire bytes.

    If ``frame.masked`` is true a 4-byte masking key is used — supplied via
    *mask_key* or drawn from *rng* (client-to-server frames MUST be masked
    per RFC 6455 §5.3; the simulated beacon always masks).  One of the two
    must be given for masked frames: falling back to the global ``random``
    module would silently break seed-determinism, which a reproduction
    repo cannot afford.
    """
    header = bytearray()
    header.append((0x80 if frame.fin else 0x00) | int(frame.opcode))
    length = len(frame.payload)
    mask_bit = 0x80 if frame.masked else 0x00
    if length <= 125:
        header.append(mask_bit | length)
    elif length <= 0xFFFF:
        header.append(mask_bit | 126)
        header += length.to_bytes(2, "big")
    else:
        header.append(mask_bit | 127)
        header += length.to_bytes(8, "big")
    if frame.masked:
        if mask_key is None:
            if rng is None:
                raise ValueError(
                    "masked frames need an explicit mask_key or rng; "
                    "implicit global randomness is not reproducible")
            mask_key = bytes(rng.getrandbits(8) for _ in range(4))
        if len(mask_key) != 4:
            raise WebSocketError("mask key must be 4 bytes")
        header += mask_key
        return bytes(header) + _apply_mask(frame.payload, mask_key)
    return bytes(header) + frame.payload


def decode_frame(data: "bytes | bytearray | memoryview",
                 max_frame_size: Optional[int] = None) -> tuple[Frame, int]:
    """Decode one frame from the head of *data*.

    Returns ``(frame, bytes_consumed)``.  Raises :class:`WebSocketError` on
    malformed input and ``IncompleteFrame`` (a subclass) when more bytes are
    needed — callers that stream should use :class:`FrameDecoder` instead.

    *data* may be any bytes-like object, including a :class:`memoryview`;
    the streaming decoder relies on that to avoid copying its buffer.
    When *max_frame_size* is set, a frame whose *claimed* payload length
    exceeds it is rejected immediately — before waiting for the payload.
    """
    if len(data) < 2:
        raise IncompleteFrame("need at least 2 header bytes")
    first, second = data[0], data[1]
    fin = bool(first & 0x80)
    if first & 0x70:
        raise WebSocketError("reserved bits set (no extensions negotiated)")
    try:
        opcode = Opcode(first & 0x0F)
    except ValueError as exc:
        raise WebSocketError(f"unknown opcode {first & 0x0F:#x}") from exc
    masked = bool(second & 0x80)
    length = second & 0x7F
    offset = 2
    if opcode.is_control and length > _MAX_CONTROL_PAYLOAD:
        raise WebSocketError("control frame payload exceeds 125 bytes")
    if length == 126:
        if len(data) < offset + 2:
            raise IncompleteFrame("need 16-bit length")
        length = int.from_bytes(data[offset:offset + 2], "big")
        if length <= 125:
            raise WebSocketError("non-minimal 16-bit length encoding")
        offset += 2
    elif length == 127:
        if len(data) < offset + 8:
            raise IncompleteFrame("need 64-bit length")
        length = int.from_bytes(data[offset:offset + 8], "big")
        if length <= 0xFFFF:
            raise WebSocketError("non-minimal 64-bit length encoding")
        if length >> 63:
            raise WebSocketError("most significant length bit must be 0")
        offset += 8
    if max_frame_size is not None and length > max_frame_size:
        raise FrameTooLarge(
            f"claimed payload length {length} exceeds max_frame_size "
            f"{max_frame_size}")
    mask_key = b""
    if masked:
        if len(data) < offset + 4:
            raise IncompleteFrame("need masking key")
        mask_key = bytes(data[offset:offset + 4])
        offset += 4
    if len(data) < offset + length:
        raise IncompleteFrame("need full payload")
    payload = bytes(data[offset:offset + length])
    if masked:
        payload = _apply_mask(payload, mask_key)
    return Frame(opcode=opcode, payload=payload, fin=fin, masked=masked), offset + length


class IncompleteFrame(WebSocketError):
    """More bytes are required before a frame can be decoded."""


class FrameTooLarge(WebSocketError):
    """A frame's claimed payload length exceeds the decoder's cap.

    Subclasses :class:`WebSocketError` so existing reject paths keep
    working; the distinct type lets the decoder count oversized frames
    separately from other malformed input.
    """


class FrameDecoder:
    """Incremental decoder: feed arbitrary byte chunks, iterate frames.

    Mirrors how the collector's event loop consumes a TCP stream — frames
    may arrive split across segments or coalesced.

    >>> decoder = FrameDecoder()
    >>> wire = encode_frame(Frame(Opcode.TEXT, b"hi", masked=True),
    ...                     mask_key=b"\\x01\\x02\\x03\\x04")
    >>> [frame.text for frame in decoder.feed(wire)]
    ['hi']
    """

    def __init__(self, require_masked: bool = False,
                 max_frame_size: Optional[int] = DEFAULT_MAX_FRAME_SIZE,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer: Tracer | None = None,
                 connection_id: Optional[int] = None) -> None:
        self._buffer = bytearray()
        self.require_masked = require_masked
        self.max_frame_size = max_frame_size
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Which transport connection this decoder serves; rejection
        #: diagnostics carry it so quarantine records are addressable.
        self.connection_id = connection_id
        #: Absolute stream offset of ``_buffer[0]`` — bytes consumed (or
        #: dropped by :meth:`reset`) so far.  Frame-start offsets in
        #: rejection diagnostics are absolute stream positions, stable
        #: across buffer compactions.
        self._offset_base = 0
        #: Where/why the most recent rejection happened (None/"" before).
        self.last_error_offset: Optional[int] = None
        self.last_error_reason = ""
        # Sessions of one collector share a registry, so these counters
        # aggregate across every decoder the server creates.
        metrics = metrics if metrics is not None else MetricsRegistry()
        self._metrics = metrics
        self._bytes_fed = metrics.counter(
            "ws.bytes_fed", help="raw bytes offered to the frame decoder")
        self._frames_decoded = metrics.counter(
            "ws.frames_decoded", help="complete frames decoded")
        self._frames_oversized = metrics.counter(
            "ws.frames_oversized",
            help="frames rejected for exceeding max_frame_size")
        self._frames_rejected = metrics.counter(
            "ws.frames_rejected",
            help="frames rejected as malformed (incl. oversized)")

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet decodable into a complete frame."""
        return len(self._buffer)

    def reset(self) -> int:
        """Drop every buffered byte (quarantine recovery); returns count.

        After a malformed frame the buffer may hold arbitrary garbage
        with no reliable frame boundary, so recovery discards it wholly;
        ``_offset_base`` still advances past the dropped bytes, keeping
        later rejection offsets absolute.
        """
        dropped = len(self._buffer)
        self._offset_base += dropped
        try:
            self._buffer.clear()
        except BufferError:
            # A rejection traceback still exports the old buffer (the
            # decode error keeps its frame's memoryview slice alive);
            # replace the object instead of resizing it.
            self._buffer = bytearray()
        return dropped

    def _reject(self, error: WebSocketError, frame_start: int,
                reason: str) -> WebSocketError:
        """Enrich a rejection with connection id + absolute byte offset.

        Returns an exception of the *same class* whose message carries
        the context (so ``except FrameTooLarge`` etc. keep working),
        records the incident on the decoder, and labels a per-incident
        counter — the metrics answer *which* connection/offset failed,
        not just how many did.
        """
        absolute = self._offset_base + frame_start
        self.last_error_offset = absolute
        self.last_error_reason = reason
        connection = ("unknown" if self.connection_id is None
                      else self.connection_id)
        # Lazily-created labelled counter: fault-free runs never reject,
        # so the label series only exists once something actually broke.
        self._metrics.counter(
            f"ws.frames_rejected{{connection={connection},"
            f"offset={absolute},reason={reason}}}",
            help="frame rejection, labelled by connection/offset/reason"
        ).inc()
        return type(error)(
            f"{error} (connection {connection}, "
            f"stream byte offset {absolute})")

    def feed(self, data: bytes) -> Iterator[Frame]:
        """Buffer *data* and yield every complete frame now available.

        Decoding walks the buffer through a :class:`memoryview` with an
        offset cursor — no per-frame copy of the remaining buffer — and the
        consumed prefix is compacted once, when the iterator finishes.  The
        returned iterator must therefore be exhausted (or closed) before
        ``feed`` is called again.
        """
        self._buffer.extend(data)
        self._bytes_fed.inc(len(data))
        offset = 0
        view = memoryview(self._buffer)
        try:
            while True:
                try:
                    frame, consumed = decode_frame(
                        view[offset:], max_frame_size=self.max_frame_size)
                except IncompleteFrame:
                    return
                except FrameTooLarge as error:
                    self._frames_oversized.inc()
                    self._frames_rejected.inc()
                    raise self._reject(error, offset,
                                       "frame_too_large") from error
                except WebSocketError as error:
                    self._frames_rejected.inc()
                    raise self._reject(error, offset,
                                       "malformed") from error
                if self.require_masked and not frame.masked:
                    self._frames_rejected.inc()
                    raise self._reject(
                        WebSocketError(
                            "server received unmasked client frame"),
                        offset, "unmasked")
                offset += consumed
                self._frames_decoded.inc()
                self.tracer.event("ws.frame", at=self.tracer.now,
                                  opcode=frame.opcode.name.lower(),
                                  payload_bytes=len(frame.payload))
                yield frame
        finally:
            view.release()
            if offset:
                self._offset_base += offset
                try:
                    del self._buffer[:offset]
                except BufferError:
                    # Only reachable on a rejection: the in-flight decode
                    # error's traceback still holds a memoryview slice of
                    # the buffer, which blocks resizing — copy the tail
                    # into a fresh buffer instead (read-only slicing is
                    # always allowed).
                    self._buffer = self._buffer[offset:]


class MessageAssembler:
    """Reassemble fragmented messages from a frame stream (RFC 6455 §5.4)."""

    def __init__(self) -> None:
        self._opcode: Optional[Opcode] = None
        self._parts: list[bytes] = []

    def push(self, frame: Frame) -> Optional[tuple[Opcode, bytes]]:
        """Add a data frame; returns (opcode, payload) when a message completes."""
        if frame.opcode.is_control:
            raise WebSocketError("control frames are not message fragments")
        if frame.opcode == Opcode.CONTINUATION:
            if self._opcode is None:
                raise WebSocketError("continuation frame with no message in progress")
        else:
            if self._opcode is not None:
                raise WebSocketError("new data frame while message in progress")
            self._opcode = frame.opcode
        self._parts.append(frame.payload)
        if not frame.fin:
            return None
        opcode, payload = self._opcode, b"".join(self._parts)
        self._opcode, self._parts = None, []
        return opcode, payload


def accept_key(client_key: str) -> str:
    """Derive Sec-WebSocket-Accept from Sec-WebSocket-Key (RFC 6455 §4.2.2)."""
    digest = hashlib.sha1((client_key + WS_GUID).encode("ascii")).digest()
    return base64.b64encode(digest).decode("ascii")


def make_client_key(rng: Optional[random.Random] = None) -> str:
    """A random 16-byte base64 client nonce for the opening handshake.

    An explicit *rng* is required: drawing the nonce from the global
    ``random`` module would make same-seed runs diverge at the wire level.
    """
    if rng is None:
        raise ValueError(
            "make_client_key needs an explicit rng; implicit global "
            "randomness is not reproducible")
    nonce = bytes(rng.getrandbits(8) for _ in range(16))
    return base64.b64encode(nonce).decode("ascii")


def make_handshake_request(host: str, path: str, client_key: str,
                           origin: str = "") -> bytes:
    """The client's HTTP/1.1 upgrade request."""
    lines = [
        f"GET {path} HTTP/1.1",
        f"Host: {host}",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Key: {client_key}",
        "Sec-WebSocket-Version: 13",
    ]
    if origin:
        lines.append(f"Origin: {origin}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def make_handshake_response(client_key: str) -> bytes:
    """The server's 101 Switching Protocols response."""
    lines = [
        "HTTP/1.1 101 Switching Protocols",
        "Upgrade: websocket",
        "Connection: Upgrade",
        f"Sec-WebSocket-Accept: {accept_key(client_key)}",
    ]
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


def parse_handshake_request(raw: bytes) -> dict[str, str]:
    """Parse an upgrade request; returns lower-cased header map (+ 'path').

    Raises :class:`WebSocketError` unless the request is a well-formed
    WebSocket upgrade (GET, Upgrade/Connection headers, version 13, key).
    """
    try:
        text = raw.decode("ascii")
    except UnicodeDecodeError as exc:
        raise WebSocketError("handshake is not ASCII") from exc
    head, _, _ = text.partition("\r\n\r\n")
    lines = head.split("\r\n")
    request_line = lines[0].split(" ")
    if len(request_line) != 3 or request_line[0] != "GET":
        raise WebSocketError(f"bad request line: {lines[0]!r}")
    headers: dict[str, str] = {"path": request_line[1]}
    for line in lines[1:]:
        name, separator, value = line.partition(":")
        if not separator:
            raise WebSocketError(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("upgrade", "").lower() != "websocket":
        raise WebSocketError("missing Upgrade: websocket")
    if "upgrade" not in headers.get("connection", "").lower():
        raise WebSocketError("missing Connection: Upgrade")
    if headers.get("sec-websocket-version") != "13":
        raise WebSocketError("unsupported WebSocket version")
    if not headers.get("sec-websocket-key"):
        raise WebSocketError("missing Sec-WebSocket-Key")
    return headers
