"""Networking substrate.

Implements the wire-level pieces the paper's collection pipeline rests on:
IPv4 address/CIDR arithmetic, a longest-prefix-match trie (backing the
MaxMind-style IP database), RFC 6455 WebSocket framing with the HTTP
upgrade handshake, a simulated transport layer with latency/loss, and
User-Agent string generation/parsing.
"""

from repro.net.ipv4 import (
    ip_to_int,
    int_to_ip,
    parse_cidr,
    cidr_contains,
    Cidr,
)
from repro.net.cidrtrie import CidrTrie
from repro.net.websocket import (
    WebSocketError,
    Opcode,
    Frame,
    encode_frame,
    decode_frame,
    FrameDecoder,
    make_handshake_request,
    make_handshake_response,
    accept_key,
)
from repro.net.transport import (
    SimulatedNetwork,
    Connection,
    ConnectionClosed,
)
from repro.net.useragent import UserAgent, generate_user_agent, parse_user_agent

__all__ = [
    "ip_to_int",
    "int_to_ip",
    "parse_cidr",
    "cidr_contains",
    "Cidr",
    "CidrTrie",
    "WebSocketError",
    "Opcode",
    "Frame",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
    "make_handshake_request",
    "make_handshake_response",
    "accept_key",
    "SimulatedNetwork",
    "Connection",
    "ConnectionClosed",
    "UserAgent",
    "generate_user_agent",
    "parse_user_agent",
]
