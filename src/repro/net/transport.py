"""Simulated transport layer.

Models the network between the device that renders an ad impression and the
central collector: connection establishment (which can fail), per-direction
latency, byte-stream delivery, and connection teardown.  The collector
measures exposure time as *connection duration at the server side* — the
paper's trick — so the transport records open/close instants on the server
clock.

This is a discrete simulation, not asyncio: browsing sessions drive the
clock, and delivery is immediate-but-timestamped, which is all the audit
pipeline observes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.faults.inject import NULL_INJECTOR, FaultInjector, FaultPoint
from repro.obs.trace import NULL_TRACER, Tracer
from repro.util.simclock import SimClock


class ConnectionClosed(Exception):
    """Raised when writing to or closing an already-closed connection."""


@dataclass
class Endpoint:
    """One side of a connection."""

    ip: str
    port: int

    def __str__(self) -> str:
        return f"{self.ip}:{self.port}"


@dataclass
class Connection:
    """A simulated full-duplex byte-stream connection.

    Client writes land in ``server_inbox`` (after the configured latency is
    charged against the shared clock bookkeeping) and vice versa.  The
    server-side open/close timestamps are the collector's raw material for
    impression timestamp and exposure time.
    """

    client: Endpoint
    server: Endpoint
    opened_at_server: float
    latency: float
    connection_id: int
    server_inbox: bytearray = field(default_factory=bytearray)
    client_inbox: bytearray = field(default_factory=bytearray)
    closed_at_server: Optional[float] = None
    close_initiator: str = ""
    #: Frame-stage fault hook; attached by the network only when a fault
    #: plan is active, so fault-free connections pay nothing.
    fault_point: Optional[FaultPoint] = None

    @property
    def is_open(self) -> bool:
        return self.closed_at_server is None

    def _closed_detail(self) -> str:
        """Self-describing closed-state summary for error messages."""
        initiator = self.close_initiator or "unknown"
        return (f"connection {self.connection_id} closed by {initiator} "
                f"at server instant {self.closed_at_server:.3f}")

    def client_send(self, data: bytes, now_server: float,
                    faultable: bool = False) -> None:
        """Deliver client bytes to the server side.

        ``faultable=True`` marks application frames eligible for
        frame-stage fault injection (truncation/bit flips); handshake
        bytes stay pristine so injected corruption exercises the frame
        decoder, not the HTTP parser.
        """
        if not self.is_open:
            raise ConnectionClosed(f"cannot send on {self._closed_detail()}")
        if now_server < self.opened_at_server:
            raise ValueError("send before connection establishment")
        if faultable and self.fault_point is not None:
            data, _ = self.fault_point.mangle(data)
        self.server_inbox.extend(data)

    def server_send(self, data: bytes, now_server: float) -> None:
        """Deliver server bytes to the client side."""
        if not self.is_open:
            raise ConnectionClosed(f"cannot send on {self._closed_detail()}")
        if now_server < self.opened_at_server:
            raise ValueError("send before connection establishment")
        self.client_inbox.extend(data)

    def drain_server_inbox(self) -> bytes:
        """Take every byte the server has not yet consumed."""
        data = bytes(self.server_inbox)
        self.server_inbox.clear()
        return data

    def drain_client_inbox(self) -> bytes:
        """Take every byte the client has not yet consumed."""
        data = bytes(self.client_inbox)
        self.client_inbox.clear()
        return data

    def close(self, now_server: float, initiator: str = "client") -> None:
        """Tear the connection down; records the server-side close instant."""
        if not self.is_open:
            raise ConnectionClosed(
                f"cannot close already-closed {self._closed_detail()}")
        if now_server < self.opened_at_server:
            raise ValueError("close before connection establishment")
        self.closed_at_server = now_server
        self.close_initiator = initiator

    @property
    def duration(self) -> float:
        """Server-measured connection duration (the exposure-time estimate)."""
        if self.closed_at_server is None:
            raise ConnectionClosed("connection still open; duration unknown")
        return self.closed_at_server - self.opened_at_server


@dataclass
class NetworkConditions:
    """Loss and latency knobs for the simulated path to the collector."""

    connect_failure_rate: float = 0.01
    mid_stream_failure_rate: float = 0.002
    base_latency: float = 0.04
    latency_jitter: float = 0.06

    def __post_init__(self) -> None:
        for name in ("connect_failure_rate", "mid_stream_failure_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.base_latency < 0 or self.latency_jitter < 0:
            raise ValueError("latencies must be non-negative")


class SimulatedNetwork:
    """Connection factory with failure injection.

    The collector's measurement-error model lives here: a connection attempt
    can fail outright (impression never logged) or die mid-stream (logged
    with truncated exposure).  Callbacks let the collector observe accepted
    connections the way a listening socket would.
    """

    def __init__(self, clock: SimClock, rng: random.Random,
                 conditions: Optional[NetworkConditions] = None,
                 tracer: Tracer | None = None,
                 injector: FaultInjector | None = None) -> None:
        self.clock = clock
        self.rng = rng
        self.conditions = conditions or NetworkConditions()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = injector if injector is not None else NULL_INJECTOR
        self._next_connection_id = 1
        self._accept_callback: Optional[Callable[[Connection], None]] = None
        self.connections: list[Connection] = []
        self.failed_connects = 0
        #: Why the most recent connect() returned None ("" after success):
        #: "syn_lost", "fault_refused", or "fault_timeout".  The beacon
        #: client reads it to charge the right delay before retrying.
        self.last_connect_failure = ""

    def on_accept(self, callback: Callable[[Connection], None]) -> None:
        """Register the server's accept handler (one listener, like the paper)."""
        self._accept_callback = callback

    def sample_latency(self) -> float:
        """One-way latency draw for a new connection."""
        jitter = self.rng.random() * self.conditions.latency_jitter
        return self.conditions.base_latency + jitter

    def connect(self, client: Endpoint, server: Endpoint,
                at_time: Optional[float] = None) -> Optional[Connection]:
        """Attempt connection establishment.

        *at_time* is the client-side instant the connection is initiated
        (defaults to the shared clock's now).  Connections are timed
        arithmetically from it rather than from the shared clock, because
        real beacon connections overlap freely — the clock only provides
        the server skew.

        Returns the connection, or None when the simulated SYN is lost —
        the corresponding impression will simply be missing from the
        collector dataset, as §3.1 of the paper warns.
        """
        if at_time is None:
            at_time = self.clock.now()
        self.last_connect_failure = ""
        # The baseline SYN-loss roll always happens first, preserving the
        # exact draw order of fault-free runs; injected connect faults
        # only roll afterwards (and only when configured).
        if self.rng.random() < self.conditions.connect_failure_rate:
            self.failed_connects += 1
            self.last_connect_failure = "syn_lost"
            self.tracer.event("transport.connect", at=at_time,
                              ok=False, reason="syn_lost")
            return None
        faults = self.faults
        if faults.active:
            if faults.fires("connect", "refused"):
                self.failed_connects += 1
                self.last_connect_failure = "fault_refused"
                self.tracer.event("transport.connect", at=at_time,
                                  ok=False, reason="fault_refused")
                return None
            if faults.fires("connect", "timeout"):
                self.failed_connects += 1
                self.last_connect_failure = "fault_timeout"
                self.tracer.event(
                    "transport.connect", at=at_time, ok=False,
                    reason="fault_timeout",
                    timeout_seconds=faults.param("connect", "timeout"))
                return None
        latency = self.sample_latency()
        connection = Connection(
            client=client,
            server=server,
            opened_at_server=at_time + latency + self.clock.server_skew,
            latency=latency,
            connection_id=self._next_connection_id,
        )
        self._next_connection_id += 1
        if faults.active:
            if faults.fires("collector", "backpressure"):
                # Slow accept: the server notices the connection late, so
                # the measured open instant (= impression timestamp, and
                # the floor of the exposure window) shifts by the delay.
                connection.opened_at_server += faults.param(
                    "collector", "backpressure")
            connection.fault_point = faults.point("frame")
        self.connections.append(connection)
        self.tracer.begin("transport.connect", at=at_time, ok=True,
                          connection=connection.connection_id,
                          latency=latency)
        self.tracer.advance_to(connection.opened_at_server)
        if self._accept_callback is not None:
            self._accept_callback(connection)
        return connection

    def maybe_drop_mid_stream(self, connection: Connection, now_server: float) -> bool:
        """Roll for a mid-stream failure; closes the connection if it hits."""
        if not connection.is_open:
            return False
        if self.rng.random() < self.conditions.mid_stream_failure_rate:
            connection.close(now_server, initiator="network")
            self.tracer.event("transport.drop", at=now_server,
                              connection=connection.connection_id)
            return True
        if self.faults.fires("stream", "disconnect"):
            connection.close(now_server, initiator="network")
            self.tracer.event("transport.drop", at=now_server,
                              connection=connection.connection_id,
                              fault=True)
            return True
        return False
