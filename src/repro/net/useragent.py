"""User-Agent string generation and parsing.

The beacon reports the raw User-Agent of the device that rendered the
impression; the audit then (a) uses it as half of the user identifier
(user = IP ⊕ User-Agent) and (b) classifies device/browser families.
Generation produces realistic 2016-era UA strings; parsing inverts them.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass

from repro.util import hotpath

_BROWSER_WEIGHTS = [
    ("chrome", 0.52),
    ("firefox", 0.17),
    ("safari", 0.14),
    ("msie", 0.09),
    ("opera", 0.04),
    ("headless", 0.04),
]

_OS_BY_DEVICE = {
    "desktop": ["Windows NT 10.0; Win64; x64", "Windows NT 6.1; WOW64",
                "Macintosh; Intel Mac OS X 10_11_4", "X11; Linux x86_64"],
    "mobile": ["iPhone; CPU iPhone OS 9_3 like Mac OS X",
               "Linux; Android 6.0.1; Nexus 5X Build/MMB29P",
               "Linux; Android 5.1; SM-G361F Build/LMY48B"],
    "server": ["X11; Linux x86_64", "Windows NT 6.3; Win64; x64"],
}

_CHROME_VERSIONS = ["48.0.2564.116", "49.0.2623.87", "50.0.2661.75"]
_FIREFOX_VERSIONS = ["44.0", "45.0", "46.0"]
_SAFARI_VERSIONS = ["601.5.17", "601.6.17"]
_OPERA_VERSIONS = ["35.0.2066.68", "36.0.2130.32"]


@dataclass(frozen=True)
class UserAgent:
    """Parsed User-Agent facts the audit cares about."""

    raw: str
    browser: str
    device: str

    @property
    def is_headless(self) -> bool:
        """Headless/automation UAs are a weak bot signal (not proof)."""
        return self.browser == "headless"


def generate_user_agent(rng: random.Random, device: str = "desktop",
                        browser: str = "") -> str:
    """Produce a realistic UA string for the given device class.

    *browser* forces a family; otherwise one is drawn from 2016-ish market
    shares.  ``device`` must be ``desktop``, ``mobile`` or ``server``.
    """
    if device not in _OS_BY_DEVICE:
        raise ValueError(f"unknown device class: {device!r}")
    if not browser:
        families = [name for name, _ in _BROWSER_WEIGHTS]
        weights = [weight for _, weight in _BROWSER_WEIGHTS]
        browser = rng.choices(families, weights=weights, k=1)[0]
    os_token = rng.choice(_OS_BY_DEVICE[device])
    if browser == "chrome":
        version = rng.choice(_CHROME_VERSIONS)
        return (f"Mozilla/5.0 ({os_token}) AppleWebKit/537.36 "
                f"(KHTML, like Gecko) Chrome/{version} Safari/537.36")
    if browser == "firefox":
        version = rng.choice(_FIREFOX_VERSIONS)
        return f"Mozilla/5.0 ({os_token}; rv:{version}) Gecko/20100101 Firefox/{version}"
    if browser == "safari":
        version = rng.choice(_SAFARI_VERSIONS)
        return (f"Mozilla/5.0 ({os_token}) AppleWebKit/{version} "
                f"(KHTML, like Gecko) Version/9.1 Safari/{version}")
    if browser == "msie":
        return f"Mozilla/5.0 ({os_token}; Trident/7.0; rv:11.0) like Gecko"
    if browser == "opera":
        version = rng.choice(_OPERA_VERSIONS)
        chrome = rng.choice(_CHROME_VERSIONS)
        return (f"Mozilla/5.0 ({os_token}) AppleWebKit/537.36 "
                f"(KHTML, like Gecko) Chrome/{chrome} Safari/537.36 OPR/{version}")
    if browser == "headless":
        kind = rng.choice(["PhantomJS/2.1.1", "HeadlessChrome/49.0.2623.87"])
        return f"Mozilla/5.0 ({os_token}) AppleWebKit/537.36 (KHTML, like Gecko) {kind}"
    raise ValueError(f"unknown browser family: {browser!r}")


def parse_user_agent_uncached(raw: str) -> UserAgent:
    """Reference single-shot classification (see :func:`parse_user_agent`)."""
    if not raw or not raw.strip():
        return UserAgent(raw=raw, browser="unknown", device="desktop")
    lowered = raw.lower()
    if "phantomjs" in lowered or "headlesschrome" in lowered:
        browser = "headless"
    elif "opr/" in lowered or "opera" in lowered:
        browser = "opera"
    elif "firefox/" in lowered:
        browser = "firefox"
    elif "chrome/" in lowered:
        browser = "chrome"
    elif "safari/" in lowered:
        browser = "safari"
    elif "trident" in lowered or "msie" in lowered:
        browser = "msie"
    else:
        browser = "unknown"
    if "iphone" in lowered or "android" in lowered or "mobile" in lowered:
        device = "mobile"
    else:
        device = "desktop"
    return UserAgent(raw=raw, browser=browser, device=device)


_parse_user_agent_cached = functools.lru_cache(maxsize=8192)(
    parse_user_agent_uncached)


def parse_user_agent(raw: str) -> UserAgent:
    """Classify a UA string into (browser family, device class).

    Best-effort, mirroring how the paper's MySQL post-processing would bin
    raw strings; unknown strings classify as ('unknown', 'desktop').  An
    empty or whitespace-only UA — a real dataset always has a few — is
    just the least informative unknown string, not an error: the audit
    must keep the record (the UA is half of the user identity), so it
    bins like any other unrecognised string.

    Parsing runs per impression on both the beacon and the audit sides
    against a small generated UA vocabulary, so results are memoised in a
    bounded LRU cache; :class:`UserAgent` is frozen, so the shared
    instances are safe to hand out.
    """
    if hotpath._REFERENCE:
        return parse_user_agent_uncached(raw)
    return _parse_user_agent_cached(raw)


#: Cache introspection pass-throughs (tests assert on hit counts).
parse_user_agent.cache_info = _parse_user_agent_cached.cache_info
parse_user_agent.cache_clear = _parse_user_agent_cached.cache_clear
