"""Binary trie for longest-prefix-match over CIDR blocks.

This is the lookup structure behind the MaxMind-style IP database and the
Botlab-style deny list: insert (CIDR → value) pairs, then resolve any IPv4
address to the value of the most specific covering prefix, in O(32) bit
steps per lookup.
"""

from __future__ import annotations

from typing import Generic, Iterator, Optional, TypeVar

from repro.net.ipv4 import Cidr, ip_to_int, parse_cidr

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value", "prefix")

    def __init__(self) -> None:
        self.children: list[Optional[_Node[V]]] = [None, None]
        self.value: Optional[V] = None
        self.has_value = False
        #: The exact Cidr inserted at this node.  Lookups hand it back
        #: verbatim instead of re-deriving a network from the queried
        #: address — the returned block is the inserted object, whatever
        #: canonicalisation Cidr applies now or later.
        self.prefix: Optional[Cidr] = None


class CidrTrie(Generic[V]):
    """Map from CIDR prefixes to values with longest-prefix-match lookup.

    >>> trie = CidrTrie()
    >>> trie.insert("10.0.0.0/8", "corp")
    >>> trie.insert("10.1.0.0/16", "lab")
    >>> trie.lookup("10.1.2.3")
    'lab'
    >>> trie.lookup("10.9.9.9")
    'corp'
    >>> trie.lookup("8.8.8.8") is None
    True
    """

    def __init__(self) -> None:
        self._root: _Node[V] = _Node()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def insert(self, cidr: str | Cidr, value: V) -> None:
        """Insert or replace the value for a prefix."""
        block = parse_cidr(cidr) if isinstance(cidr, str) else cidr
        node = self._root
        for depth in range(block.prefix):
            bit = (block.network >> (31 - depth)) & 1
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]  # type: ignore[assignment]
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True
        node.prefix = block

    def lookup(self, ip: str) -> Optional[V]:
        """Value of the longest prefix covering *ip*, or None."""
        result = self.lookup_with_prefix(ip)
        return result[1] if result else None

    def lookup_with_prefix(self, ip: str) -> Optional[tuple[Cidr, V]]:
        """(covering CIDR, value) of the longest match, or None.

        The returned CIDR is the *inserted* prefix itself, not a network
        reconstructed from the queried address.
        """
        address = ip_to_int(ip)
        node = self._root
        best: Optional[tuple[Cidr, V]] = None
        if node.has_value:
            best = (node.prefix, node.value)  # type: ignore[assignment]
        for depth in range(32):
            bit = (address >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                break
            node = child
            if node.has_value:
                best = (node.prefix, node.value)  # type: ignore[assignment]
        return best

    def covers(self, ip: str) -> bool:
        """True if any inserted prefix contains *ip*."""
        return self.lookup_with_prefix(ip) is not None

    def items(self) -> Iterator[tuple[Cidr, V]]:
        """Iterate (CIDR, value) pairs in prefix order (DFS, 0-branch first)."""

        def walk(node: _Node[V], bits: int, depth: int) -> Iterator[tuple[Cidr, V]]:
            if node.has_value:
                yield node.prefix, node.value  # type: ignore[misc]
            for bit in (0, 1):
                child = node.children[bit]
                if child is not None:
                    yield from walk(child, (bits << 1) | bit, depth + 1)

        yield from walk(self._root, 0, 0)
