"""IPv4 address and CIDR arithmetic.

Implemented from scratch (rather than on ``ipaddress``) because the IP
database and deny list need cheap integer representations and prefix
arithmetic in their inner lookup loops, and because owning the parsing lets
us reject exactly the inputs the collector should treat as malformed.
"""

from __future__ import annotations

from dataclasses import dataclass

_MAX_IP = 0xFFFFFFFF


def ip_to_int(ip: str) -> int:
    """Parse dotted-quad IPv4 into a 32-bit integer.

    Strict: exactly four decimal octets, each 0-255, no leading '+',
    whitespace, or empty parts.
    """
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(f"invalid IPv4 address: {ip!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0") or len(part) > 3:
            raise ValueError(f"invalid IPv4 address: {ip!r}")
        octet = int(part)
        if octet > 255:
            raise ValueError(f"invalid IPv4 address: {ip!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Render a 32-bit integer as dotted-quad IPv4."""
    if not 0 <= value <= _MAX_IP:
        raise ValueError(f"value out of IPv4 range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True)
class Cidr:
    """A CIDR block, stored as (network-integer, prefix-length).

    The network address is canonicalised: host bits below the prefix are
    required to be zero at construction time.
    """

    network: int
    prefix: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix <= 32:
            raise ValueError(f"invalid prefix length: {self.prefix}")
        if not 0 <= self.network <= _MAX_IP:
            raise ValueError(f"network out of range: {self.network}")
        if self.network & ~self.mask:
            raise ValueError(
                f"host bits set in network {int_to_ip(self.network)}/{self.prefix}")

    @property
    def mask(self) -> int:
        """The netmask as a 32-bit integer."""
        if self.prefix == 0:
            return 0
        return (_MAX_IP << (32 - self.prefix)) & _MAX_IP

    @property
    def first(self) -> int:
        """First address in the block."""
        return self.network

    @property
    def last(self) -> int:
        """Last address in the block."""
        return self.network | (~self.mask & _MAX_IP)

    @property
    def size(self) -> int:
        """Number of addresses the block spans."""
        return 1 << (32 - self.prefix)

    def contains_int(self, value: int) -> bool:
        """True if the integer address falls inside this block."""
        return (value & self.mask) == self.network

    def contains(self, ip: str) -> bool:
        """True if the dotted-quad address falls inside this block."""
        return self.contains_int(ip_to_int(ip))

    def nth(self, offset: int) -> str:
        """The dotted-quad address at *offset* within the block."""
        if not 0 <= offset < self.size:
            raise ValueError(f"offset {offset} outside /{self.prefix} block")
        return int_to_ip(self.network + offset)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.prefix}"


def parse_cidr(text: str) -> Cidr:
    """Parse ``a.b.c.d/p`` notation into a :class:`Cidr`.

    A bare address parses as a /32.
    """
    if "/" in text:
        address_part, _, prefix_part = text.partition("/")
        if not prefix_part.isdigit():
            raise ValueError(f"invalid CIDR: {text!r}")
        prefix = int(prefix_part)
    else:
        address_part, prefix = text, 32
    network = ip_to_int(address_part)
    if not 0 <= prefix <= 32:
        raise ValueError(f"invalid CIDR: {text!r}")
    mask = (_MAX_IP << (32 - prefix)) & _MAX_IP if prefix else 0
    if network & ~mask:
        raise ValueError(f"host bits set in CIDR: {text!r}")
    return Cidr(network, prefix)


def cidr_contains(cidr: str, ip: str) -> bool:
    """Convenience: does the CIDR string contain the IP string?"""
    return parse_cidr(cidr).contains(ip)
