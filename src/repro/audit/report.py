"""Full audit report: every axis, every campaign, one artifact.

``full_audit`` is the library's headline entry point: hand it an
:class:`~repro.audit.dataset.AuditDataset` and receive the complete
quality assessment the paper's methodology produces, renderable as text.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.brand_safety import BrandSafetyAudit, VennCounts
from repro.audit.context import ContextAudit, ContextResult
from repro.audit.dataset import AuditDataset
from repro.audit.fraud import DataCenterStats, FraudAudit
from repro.audit.frequency import FrequencyAudit, FrequencySummary
from repro.audit.popularity import PopularityAudit, RankDistribution
from repro.audit.reconcile import Discrepancies, ReconciliationAudit
from repro.audit.viewability import ViewabilityAudit, ViewabilityResult
from repro.util.tables import render_table


@dataclass(frozen=True)
class CampaignAuditReport:
    """All per-campaign audit results."""

    campaign_id: str
    venn: VennCounts
    context: ContextResult
    popularity: RankDistribution
    viewability: ViewabilityResult
    fraud: DataCenterStats
    discrepancies: Discrepancies


@dataclass(frozen=True)
class FullAuditReport:
    """The complete audit artifact."""

    campaigns: tuple[CampaignAuditReport, ...]
    aggregate_venn: VennCounts
    frequency: FrequencySummary
    blacklist: tuple[str, ...]

    def render(self) -> str:
        """Human-readable multi-section rendering."""
        sections = []
        sections.append(render_table(
            ["Campaign", "Pubs (audit only)", "Pubs (both)",
             "Pubs (vendor only)", "Unreported by vendor"],
            [(report.campaign_id, report.venn.audit_only, report.venn.both,
              report.venn.vendor_only, str(report.venn.unreported_by_vendor))
             for report in self.campaigns],
            title="Brand safety: publisher coverage (Figure 1)"))
        sections.append(render_table(
            ["Campaign", "Audit contextual", "Vendor contextual"],
            [(report.campaign_id, str(report.context.audit_fraction),
              str(report.context.vendor_fraction))
             for report in self.campaigns],
            title="Context (Table 2)"))
        sections.append(render_table(
            ["Campaign", "View >= 1s", "Median exposure (s)"],
            [(report.campaign_id,
              str(report.viewability.viewable_upper_bound),
              f"{report.viewability.median_exposure_seconds:.1f}")
             for report in self.campaigns],
            title="Viewability upper bound (Table 3)"))
        sections.append(render_table(
            ["Campaign", "DC IPs", "DC impressions", "DC publishers"],
            [(report.campaign_id, str(report.fraud.dc_ips),
              str(report.fraud.dc_impressions),
              str(report.fraud.dc_publishers))
             for report in self.campaigns],
            title="Data-center traffic (Table 4)"))
        aggregate = self.aggregate_venn
        sections.append(
            "Aggregate publisher Venn: "
            f"{aggregate.audit_only} audit-only / {aggregate.both} both / "
            f"{aggregate.vendor_only} vendor-only "
            f"(vendor missed {aggregate.unreported_by_vendor})")
        frequency = self.frequency
        sections.append(
            "Frequency capping: "
            f"{frequency.users_over_10} users >10 impressions, "
            f"{frequency.users_over_100} users >100, "
            f"max {frequency.max_impressions_single_user}, "
            f"{frequency.users_median_under_60s} heavy users with median "
            "inter-arrival < 60 s")
        sections.append(f"Proposed blacklist ({len(self.blacklist)} unsafe "
                        "publishers): " + ", ".join(self.blacklist[:10])
                        + ("..." if len(self.blacklist) > 10 else ""))
        return "\n\n".join(sections)


def full_audit(dataset: AuditDataset) -> FullAuditReport:
    """Run every audit axis over *dataset*."""
    brand_safety = BrandSafetyAudit(dataset)
    context = ContextAudit(dataset)
    popularity = PopularityAudit(dataset)
    viewability = ViewabilityAudit(dataset)
    fraud = FraudAudit(dataset)
    frequency = FrequencyAudit(dataset)
    reconciliation = ReconciliationAudit(dataset)
    campaign_reports = []
    for campaign_id in dataset.campaign_ids:
        campaign_reports.append(CampaignAuditReport(
            campaign_id=campaign_id,
            venn=brand_safety.venn(campaign_id),
            context=context.assess(campaign_id),
            popularity=popularity.distribution(campaign_id),
            viewability=viewability.assess(campaign_id),
            fraud=fraud.assess(campaign_id),
            discrepancies=reconciliation.assess(campaign_id),
        ))
    return FullAuditReport(
        campaigns=tuple(campaign_reports),
        aggregate_venn=brand_safety.venn(None),
        frequency=frequency.summary(None),
        blacklist=tuple(brand_safety.blacklist_proposal(None)),
    )
