"""Fraud audit (paper Table 4).

Quantifies each campaign's exposure to data-center traffic using the
classification the enrichment pass stored on every record (the 3-stage
MaxMind → deny-list → manual cascade of :mod:`repro.geo.resolver`):

* fraction of distinct IPs located in data centers,
* fraction of impressions delivered to those IPs,
* fraction of publishers that served impressions to those IPs,

plus the money angle: what those impressions cost and how much the vendor
silently refunded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.dataset import AuditDataset
from repro.util.stats import Fraction2


@dataclass(frozen=True)
class DataCenterStats:
    """Table 4 row for one campaign."""

    campaign_id: str
    dc_ips: Fraction2            # of distinct IPs
    dc_impressions: Fraction2    # of logged impressions
    dc_publishers: Fraction2     # of observed publishers
    estimated_cost_eur: float    # CPM-bound estimate of wasted spend
    vendor_refund_eur: float


class FraudAudit:
    """Data-center traffic exposure, campaign by campaign."""

    def __init__(self, dataset: AuditDataset) -> None:
        self.dataset = dataset

    def assess(self, campaign_id: str) -> DataCenterStats:
        """One Table 4 row.

        Requires an enriched dataset (``is_datacenter`` set); raises
        otherwise rather than silently reporting zeros.
        """
        rows = self.dataset.select(campaign_id, "record_id", "identity",
                                   "domain", "is_datacenter")
        campaign = self.dataset.campaigns[campaign_id]
        ips: set[str] = set()
        dc_ip_set: set[str] = set()
        publishers: set[str] = set()
        dc_publishers: set[str] = set()
        dc_impressions = 0
        for record_id, identity, domain, is_datacenter in rows:
            if is_datacenter is None:
                raise ValueError(
                    f"record {record_id} not enriched; run the "
                    "Enricher before the fraud audit")
            ips.add(identity)
            publishers.add(domain)
            if is_datacenter:
                dc_ip_set.add(identity)
                dc_publishers.add(domain)
                dc_impressions += 1
        report = self.dataset.vendor_reports.get(campaign_id)
        return DataCenterStats(
            campaign_id=campaign_id,
            dc_ips=Fraction2(len(dc_ip_set), len(ips)) if ips
            else Fraction2(0, 0),
            dc_impressions=Fraction2(dc_impressions, len(rows)) if rows
            else Fraction2(0, 0),
            dc_publishers=Fraction2(len(dc_publishers), len(publishers))
            if publishers else Fraction2(0, 0),
            estimated_cost_eur=dc_impressions * campaign.bid_per_impression,
            vendor_refund_eur=report.refunded_eur if report else 0.0,
        )

    def table(self) -> list[DataCenterStats]:
        """Table 4: one row per campaign, configuration order."""
        return [self.assess(campaign_id)
                for campaign_id in self.dataset.campaign_ids]

    def stage_breakdown(self, campaign_id: str) -> dict[str, int]:
        """How many of a campaign's DC impressions each cascade stage
        caught (ablation A5's raw material)."""
        breakdown: dict[str, int] = {}
        for is_datacenter, dc_stage in self.dataset.select(
                campaign_id, "is_datacenter", "dc_stage"):
            if is_datacenter:
                breakdown[dc_stage] = breakdown.get(dc_stage, 0) + 1
        return breakdown
