"""Report reconciliation: where the vendor's story and ours diverge.

Rolls the per-axis audits into the discrepancy summary an advertiser
actually acts on: unreported publishers, inflated contextual claims,
impressions our beacon never saw (and vice versa — the beacon's own loss),
and money charged for traffic the audit attributes to data centers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.brand_safety import BrandSafetyAudit
from repro.audit.context import ContextAudit
from repro.audit.dataset import AuditDataset
from repro.audit.fraud import FraudAudit
from repro.util.stats import Fraction2


@dataclass(frozen=True)
class Discrepancies:
    """Everything inconsistent between vendor report and audit dataset,
    for one campaign."""

    campaign_id: str
    vendor_impressions: int
    logged_impressions: int
    publishers_unreported_by_vendor: int
    publishers_unreported_fraction: Fraction2
    contextual_gap_points: float        # vendor % − audit %
    dc_cost_not_refunded_eur: float
    anonymous_gap_publishers: int       # missing pubs anonymity can't explain

    @property
    def logging_loss(self) -> Fraction2:
        """Impressions the beacon failed to log, relative to the vendor's
        count (the paper's §3.1 error budget, observed)."""
        missing = max(0, self.vendor_impressions - self.logged_impressions)
        return Fraction2(missing, max(1, self.vendor_impressions))


class ReconciliationAudit:
    """Builds the discrepancy summary per campaign."""

    def __init__(self, dataset: AuditDataset) -> None:
        self.dataset = dataset
        self.brand_safety = BrandSafetyAudit(dataset)
        self.context = ContextAudit(dataset)
        self.fraud = FraudAudit(dataset)

    def assess(self, campaign_id: str) -> Discrepancies:
        """Reconcile one campaign."""
        report = self.dataset.require_report(campaign_id)
        logged = self.dataset.record_count(campaign_id)
        venn = self.brand_safety.venn(campaign_id)
        context = self.context.assess(campaign_id)
        fraud = self.fraud.assess(campaign_id)
        bound = self.brand_safety.anonymous_bound(campaign_id)
        return Discrepancies(
            campaign_id=campaign_id,
            vendor_impressions=report.total_impressions,
            logged_impressions=logged,
            publishers_unreported_by_vendor=venn.audit_only,
            publishers_unreported_fraction=venn.unreported_by_vendor,
            contextual_gap_points=(context.vendor_fraction.pct
                                   - context.audit_fraction.pct),
            dc_cost_not_refunded_eur=max(
                0.0, fraud.estimated_cost_eur - fraud.vendor_refund_eur),
            anonymous_gap_publishers=bound.unexplained_publishers,
        )

    def all_campaigns(self) -> list[Discrepancies]:
        """Reconcile every campaign that has a vendor report."""
        return [self.assess(campaign_id)
                for campaign_id in self.dataset.campaign_ids
                if campaign_id in self.dataset.vendor_reports]
