"""Frequency-cap audit (paper Figure 3).

Groups impressions of one ad by user — user = (IP, User-Agent), so NAT
households with distinct browsers separate, and one person's two browsers
count twice, exactly as the paper defines it — and studies how many times
each user saw the ad and how quickly impressions repeated.  The absence of
any default cap shows up as users with hundreds of impressions at
sub-minute median inter-arrival times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.audit.dataset import AuditDataset
from repro.util.stats import median


@dataclass(frozen=True)
class UserFrequency:
    """One point of Figure 3's scatter."""

    user_key: str
    campaign_id: str
    impressions: int
    median_interarrival_seconds: Optional[float]   # None when impressions < 2
    min_interarrival_seconds: Optional[float]

    def __post_init__(self) -> None:
        if self.impressions < 1:
            raise ValueError("impressions must be positive")


@dataclass(frozen=True)
class FrequencySummary:
    """Aggregate cap statistics across all campaigns."""

    total_users: int
    users_over_10: int
    users_over_100: int
    max_impressions_single_user: int
    users_median_under_60s: int
    users_min_under_20s: int


class FrequencyAudit:
    """Per-user repetition analysis."""

    def __init__(self, dataset: AuditDataset) -> None:
        self.dataset = dataset

    def user_frequencies(self, campaign_id: Optional[str] = None
                         ) -> list[UserFrequency]:
        """Scatter points, one per (user, ad) pair.

        With *campaign_id* None the analysis runs over every campaign and
        keeps (user, campaign) pairs separate, matching Figure 3's
        "impressions of a specific ad" framing.
        """
        campaign_ids = ([campaign_id] if campaign_id is not None
                        else self.dataset.campaign_ids)
        points: list[UserFrequency] = []
        for current in campaign_ids:
            grouped: dict[str, list[float]] = {}
            for user_key, timestamp in self.dataset.select(
                    current, "user_key", "timestamp"):
                grouped.setdefault(user_key, []).append(timestamp)
            for user_key, timestamps in grouped.items():
                timestamps.sort()
                gaps = [after - before for before, after
                        in zip(timestamps, timestamps[1:])]
                points.append(UserFrequency(
                    user_key=user_key,
                    campaign_id=current,
                    impressions=len(timestamps),
                    median_interarrival_seconds=median(gaps) if gaps else None,
                    min_interarrival_seconds=min(gaps) if gaps else None,
                ))
        return points

    def summary(self, campaign_id: Optional[str] = None) -> FrequencySummary:
        """The headline numbers the paper quotes from Figure 3."""
        points = self.user_frequencies(campaign_id)
        return FrequencySummary(
            total_users=len(points),
            users_over_10=sum(1 for point in points if point.impressions > 10),
            users_over_100=sum(1 for point in points if point.impressions > 100),
            max_impressions_single_user=max(
                (point.impressions for point in points), default=0),
            users_median_under_60s=sum(
                1 for point in points
                if point.impressions > 10
                and point.median_interarrival_seconds is not None
                and point.median_interarrival_seconds < 60.0),
            users_min_under_20s=sum(
                1 for point in points
                if point.min_interarrival_seconds is not None
                and point.min_interarrival_seconds < 20.0),
        )

    def scatter_series(self, campaign_id: Optional[str] = None
                       ) -> list[tuple[int, float]]:
        """(impressions, median inter-arrival) pairs, Figure 3's axes.

        Users with a single impression have no inter-arrival time and are
        omitted, as in the paper's log-log scatter.
        """
        return [(point.impressions, point.median_interarrival_seconds)
                for point in self.user_frequencies(campaign_id)
                if point.median_interarrival_seconds is not None]

    def would_suppress(self, cap: int,
                       campaign_id: Optional[str] = None) -> int:
        """Impressions a per-user cap of *cap* would have suppressed —
        the ablation the paper's frequency discussion motivates."""
        if cap < 1:
            raise ValueError("cap must be >= 1")
        points = self.user_frequencies(campaign_id)
        return sum(max(0, point.impressions - cap) for point in points)
