"""Viewability audit (paper Table 3).

The beacon measures exposure as connection duration but — thanks to the
Same-Origin Policy — cannot see whether the creative's pixels were in the
viewport.  The audit therefore reports the *upper bound* of the MRC
viewability standard: the fraction of impressions exposed for ≥ 1 s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.dataset import AuditDataset
from repro.util.stats import Fraction2, percentile


@dataclass(frozen=True)
class ViewabilityResult:
    """Table 3 row for one campaign (plus exposure distribution facts)."""

    campaign_id: str
    viewable_upper_bound: Fraction2
    median_exposure_seconds: float
    p90_exposure_seconds: float
    truncated_records: int


class ViewabilityAudit:
    """Exposure-time analysis over the collected dataset."""

    def __init__(self, dataset: AuditDataset,
                 min_exposure_seconds: float = 1.0) -> None:
        if min_exposure_seconds <= 0:
            raise ValueError("min_exposure_seconds must be positive")
        self.dataset = dataset
        self.min_exposure_seconds = min_exposure_seconds

    def assess(self, campaign_id: str) -> ViewabilityResult:
        """Upper-bound viewability for one campaign."""
        rows = self.dataset.select(campaign_id, "exposure_seconds",
                                   "truncated")
        if not rows:
            return ViewabilityResult(campaign_id=campaign_id,
                                     viewable_upper_bound=Fraction2(0, 0),
                                     median_exposure_seconds=0.0,
                                     p90_exposure_seconds=0.0,
                                     truncated_records=0)
        exposures = [exposure for exposure, _ in rows]
        viewable = sum(1 for exposure in exposures
                       if exposure >= self.min_exposure_seconds)
        return ViewabilityResult(
            campaign_id=campaign_id,
            viewable_upper_bound=Fraction2(viewable, len(rows)),
            median_exposure_seconds=percentile(exposures, 50.0),
            p90_exposure_seconds=percentile(exposures, 90.0),
            truncated_records=sum(1 for _, truncated in rows if truncated),
        )

    def table(self) -> list[ViewabilityResult]:
        """Table 3: one row per campaign, configuration order."""
        return [self.assess(campaign_id)
                for campaign_id in self.dataset.campaign_ids]

    def mrc_estimate(self, campaign_id: str) -> "MrcEstimate":
        """Full MRC viewability, measured where SafeFrames allow it.

        The paper's §3.1 limitation (Same-Origin Policy hides the iframe's
        position) lifts on SafeFrame inventory, where the script reports
        pixel visibility.  There the audit can apply the complete MRC
        standard — ≥ 50 % of pixels in view for ≥ 1 s — and extrapolate it
        to the rest of the campaign as an estimate.
        """
        rows = self.dataset.select(campaign_id, "exposure_seconds",
                                   "pixels_in_view")
        measurable = [(exposure, pixels) for exposure, pixels in rows
                      if pixels is not None]
        mrc_viewable = sum(
            1 for exposure, pixels in measurable
            if pixels and exposure >= self.min_exposure_seconds)
        upper = self.assess(campaign_id).viewable_upper_bound
        if measurable:
            mrc = Fraction2(mrc_viewable, len(measurable))
            # Scale the campaign-wide upper bound by the measured
            # pixels-given-exposure conditional.
            exposed = sum(1 for exposure, _ in measurable
                          if exposure >= self.min_exposure_seconds)
            conditional = (mrc_viewable / exposed) if exposed else 0.0
            extrapolated = upper.value * conditional
        else:
            mrc = Fraction2(0, 0)
            extrapolated = 0.0
        return MrcEstimate(
            campaign_id=campaign_id,
            measurable_impressions=len(measurable),
            total_impressions=len(rows),
            mrc_viewable_on_safeframe=mrc,
            upper_bound=upper,
            extrapolated_mrc=extrapolated,
        )


@dataclass(frozen=True)
class MrcEstimate:
    """SafeFrame-based full-MRC viewability assessment."""

    campaign_id: str
    measurable_impressions: int
    total_impressions: int
    mrc_viewable_on_safeframe: Fraction2
    upper_bound: Fraction2
    extrapolated_mrc: float

    @property
    def coverage(self) -> Fraction2:
        """Share of impressions where pixel geometry was measurable."""
        return Fraction2(self.measurable_impressions,
                         self.total_impressions) if self.total_impressions \
            else Fraction2(0, 0)

    @property
    def upper_bound_inflation(self) -> float:
        """How much the connection-duration bound overstates true MRC
        viewability (percentage points)."""
        return self.upper_bound.pct - 100.0 * self.extrapolated_mrc
