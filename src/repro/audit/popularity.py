"""Publisher-popularity audit (paper Figure 2).

Distributes a campaign's publishers and impressions across logarithmic
Alexa-rank buckets and reports top-N concentration — the analysis behind
the paper's finding that a 30× CPM increase does not buy more popular
inventory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.audit.dataset import AuditDataset
from repro.util.stats import bucket_index


@dataclass(frozen=True)
class RankDistribution:
    """Figure 2 series for one campaign."""

    campaign_id: str
    bucket_edges: tuple[int, ...]
    publisher_fractions: tuple[float, ...]
    impression_fractions: tuple[float, ...]
    unranked_publishers: int
    unranked_impressions: int

    def __post_init__(self) -> None:
        if len(self.publisher_fractions) != len(self.bucket_edges) or \
                len(self.impression_fractions) != len(self.bucket_edges):
            raise ValueError("fraction series must align with bucket edges")

    def cumulative_to(self, max_rank: int, series: str = "impressions") -> float:
        """Cumulative fraction at or better than *max_rank*.

        *series* is ``'impressions'`` or ``'publishers'``.  *max_rank* must
        be one of the bucket edges (the log buckets cannot be split).
        """
        if max_rank not in self.bucket_edges:
            raise ValueError(f"{max_rank} is not a bucket edge")
        fractions = self.impression_fractions if series == "impressions" \
            else self.publisher_fractions
        cutoff = self.bucket_edges.index(max_rank)
        return sum(fractions[: cutoff + 1])


class PopularityAudit:
    """Rank-bucket distributions over the enriched dataset."""

    def __init__(self, dataset: AuditDataset) -> None:
        self.dataset = dataset

    def bucket_edges(self, first_edge: int = 100) -> list[int]:
        """The shared logarithmic rank buckets (100, 1K, ..., max rank)."""
        return self.dataset.ranking.bucket_edges(first_edge=first_edge)

    def distribution(self, campaign_id: str,
                     first_edge: int = 100) -> RankDistribution:
        """Publisher and impression distributions for one campaign.

        Ranks come from the enriched record column when present and fall
        back to a live ranking lookup otherwise; publishers the ranking
        service does not know are counted separately as unranked.
        """
        rows = self.dataset.select(campaign_id, "domain", "global_rank")
        edges = self.bucket_edges(first_edge=first_edge)
        publisher_counts = [0] * len(edges)
        impression_counts = [0] * len(edges)
        unranked_impressions = 0
        seen_domains: dict[str, int | None] = {}
        for domain, record_rank in rows:
            if domain not in seen_domains:
                rank = record_rank
                if rank is None:
                    rank = self.dataset.ranking.rank_of(domain)
                seen_domains[domain] = rank
                if rank is not None:
                    publisher_counts[bucket_index(rank, edges)] += 1
            rank = seen_domains[domain]
            if rank is None:
                unranked_impressions += 1
            else:
                impression_counts[bucket_index(rank, edges)] += 1
        ranked_publishers = sum(publisher_counts)
        ranked_impressions = sum(impression_counts)
        unranked_publishers = sum(1 for rank in seen_domains.values()
                                  if rank is None)
        return RankDistribution(
            campaign_id=campaign_id,
            bucket_edges=tuple(edges),
            publisher_fractions=tuple(
                count / ranked_publishers if ranked_publishers else 0.0
                for count in publisher_counts),
            impression_fractions=tuple(
                count / ranked_impressions if ranked_impressions else 0.0
                for count in impression_counts),
            unranked_publishers=unranked_publishers,
            unranked_impressions=unranked_impressions,
        )

    def top_concentration(self, campaign_id: str,
                          max_rank: int = 100_000) -> tuple[float, float]:
        """(publisher share, impression share) at or better than *max_rank*.

        The paper quotes top-50K shares; our buckets are powers of ten so
        the closest available edge is used — callers pass an edge value.
        """
        distribution = self.distribution(campaign_id)
        return (distribution.cumulative_to(max_rank, "publishers"),
                distribution.cumulative_to(max_rank, "impressions"))

    def cpm_popularity_table(self, campaign_ids: list[str],
                             max_rank: int = 100_000
                             ) -> list[tuple[str, float, float, float]]:
        """Rows (campaign, cpm, publisher share, impression share) sorted
        by CPM — the direct test of "does more CPM buy popularity?"."""
        rows = []
        for campaign_id in campaign_ids:
            campaign = self.dataset.campaigns[campaign_id]
            publishers, impressions = self.top_concentration(campaign_id,
                                                             max_rank)
            rows.append((campaign_id, campaign.cpm_eur, publishers,
                         impressions))
        rows.sort(key=lambda row: row[1])
        return rows
