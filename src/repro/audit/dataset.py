"""The auditor's working set.

Bundles everything the advertiser-side auditor legitimately has access to:

* the impression store collected by their own beacon,
* the vendor reports downloaded from the console,
* the campaign specs they themselves configured,
* a *publisher directory* — per-domain keywords/topics, which in the paper
  come from the keywords and topics AdWords assigns to each publisher (and
  could equally be produced by crawling the sites),
* public IP intelligence and ranking services.

No simulation ground truth enters through this type: audits can only see
what a real advertiser could.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.adnetwork.campaign import CampaignSpec
from repro.adnetwork.reporting import VendorReport
from repro.collector.store import ImpressionRecord, ImpressionStore
from repro.taxonomy.lexicon import Lexicon
from repro.web.publisher import Publisher
from repro.web.ranking import RankingService


@dataclass
class AuditDataset:
    """Everything one audit run works from."""

    store: ImpressionStore
    campaigns: Mapping[str, CampaignSpec]
    vendor_reports: Mapping[str, VendorReport]
    directory: Mapping[str, Publisher]
    lexicon: Lexicon
    ranking: RankingService
    notes: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for campaign_id in self.vendor_reports:
            if campaign_id not in self.campaigns:
                raise ValueError(
                    f"vendor report for unknown campaign {campaign_id!r}")

    @property
    def campaign_ids(self) -> list[str]:
        """All configured campaigns, in configuration order."""
        return list(self.campaigns)

    def records(self, campaign_id: str) -> list[ImpressionRecord]:
        """Logged impressions for one campaign."""
        if campaign_id not in self.campaigns:
            raise KeyError(f"unknown campaign: {campaign_id!r}")
        return self.store.by_campaign(campaign_id)

    def select(self, campaign_id: Optional[str], *fields: str) -> list[tuple]:
        """Column projection over one campaign's records (or all records).

        The audits' bulk reads: on the columnar store backend this is
        answered straight from the typed columns and the seal-time
        campaign index, without materialising record views.
        """
        if campaign_id is not None and campaign_id not in self.campaigns:
            raise KeyError(f"unknown campaign: {campaign_id!r}")
        return self.store.select(campaign_id, *fields)

    def record_count(self, campaign_id: str) -> int:
        """Number of logged impressions for one campaign."""
        if campaign_id not in self.campaigns:
            raise KeyError(f"unknown campaign: {campaign_id!r}")
        return self.store.count_for(campaign_id)

    def audit_publishers(self, campaign_id: Optional[str] = None) -> set[str]:
        """Publisher domains our methodology observed."""
        return self.store.distinct_domains(campaign_id)

    def vendor_publishers(self, campaign_id: Optional[str] = None) -> set[str]:
        """Publisher domains the vendor's placement reports name."""
        if campaign_id is not None:
            report = self.vendor_reports.get(campaign_id)
            return report.reported_publishers if report else set()
        domains: set[str] = set()
        for report in self.vendor_reports.values():
            domains |= report.reported_publishers
        return domains

    def publisher_info(self, domain: str) -> Optional[Publisher]:
        """Directory entry (vendor-assigned keywords/topics) for a domain."""
        return self.directory.get(domain.lower())

    def require_report(self, campaign_id: str) -> VendorReport:
        """The vendor report for a campaign (raises when absent)."""
        report = self.vendor_reports.get(campaign_id)
        if report is None:
            raise KeyError(f"no vendor report for campaign {campaign_id!r}")
        return report
