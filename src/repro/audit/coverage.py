"""Measurement-loss accounting for the audit pipeline.

The paper's methodology only sees impressions whose beacon report reached
the collector; everything else is a blind spot.  This module makes the
blind spot *auditable*: every ground-truth delivery is classified into
exactly one bucket — observed (committed at the collector), quarantined
(connection survived but every report frame was rejected), or lost (with
the failure reason) — and the buckets must reconcile exactly:

    delivered == (observed - duplicates) + quarantined + lost

where *observed* counts collector commits **plus** nonce-deduplicated
re-deliveries, so subtracting *duplicates* recovers unique impressions.
The identity is checked per (publisher, campaign) cell, per campaign, per
publisher and in total; a cell that fails it is a bug in the accounting,
never a rounding artefact — everything here is integer arithmetic.

Coverage is tracked unconditionally (it costs two dict lookups per
delivery and touches neither RNG streams nor metrics), so fault-free runs
report a clean 100 %-minus-baseline-loss ledger and faulted runs show
exactly what the fault plan cost the measurement.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Iterable, Mapping

from repro.faults.quarantine import QuarantineEntry
from repro.util.tables import render_table

#: Loss reasons, in reporting order.  ``script_blocked`` is the paper's
#: own §3.1 blind spot (publisher/browser blocked the beacon script);
#: the rest are transport/collector failures.
LOSS_REASONS = ("script_blocked", "connect_failed", "dropped",
                "handshake_failed", "no_hello")

_REASON_FIELD = {reason: f"lost_{reason}" for reason in LOSS_REASONS}


@dataclass
class CoverageCell:
    """Delivery accounting for one (publisher, campaign) pair."""

    delivered: int = 0
    #: Collector commits, including nonce-deduplicated re-deliveries.
    observed: int = 0
    duplicates: int = 0
    quarantined: int = 0
    lost_script_blocked: int = 0
    lost_connect_failed: int = 0
    lost_dropped: int = 0
    lost_handshake_failed: int = 0
    lost_no_hello: int = 0

    @property
    def unique(self) -> int:
        """Distinct impressions the collector committed."""
        return self.observed - self.duplicates

    @property
    def lost(self) -> int:
        return (self.lost_script_blocked + self.lost_connect_failed
                + self.lost_dropped + self.lost_handshake_failed
                + self.lost_no_hello)

    @property
    def reconciles(self) -> bool:
        """The accounting identity every cell must satisfy."""
        return self.delivered == self.unique + self.quarantined + self.lost

    def merge(self, other: "CoverageCell") -> None:
        for spec in fields(self):
            setattr(self, spec.name,
                    getattr(self, spec.name) + getattr(other, spec.name))


class CoverageCounts:
    """Per-(publisher domain, campaign id) coverage cells.

    Mergeable across shards: :meth:`absorb` folds another instance in
    cell-by-cell, and all aggregation (:meth:`by_campaign`,
    :meth:`by_publisher`, :meth:`totals`) walks cells in sorted key order
    so serial and parallel merges render identically.
    """

    def __init__(self) -> None:
        self.cells: dict[tuple[str, str], CoverageCell] = {}

    def __eq__(self, other: object) -> bool:
        # Value equality (cell-for-cell) so a counts instance that
        # crossed a process boundary compares equal to its source.
        if not isinstance(other, CoverageCounts):
            return NotImplemented
        return self.cells == other.cells

    def cell(self, domain: str, campaign_id: str) -> CoverageCell:
        key = (domain, campaign_id)
        found = self.cells.get(key)
        if found is None:
            found = self.cells[key] = CoverageCell()
        return found

    def record_delivered(self, domain: str, campaign_id: str) -> None:
        """Count one ground-truth delivery (before beacon execution)."""
        self.cell(domain, campaign_id).delivered += 1

    def record_lost(self, domain: str, campaign_id: str,
                    reason: str) -> None:
        """Classify one delivery as lost to *reason*."""
        cell = self.cell(domain, campaign_id)
        try:
            name = _REASON_FIELD[reason]
        except KeyError:
            raise ValueError(f"unknown loss reason: {reason!r}") from None
        setattr(cell, name, getattr(cell, name) + 1)

    def record_delivery(self, domain: str, campaign_id: str,
                        delivery) -> None:
        """Classify one completed beacon delivery attempt chain.

        *delivery* is a :class:`~repro.beacon.client.BeaconDelivery` (duck
        typed: ``committed``/``duplicates``/``quarantined_frames``/
        ``status`` attributes).  Exactly one bucket is charged:
        commitment wins over quarantine wins over the final status.
        """
        cell = self.cell(domain, campaign_id)
        if delivery.committed:
            cell.observed += 1 + delivery.duplicates
            cell.duplicates += delivery.duplicates
            return
        if delivery.quarantined_frames > 0:
            cell.quarantined += 1
            return
        status = delivery.status.value
        if status == "connect_failed":
            cell.lost_connect_failed += 1
        elif status == "dropped":
            cell.lost_dropped += 1
        elif status == "handshake_failed":
            cell.lost_handshake_failed += 1
        else:
            # A DELIVERED connection that never committed: the collector
            # closed the session without a (valid) HELLO.
            cell.lost_no_hello += 1

    def absorb(self, other: "CoverageCounts") -> None:
        """Fold another shard's cells into this one."""
        for key, cell in other.cells.items():
            mine = self.cells.get(key)
            if mine is None:
                self.cells[key] = replace(cell)
            else:
                mine.merge(cell)

    def _aggregate(self, key_of) -> dict[str, CoverageCell]:
        grouped: dict[str, CoverageCell] = {}
        for key in sorted(self.cells):
            cell = self.cells[key]
            bucket = grouped.setdefault(key_of(key), CoverageCell())
            bucket.merge(cell)
        return grouped

    def by_campaign(self) -> dict[str, CoverageCell]:
        """Campaign id → aggregated cell, in sorted campaign order."""
        return self._aggregate(lambda key: key[1])

    def by_publisher(self) -> dict[str, CoverageCell]:
        """Publisher domain → aggregated cell, in sorted domain order."""
        return self._aggregate(lambda key: key[0])

    def totals(self) -> CoverageCell:
        total = CoverageCell()
        for key in sorted(self.cells):
            total.merge(self.cells[key])
        return total

    @property
    def reconciles(self) -> bool:
        """Does every cell satisfy the accounting identity?"""
        return all(cell.reconciles for cell in self.cells.values())


@dataclass
class ExperimentCoverage:
    """The experiment-wide measurement-loss report."""

    counts: CoverageCounts = field(default_factory=CoverageCounts)
    #: Quarantined-frame forensics (bounded), shard scope stamped in.
    quarantine: tuple[QuarantineEntry, ...] = ()
    #: Quarantine entries discarded once the bounded log filled up.
    quarantine_dropped: int = 0
    #: Scopes of shards whose execution was abandoned after exhausting
    #: crash-recovery retries; their deliveries are absent from *counts*.
    lost_shards: tuple[str, ...] = ()


def _cell_row(label: str, cell: CoverageCell) -> list[object]:
    rate = (f"{cell.unique / cell.delivered:.1%}"
            if cell.delivered else "n/a")
    return [label, cell.delivered, cell.unique, cell.duplicates,
            cell.quarantined, cell.lost, rate]


_HEADERS = ["", "delivered", "observed", "dedup", "quarantined",
            "lost", "coverage"]


def render_coverage(coverage: ExperimentCoverage,
                    top_publishers: int = 10) -> str:
    """Render the measurement-loss ledger as diff-able ASCII tables.

    *observed* in the rendered table is the **unique** record count (the
    dataset rows an auditor actually has); dedup-rejected re-deliveries
    get their own column.
    """
    counts = coverage.counts
    lines: list[str] = []
    by_campaign = counts.by_campaign()
    rows = [_cell_row(campaign, cell)
            for campaign, cell in by_campaign.items()]
    rows.append(_cell_row("TOTAL", counts.totals()))
    lines.append(render_table(
        _HEADERS, rows, title="Measurement coverage by campaign",
        right_align=range(1, len(_HEADERS))))

    by_publisher = counts.by_publisher()
    worst = sorted(
        by_publisher.items(),
        key=lambda item: (-(item[1].lost + item[1].quarantined), item[0]))
    head = [pair for pair in worst[:top_publishers]
            if pair[1].lost + pair[1].quarantined > 0]
    if head:
        lines.append("")
        lines.append(render_table(
            _HEADERS,
            [_cell_row(domain, cell) for domain, cell in head],
            title=f"Highest measurement loss by publisher (top {len(head)})",
            right_align=range(1, len(_HEADERS))))

    total = counts.totals()
    lines.append("")
    lines.append(
        f"Reconciliation: delivered {total.delivered} = observed "
        f"{total.observed} - duplicates {total.duplicates} + quarantined "
        f"{total.quarantined} + lost {total.lost} -> "
        f"{'OK' if counts.reconciles else 'MISMATCH'}")
    if coverage.quarantine or coverage.quarantine_dropped:
        kept = len(coverage.quarantine)
        lines.append(
            f"Quarantine log: {kept} frame(s) kept"
            + (f", {coverage.quarantine_dropped} dropped past capacity"
               if coverage.quarantine_dropped else ""))
    if coverage.lost_shards:
        lines.append("Lost shards (crash recovery exhausted): "
                     + ", ".join(coverage.lost_shards))
    return "\n".join(lines)


def _cell_dict(cell: CoverageCell) -> dict[str, int]:
    data = {spec.name: getattr(cell, spec.name) for spec in fields(cell)}
    data["unique"] = cell.unique
    data["lost"] = cell.lost
    data["reconciles"] = cell.reconciles
    return data


def coverage_to_dict(coverage: ExperimentCoverage) -> dict:
    """JSON-safe document: totals, per-campaign, per-publisher, forensics."""
    counts = coverage.counts
    return {
        "totals": _cell_dict(counts.totals()),
        "by_campaign": {campaign: _cell_dict(cell)
                        for campaign, cell in counts.by_campaign().items()},
        "by_publisher": {domain: _cell_dict(cell)
                         for domain, cell in counts.by_publisher().items()},
        "reconciles": counts.reconciles,
        "quarantine": [
            {"connection_id": entry.connection_id,
             "byte_offset": entry.byte_offset,
             "reason": entry.reason,
             "domain": entry.domain,
             "campaign_id": entry.campaign_id,
             "shard": entry.shard}
            for entry in coverage.quarantine],
        "quarantine_dropped": coverage.quarantine_dropped,
        "lost_shards": list(coverage.lost_shards),
    }


def coverage_to_json(coverage: ExperimentCoverage) -> str:
    """Strict-JSON rendering (sorted keys, no NaN) of the coverage doc."""
    return json.dumps(coverage_to_dict(coverage), indent=2, sort_keys=True,
                      allow_nan=False) + "\n"


def validate_coverage_document(document: Mapping) -> list[str]:
    """Sanity-check an exported coverage document; returns problem list.

    Used by the CI smoke job: verifies the reconciliation identity on the
    totals and every per-campaign / per-publisher aggregate.
    """
    problems: list[str] = []

    def check(label: str, cell: Mapping) -> None:
        required = ("delivered", "observed", "duplicates", "quarantined",
                    "lost", "unique")
        for name in required:
            if not isinstance(cell.get(name), int):
                problems.append(f"{label}: missing integer field {name!r}")
                return
        if cell["unique"] != cell["observed"] - cell["duplicates"]:
            problems.append(f"{label}: unique != observed - duplicates")
        if cell["delivered"] != (cell["unique"] + cell["quarantined"]
                                 + cell["lost"]):
            problems.append(
                f"{label}: delivered {cell['delivered']} != unique "
                f"{cell['unique']} + quarantined {cell['quarantined']} "
                f"+ lost {cell['lost']}")

    totals = document.get("totals")
    if not isinstance(totals, Mapping):
        return ["document has no totals object"]
    check("totals", totals)
    for section in ("by_campaign", "by_publisher"):
        group = document.get(section, {})
        if not isinstance(group, Mapping):
            problems.append(f"{section} is not an object")
            continue
        for label, cell in group.items():
            if isinstance(cell, Mapping):
                check(f"{section}[{label}]", cell)
            else:
                problems.append(f"{section}[{label}] is not an object")
    if document.get("reconciles") is not True:
        problems.append("document does not claim reconciliation")
    return problems


def merge_coverage(counts_list: Iterable[CoverageCounts]) -> CoverageCounts:
    """Fold shard coverage counts in the given (canonical) order."""
    merged = CoverageCounts()
    for counts in counts_list:
        merged.absorb(counts)
    return merged
