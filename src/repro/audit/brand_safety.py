"""Brand-safety audit (paper Figure 1).

Compares the set of publishers where our beacon saw impressions against
the set the vendor's placement report names, producing the Venn counts of
Figure 1, the "even if every anonymous impression were its own publisher"
lower bound the paper argues with, and a blacklist proposal of observed
brand-unsafe publishers the vendor never disclosed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.audit.dataset import AuditDataset
from repro.util.stats import Fraction2


@dataclass(frozen=True)
class VennCounts:
    """The three regions of Figure 1's Venn diagram."""

    audit_only: int
    both: int
    vendor_only: int

    def __post_init__(self) -> None:
        if min(self.audit_only, self.both, self.vendor_only) < 0:
            raise ValueError("Venn counts must be non-negative")

    @property
    def audit_total(self) -> int:
        """Publishers our methodology observed."""
        return self.audit_only + self.both

    @property
    def vendor_total(self) -> int:
        """Publishers the vendor reported."""
        return self.vendor_only + self.both

    @property
    def union_total(self) -> int:
        return self.audit_only + self.both + self.vendor_only

    @property
    def unreported_by_vendor(self) -> Fraction2:
        """Share of audit-observed publishers the vendor never named —
        the paper's headline 57 %."""
        return Fraction2(self.audit_only, max(1, self.audit_total))

    @property
    def unlogged_by_audit(self) -> Fraction2:
        """Share of vendor-reported publishers our beacon missed —
        the paper's own 16.5 % blind spot."""
        return Fraction2(self.vendor_only, max(1, self.vendor_total))


@dataclass(frozen=True)
class AnonymousBound:
    """The paper's General-005 argument: anonymous inventory cannot explain
    the unreported publishers."""

    anonymous_impressions: int
    unreported_publishers: int

    @property
    def unexplained_publishers(self) -> int:
        """Publishers missing even if every anonymous impression had been
        delivered on a distinct publisher."""
        return max(0, self.unreported_publishers - self.anonymous_impressions)

    @property
    def explainable(self) -> bool:
        return self.unexplained_publishers == 0


class BrandSafetyAudit:
    """Publisher-coverage comparison between audit and vendor data."""

    def __init__(self, dataset: AuditDataset) -> None:
        self.dataset = dataset

    def venn(self, campaign_id: Optional[str] = None) -> VennCounts:
        """Venn counts for one campaign, or across all campaigns."""
        audit = self.dataset.audit_publishers(campaign_id)
        vendor = self.dataset.vendor_publishers(campaign_id)
        return VennCounts(
            audit_only=len(audit - vendor),
            both=len(audit & vendor),
            vendor_only=len(vendor - audit),
        )

    def anonymous_bound(self, campaign_id: str) -> AnonymousBound:
        """Can ``anonymous.google`` inventory account for the gap?"""
        report = self.dataset.require_report(campaign_id)
        counts = self.venn(campaign_id)
        return AnonymousBound(
            anonymous_impressions=report.anonymous_impressions,
            unreported_publishers=counts.audit_only,
        )

    def undisclosed_unsafe_publishers(self,
                                      campaign_id: Optional[str] = None
                                      ) -> list[str]:
        """Brand-unsafe publishers that served our ads without ever being
        named by the vendor — the actionable blacklist of the audit.

        "Unsafe" is judged from the publisher directory (the auditor can
        visit the site), not from any vendor data.
        """
        audit = self.dataset.audit_publishers(campaign_id)
        vendor = self.dataset.vendor_publishers(campaign_id)
        unsafe = []
        for domain in sorted(audit - vendor):
            info = self.dataset.publisher_info(domain)
            if info is not None and info.unsafe:
                unsafe.append(domain)
        return unsafe

    def blacklist_proposal(self, campaign_id: Optional[str] = None) -> list[str]:
        """Every observed unsafe publisher (reported or not): what the
        advertiser should exclude going forward."""
        unsafe = []
        for domain in sorted(self.dataset.audit_publishers(campaign_id)):
            info = self.dataset.publisher_info(domain)
            if info is not None and info.unsafe:
                unsafe.append(domain)
        return unsafe
