"""Machine-readable exports of the audit artifacts.

The rendered ASCII tables are for humans; downstream tooling (dashboards,
spreadsheets, alerting) wants the same facts as JSON or CSV.  Everything
here is a pure projection of the audit results — no new analysis.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Any, Iterable

from repro.audit.conversion import ConversionResult
from repro.audit.report import FullAuditReport


def _finite(value: float, digits: int | None = None) -> float | None:
    """A float fit for strict JSON: non-finite values become ``None``.

    ``float("inf")`` / NaN would otherwise serialise as the bare tokens
    ``Infinity`` / ``NaN``, which are not JSON and break every strict
    parser downstream.
    """
    if not math.isfinite(value):
        return None
    return round(value, digits) if digits is not None else value


def report_to_dict(report: FullAuditReport) -> dict[str, Any]:
    """The full audit as one JSON-serialisable dictionary."""
    campaigns = []
    for campaign in report.campaigns:
        campaigns.append({
            "campaign_id": campaign.campaign_id,
            "brand_safety": {
                "publishers_audit_only": campaign.venn.audit_only,
                "publishers_both": campaign.venn.both,
                "publishers_vendor_only": campaign.venn.vendor_only,
                "unreported_by_vendor_pct": _finite(
                    campaign.venn.unreported_by_vendor.pct, 2),
                "unlogged_by_audit_pct": _finite(
                    campaign.venn.unlogged_by_audit.pct, 2),
            },
            "context": {
                "audit_pct": _finite(campaign.context.audit_fraction.pct, 2),
                "vendor_pct": _finite(campaign.context.vendor_fraction.pct, 2),
                "meaningful_publishers": campaign.context.meaningful_publishers,
            },
            "viewability": {
                "upper_bound_pct": _finite(
                    campaign.viewability.viewable_upper_bound.pct, 2),
                "median_exposure_seconds": _finite(
                    campaign.viewability.median_exposure_seconds, 3),
            },
            "fraud": {
                "dc_ips_pct": _finite(campaign.fraud.dc_ips.pct, 2),
                "dc_impressions_pct": _finite(
                    campaign.fraud.dc_impressions.pct, 2),
                "dc_publishers_pct": _finite(
                    campaign.fraud.dc_publishers.pct, 2),
                "estimated_cost_eur": _finite(
                    campaign.fraud.estimated_cost_eur, 6),
                "vendor_refund_eur": _finite(
                    campaign.fraud.vendor_refund_eur, 6),
            },
            "reconciliation": {
                "vendor_impressions": campaign.discrepancies.vendor_impressions,
                "logged_impressions": campaign.discrepancies.logged_impressions,
                "logging_loss_pct": _finite(
                    campaign.discrepancies.logging_loss.pct, 2),
                "contextual_gap_points": _finite(
                    campaign.discrepancies.contextual_gap_points, 2),
                "dc_cost_not_refunded_eur": _finite(
                    campaign.discrepancies.dc_cost_not_refunded_eur, 6),
            },
            "popularity": {
                "bucket_edges": list(campaign.popularity.bucket_edges),
                "publisher_fractions": [
                    _finite(value, 4)
                    for value in campaign.popularity.publisher_fractions],
                "impression_fractions": [
                    _finite(value, 4)
                    for value in campaign.popularity.impression_fractions],
            },
        })
    return {
        "campaigns": campaigns,
        "aggregate": {
            "publishers_audit_only": report.aggregate_venn.audit_only,
            "publishers_both": report.aggregate_venn.both,
            "publishers_vendor_only": report.aggregate_venn.vendor_only,
            "unreported_by_vendor_pct": _finite(
                report.aggregate_venn.unreported_by_vendor.pct, 2),
        },
        "frequency": {
            "total_users": report.frequency.total_users,
            "users_over_10": report.frequency.users_over_10,
            "users_over_100": report.frequency.users_over_100,
            "max_impressions_single_user":
                report.frequency.max_impressions_single_user,
            "users_median_under_60s": report.frequency.users_median_under_60s,
        },
        "blacklist": list(report.blacklist),
    }


def report_to_json(report: FullAuditReport, indent: int = 2) -> str:
    """The full audit as a strict JSON document (no ``Infinity``/``NaN``)."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True,
                      allow_nan=False)


def funnel_to_dicts(results: Iterable[ConversionResult]) -> list[dict[str, Any]]:
    """The conversion funnel as JSON-serialisable rows.

    ``cost_per_conversion_eur`` is ``inf`` for a campaign with zero
    conversions; it exports as ``null`` so the document stays strict JSON.
    """
    return [{
        "campaign_id": result.campaign_id,
        "impressions": result.impressions,
        "clicks": result.clicks,
        "conversions": result.conversions,
        "ctr_pct": _finite(result.ctr.pct, 2),
        "conversion_ratio_pct": _finite(result.conversion_ratio.pct, 4),
        "revenue_eur": _finite(result.revenue_eur, 6),
        "spend_eur": _finite(result.spend_eur, 6),
        "cost_per_conversion_eur": _finite(
            result.cost_per_conversion_eur, 6),
        "dc_clicks": result.dc_clicks,
        "dc_conversions": result.dc_conversions,
    } for result in results]


def funnel_to_json(results: Iterable[ConversionResult],
                   indent: int = 2) -> str:
    """The conversion funnel as a strict JSON document."""
    return json.dumps(funnel_to_dicts(results), indent=indent,
                      sort_keys=True, allow_nan=False)


#: Column order for the per-campaign CSV export.
CSV_COLUMNS = (
    "campaign_id",
    "logged_impressions",
    "vendor_impressions",
    "unreported_publishers_pct",
    "audit_contextual_pct",
    "vendor_contextual_pct",
    "viewability_upper_bound_pct",
    "dc_impressions_pct",
    "dc_cost_not_refunded_eur",
)


def report_to_csv(report: FullAuditReport) -> str:
    """One CSV row per campaign with the headline audit columns."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for campaign in report.campaigns:
        writer.writerow([
            campaign.campaign_id,
            campaign.discrepancies.logged_impressions,
            campaign.discrepancies.vendor_impressions,
            f"{campaign.venn.unreported_by_vendor.pct:.2f}",
            f"{campaign.context.audit_fraction.pct:.2f}",
            f"{campaign.context.vendor_fraction.pct:.2f}",
            f"{campaign.viewability.viewable_upper_bound.pct:.2f}",
            f"{campaign.fraud.dc_impressions.pct:.2f}",
            f"{campaign.discrepancies.dc_cost_not_refunded_eur:.6f}",
        ])
    return buffer.getvalue()
