"""Machine-readable exports of the audit artifacts.

The rendered ASCII tables are for humans; downstream tooling (dashboards,
spreadsheets, alerting) wants the same facts as JSON or CSV.  Everything
here is a pure projection of the audit results — no new analysis.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any

from repro.audit.report import FullAuditReport


def report_to_dict(report: FullAuditReport) -> dict[str, Any]:
    """The full audit as one JSON-serialisable dictionary."""
    campaigns = []
    for campaign in report.campaigns:
        campaigns.append({
            "campaign_id": campaign.campaign_id,
            "brand_safety": {
                "publishers_audit_only": campaign.venn.audit_only,
                "publishers_both": campaign.venn.both,
                "publishers_vendor_only": campaign.venn.vendor_only,
                "unreported_by_vendor_pct": round(
                    campaign.venn.unreported_by_vendor.pct, 2),
                "unlogged_by_audit_pct": round(
                    campaign.venn.unlogged_by_audit.pct, 2),
            },
            "context": {
                "audit_pct": round(campaign.context.audit_fraction.pct, 2),
                "vendor_pct": round(campaign.context.vendor_fraction.pct, 2),
                "meaningful_publishers": campaign.context.meaningful_publishers,
            },
            "viewability": {
                "upper_bound_pct": round(
                    campaign.viewability.viewable_upper_bound.pct, 2),
                "median_exposure_seconds": round(
                    campaign.viewability.median_exposure_seconds, 3),
            },
            "fraud": {
                "dc_ips_pct": round(campaign.fraud.dc_ips.pct, 2),
                "dc_impressions_pct": round(
                    campaign.fraud.dc_impressions.pct, 2),
                "dc_publishers_pct": round(
                    campaign.fraud.dc_publishers.pct, 2),
                "estimated_cost_eur": round(
                    campaign.fraud.estimated_cost_eur, 6),
                "vendor_refund_eur": round(
                    campaign.fraud.vendor_refund_eur, 6),
            },
            "reconciliation": {
                "vendor_impressions": campaign.discrepancies.vendor_impressions,
                "logged_impressions": campaign.discrepancies.logged_impressions,
                "logging_loss_pct": round(
                    campaign.discrepancies.logging_loss.pct, 2),
                "contextual_gap_points": round(
                    campaign.discrepancies.contextual_gap_points, 2),
                "dc_cost_not_refunded_eur": round(
                    campaign.discrepancies.dc_cost_not_refunded_eur, 6),
            },
            "popularity": {
                "bucket_edges": list(campaign.popularity.bucket_edges),
                "publisher_fractions": [
                    round(value, 4)
                    for value in campaign.popularity.publisher_fractions],
                "impression_fractions": [
                    round(value, 4)
                    for value in campaign.popularity.impression_fractions],
            },
        })
    return {
        "campaigns": campaigns,
        "aggregate": {
            "publishers_audit_only": report.aggregate_venn.audit_only,
            "publishers_both": report.aggregate_venn.both,
            "publishers_vendor_only": report.aggregate_venn.vendor_only,
            "unreported_by_vendor_pct": round(
                report.aggregate_venn.unreported_by_vendor.pct, 2),
        },
        "frequency": {
            "total_users": report.frequency.total_users,
            "users_over_10": report.frequency.users_over_10,
            "users_over_100": report.frequency.users_over_100,
            "max_impressions_single_user":
                report.frequency.max_impressions_single_user,
            "users_median_under_60s": report.frequency.users_median_under_60s,
        },
        "blacklist": list(report.blacklist),
    }


def report_to_json(report: FullAuditReport, indent: int = 2) -> str:
    """The full audit as a JSON document."""
    return json.dumps(report_to_dict(report), indent=indent, sort_keys=True)


#: Column order for the per-campaign CSV export.
CSV_COLUMNS = (
    "campaign_id",
    "logged_impressions",
    "vendor_impressions",
    "unreported_publishers_pct",
    "audit_contextual_pct",
    "vendor_contextual_pct",
    "viewability_upper_bound_pct",
    "dc_impressions_pct",
    "dc_cost_not_refunded_eur",
)


def report_to_csv(report: FullAuditReport) -> str:
    """One CSV row per campaign with the headline audit columns."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for campaign in report.campaigns:
        writer.writerow([
            campaign.campaign_id,
            campaign.discrepancies.logged_impressions,
            campaign.discrepancies.vendor_impressions,
            f"{campaign.venn.unreported_by_vendor.pct:.2f}",
            f"{campaign.context.audit_fraction.pct:.2f}",
            f"{campaign.context.vendor_fraction.pct:.2f}",
            f"{campaign.viewability.viewable_upper_bound.pct:.2f}",
            f"{campaign.fraud.dc_impressions.pct:.2f}",
            f"{campaign.discrepancies.dc_cost_not_refunded_eur:.6f}",
        ])
    return buffer.getvalue()
